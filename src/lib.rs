//! # E-Syn (reproduction)
//!
//! A from-scratch Rust reproduction of *E-Syn: E-Graph Rewriting with
//! Technology-Aware Cost Functions for Logic Synthesis* (DAC 2024),
//! including every substrate the paper depends on: an e-graph engine
//! (with tree-, DAG- and exact extraction), an AIG optimiser (with
//! fraiging, structural choices and AIGER I/O), a technology mapper with
//! STA, buffering and sizing, a CDCL SAT solver, an equivalence checker,
//! a GBDT regressor, eqn/S-expression/BLIF format converters, and
//! generators for the benchmark circuits, and a deterministic parallel
//! execution layer. See `ARCHITECTURE.md` for a guided tour of the
//! pipeline, `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record.
//!
//! This facade crate re-exports the workspace members under stable paths;
//! depend on the individual `esyn-*` crates for finer-grained builds.
//!
//! ## Parallelism
//!
//! The hot loops (saturation rule search, pool sampling, CEC, GBDT
//! split search, candidate measurement) run on [`par`]'s scoped workers.
//! Results are
//! **bit-identical at any thread count** (wall-clock `TimeLimit` stops
//! excepted — size those as safety nets): set `ESYN_THREADS=1` for the
//! exact serial path, or pass a [`par::Parallelism`] through
//! [`core::EsynConfig`] / the `esyn --threads` flag.
//!
//! ## Quickstart
//!
//! ```
//! use e_syn::core::{abc_baseline, esyn_optimize, EsynConfig, Objective};
//! use e_syn::core::{train_cost_models, TrainConfig};
//! use e_syn::techmap::Library;
//!
//! let net = e_syn::eqn::parse_eqn(
//!     "INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n",
//! )?;
//! let lib = Library::asap7_like();
//! let models = train_cost_models(&TrainConfig::tiny(), &lib);
//! let result = esyn_optimize(&net, &models, &lib, Objective::Delay, &EsynConfig::small());
//! let baseline = abc_baseline(&net, &lib, Objective::Delay, None);
//! assert!(result.qor.delay > 0.0 && baseline.delay > 0.0);
//! # Ok::<(), e_syn::eqn::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Boolean expression IR, parsers and simulation ([`esyn_eqn`]).
pub use esyn_eqn as eqn;

/// E-graph engine with equality saturation ([`esyn_egraph`]).
pub use esyn_egraph as egraph;

/// And-Inverter Graph optimisation ([`esyn_aig`]).
pub use esyn_aig as aig;

/// Technology mapping, STA and sizing ([`esyn_techmap`]).
pub use esyn_techmap as techmap;

/// CDCL SAT solver ([`esyn_sat`]).
pub use esyn_sat as sat;

/// Combinational equivalence checking ([`esyn_cec`]).
pub use esyn_cec as cec;

/// The extraction gym: one `Extractor` trait, greedy/global/exact
/// DAG-cost engines and the shared validator ([`esyn_extract`]).
pub use esyn_extract as extract;

/// Named optimization objectives: pool-side scoring, extract-side cost
/// models, Pareto extraction ([`esyn_objective`]).
pub use esyn_objective as objective;

/// Gradient-boosted regression trees ([`esyn_gbdt`]).
pub use esyn_gbdt as gbdt;

/// Benchmark circuit generators ([`esyn_circuits`]).
pub use esyn_circuits as circuits;

/// Deterministic fork–join parallelism primitives ([`esyn_par`]).
pub use esyn_par as par;

/// The batch synthesis service: JSON-lines protocol, bounded job queue,
/// content-addressed result cache ([`esyn_serve`]).
pub use esyn_serve as serve;

/// The E-Syn core: rules, pool extraction, cost models, flows
/// ([`esyn_core`]).
pub use esyn_core as core;
