//! `esyn` — command-line front-end to the E-Syn reproduction.
//!
//! Circuit files are read by extension: `.eqn` (ABC equation format),
//! `.blif` (combinational BLIF), `.aag`/`.aig` (AIGER ASCII/binary).
//!
//! ```text
//! esyn stats    <file>                             # parse + report
//! esyn optimize <file> [delay|area|balanced]       # full E-Syn flow
//!               [--objective NAME] [--models DIR] [--out FILE]
//!               [--verilog FILE] [--choices]
//!               [--extractor NAME] [--threads N] [--verbose]
//! esyn baseline <file> [delay|area|balanced] [--choices]   # ABC-style baseline
//! esyn cec      <a> <b> [--threads N]              # equivalence check
//! esyn bench    <circuit-name>                     # write a named benchmark as eqn
//! esyn gym      [circuit ...] [--engines a,b,..]   # race the extraction gym
//!               [--cost NAME] [--full] [--threads N]
//! esyn pareto   [circuit ...] [--x NAME] [--y NAME] # objective-pair frontier
//!               [--engines a,b,..] [--full] [--threads N]
//! esyn convert  <in> <out>                         # convert between formats
//! esyn aig      <file> <out.aag|out.aig>           # strash + AIGER export
//! esyn serve    [--port N | --stdio]               # batch synthesis service
//!               [--workers N] [--queue-cap N]
//!               [--cache-bytes N[k|m|g]] [--sat-cache-bytes N[k|m|g]]
//!               [--models DIR] [--train tiny|default]
//! ```
//!
//! `optimize --extractor NAME` adds the named `esyn-extract` gym engine's
//! DAG-cost extreme to the candidate pool; `esyn gym` with no circuit
//! arguments races the whole benchmark registry. Engine names for both
//! come from `esyn_extract::ENGINE_NAMES` (bottom-up, faster-bottom-up,
//! greedy-dag, faster-greedy-dag, global-greedy-dag, bnb, exact).
//!
//! The named objectives (from `esyn_objective::OBJECTIVE_NAMES`: unit,
//! area, depth, inv-weighted, techmap, activity) drive three commands:
//! `optimize --objective NAME` scores the candidate pool with the named
//! objective instead of the learned models, `gym --cost NAME` races the
//! engines under its node-local cost model, and `esyn pareto` races an
//! objective *pair* (default `--x area --y depth`) and prints every
//! engine's point plus the non-dominated frontier. `pareto` output
//! carries no wall-clock, so it is bit-identical at any `ESYN_THREADS`.
//!
//! `serve` starts the long-running batch service (`esyn-serve`): a
//! JSON-lines protocol over TCP (`--port`, `0` picks an ephemeral port)
//! or stdin/stdout (`--stdio`, the default), a bounded job queue with
//! `busy` backpressure replies, and a content-addressed result cache
//! keyed by circuit structural hash × canonical config. See
//! ARCHITECTURE.md § "esyn-serve".
//!
//! `--threads N` pins the worker count for the parallel stages
//! (saturation rule search, pool sampling, candidate scoring, CEC);
//! without it the `ESYN_THREADS` environment variable applies, then the
//! hardware count. Results are bit-identical at any thread count.
//! `--verbose` prints per-iteration saturation statistics and the stop
//! reason.

use e_syn::aig::Aig;
use e_syn::cec::{check_equivalence_par, EquivResult, DEFAULT_SIM_SEED};
use e_syn::core::{
    abc_baseline, abc_baseline_choices, esyn_optimize, esyn_optimize_with_cost, train_cost_models,
    BoolLang, CostModels, EsynConfig, Objective, Parallelism, TrainConfig,
};
use e_syn::core::{all_rules, network_to_recexpr, saturate_par, SaturationLimits};
use e_syn::eqn::{parse_blif, parse_eqn, write_blif, Network};
use e_syn::extract::{canonical_engine_name, gym, CostModel, UnitCost, ENGINE_NAMES};
use e_syn::objective::{
    lowerable_objective_names, objective_by_name, pareto_race, ScoreOf, OBJECTIVE_NAMES,
};
use e_syn::techmap::Library;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage (circuit files: .eqn, .blif, .aag, .aig):");
    eprintln!("  esyn stats    <file>");
    eprintln!("  esyn optimize <file> [delay|area|balanced] [--objective NAME] [--models DIR] [--out FILE] [--verilog FILE] [--choices] [--extractor NAME] [--threads N] [--verbose]");
    eprintln!("  esyn baseline <file> [delay|area|balanced] [--choices]");
    eprintln!("  esyn cec      <a> <b> [--threads N]");
    eprintln!("  esyn bench    <circuit-name> (or `list`)");
    eprintln!(
        "  esyn gym      [circuit ...] [--engines a,b,..] [--cost NAME] [--full] [--threads N]"
    );
    eprintln!("  esyn pareto   [circuit ...] [--x NAME] [--y NAME] [--engines a,b,..] [--full] [--threads N]");
    eprintln!(
        "                extraction engines (for gym, pareto, --extractor): {}",
        ENGINE_NAMES.join(", ")
    );
    eprintln!(
        "                named objectives (for pareto, --objective, --cost): {}",
        OBJECTIVE_NAMES.join(", ")
    );
    eprintln!("  esyn convert  <in> <out.eqn|out.blif|out.aag|out.aig|out.v>");
    eprintln!("  esyn aig      <file> <out.aag|out.aig>");
    eprintln!("  esyn serve    [--port N | --stdio] [--workers N] [--queue-cap N] [--cache-bytes N[k|m|g]] [--sat-cache-bytes N[k|m|g]] [--models DIR] [--train tiny|default]");
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "stats" => stats(args.get(1).ok_or("missing input file")?),
        "optimize" => optimize(&args[1..]),
        "baseline" => baseline(&args[1..]),
        "cec" => cec(&args[1..]),
        "bench" => bench(args.get(1).map(String::as_str).unwrap_or("list")),
        "gym" => gym_cmd(&args[1..]),
        "pareto" => pareto_cmd(&args[1..]),
        "convert" => convert(
            args.get(1).ok_or("missing input file")?,
            args.get(2).ok_or("missing output file")?,
        ),
        "aig" => aig_export(
            args.get(1).ok_or("missing input file")?,
            args.get(2).ok_or("missing output file")?,
        ),
        "serve" => serve(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load(path: &str) -> Result<Network, String> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "blif" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_blif(&text).map_err(|e| format!("{path}: {e}"))
        }
        "aag" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Aig::from_aiger_ascii(&text)
                .map_err(|e| format!("{path}: {e}"))?
                .to_network())
        }
        "aig" => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Aig::from_aiger_binary(&bytes)
                .map_err(|e| format!("{path}: {e}"))?
                .to_network())
        }
        _ => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_eqn(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn convert(input: &str, output: &str) -> Result<(), String> {
    let net = load(input)?;
    let stem = Path::new(output)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("top")
        .to_owned();
    let ext = Path::new(output)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "eqn" => std::fs::write(output, net.to_eqn()),
        "blif" => std::fs::write(output, write_blif(&net, &stem)),
        "v" => std::fs::write(output, net.to_verilog(&stem)),
        "aag" => std::fs::write(output, Aig::from_network(&net).cleanup().to_aiger_ascii()),
        "aig" => std::fs::write(output, Aig::from_network(&net).cleanup().to_aiger_binary()),
        other => return Err(format!("unknown output format `.{other}`")),
    }
    .map_err(|e| format!("{output}: {e}"))?;
    let s = net.stats();
    println!(
        "converted {input} -> {output} ({} inputs, {} outputs, {} gates)",
        s.inputs,
        s.outputs,
        s.gates()
    );
    Ok(())
}

fn parse_threads(s: &str) -> Result<Parallelism, String> {
    let n: usize = s
        .parse()
        .map_err(|_| format!("--threads needs a positive integer, got `{s}`"))?;
    if n == 0 {
        return Err("--threads needs a positive integer".into());
    }
    Ok(Parallelism::Fixed(n))
}

fn parse_objective(s: Option<&String>) -> Result<Objective, String> {
    match s.map(String::as_str) {
        None | Some("delay") => Ok(Objective::Delay),
        Some("area") => Ok(Objective::Area),
        Some("balanced") => Ok(Objective::Balanced),
        Some(other) => Err(format!("unknown objective `{other}`")),
    }
}

/// Resolves a name against the `esyn-objective` registry, with an error
/// that lists every registered objective.
fn parse_named_objective(s: &str) -> Result<&'static dyn e_syn::objective::Objective, String> {
    objective_by_name(s).ok_or_else(|| {
        format!(
            "unknown objective `{s}` (available: {})",
            OBJECTIVE_NAMES.join(", ")
        )
    })
}

/// Resolves a name to the objective's node-local cost model; errors out
/// on feature-only objectives (`depth`) with the lowerable subset.
fn parse_cost_model(s: &str) -> Result<(&'static str, &'static dyn CostModel<BoolLang>), String> {
    let obj = parse_named_objective(s)?;
    let model = obj.cost_model().ok_or_else(|| {
        format!(
            "objective `{}` has no node-local cost model (lowerable: {})",
            obj.name(),
            lowerable_objective_names().join(", ")
        )
    })?;
    Ok((obj.name(), model))
}

fn stats(path: &str) -> Result<(), String> {
    let net = load(path)?;
    let s = net.stats();
    println!("{path}:");
    println!("  inputs  {}", s.inputs);
    println!("  outputs {}", s.outputs);
    println!(
        "  gates   {} (and {}, or {}, not {})",
        s.gates(),
        s.ands,
        s.ors,
        s.nots
    );
    println!("  depth   {}", s.depth);
    let aig = Aig::from_network(&net);
    println!(
        "  aig     {} ands, {} levels",
        aig.num_ands(),
        aig.num_levels()
    );
    Ok(())
}

fn models_for(dir: Option<&str>, lib: &Library) -> CostModels {
    let dir = dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| Path::new("target/esyn-models").to_path_buf());
    CostModels::load(&dir).unwrap_or_else(|| {
        eprintln!("training cost models (cached under {})...", dir.display());
        let m = train_cost_models(&TrainConfig::default(), lib);
        m.save(&dir).ok();
        m
    })
}

/// Resolves an engine name against the gym registry, with an error that
/// lists every available engine (the registry is the single source of
/// truth — new engines show up here without CLI changes).
fn parse_engine(s: &str) -> Result<&'static str, String> {
    canonical_engine_name(s).ok_or_else(|| {
        format!(
            "unknown extraction engine `{s}` (available: {})",
            ENGINE_NAMES.join(", ")
        )
    })
}

fn optimize(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing input file")?;
    let mut objective_arg = None;
    let mut named_objective = None;
    let mut models_dir = None;
    let mut out_file = None;
    let mut verilog_file = None;
    let mut use_choices = false;
    let mut verbose = false;
    let mut extractor = None;
    let mut parallelism = Parallelism::Auto;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--objective" => {
                named_objective = Some(parse_named_objective(
                    it.next().ok_or("--objective needs a value")?,
                )?)
            }
            "--models" => models_dir = Some(it.next().ok_or("--models needs a value")?.clone()),
            "--out" => out_file = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--verilog" => verilog_file = Some(it.next().ok_or("--verilog needs a value")?.clone()),
            "--choices" => use_choices = true,
            "--verbose" => verbose = true,
            "--extractor" => {
                extractor = Some(parse_engine(it.next().ok_or("--extractor needs a value")?)?)
            }
            "--threads" => {
                parallelism = parse_threads(it.next().ok_or("--threads needs a value")?)?
            }
            other if objective_arg.is_none() => objective_arg = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if named_objective.is_some() && objective_arg.is_some() {
        return Err(
            "pass either a builtin objective (delay|area|balanced) or --objective NAME, not both"
                .into(),
        );
    }
    let net = load(path)?;
    let lib = Library::asap7_like();

    let mut cfg = EsynConfig {
        use_choices,
        parallelism,
        ..EsynConfig::default()
    };
    if let Some(engine) = extractor {
        cfg.pool.include_dag_extreme = true;
        cfg.pool.dag_engine = engine;
    }
    // A named objective scores the candidate pool directly (no learned
    // models needed); the builtin path keeps the trained-model scorer.
    let (label, objective, result) = match named_objective {
        Some(obj) => {
            let r = esyn_optimize_with_cost(&net, &ScoreOf(obj), &lib, obj.backend(), &cfg);
            (obj.name().to_owned(), obj.backend(), r)
        }
        None => {
            let objective = parse_objective(objective_arg.as_ref())?;
            let models = models_for(models_dir.as_deref(), &lib);
            let r = esyn_optimize(&net, &models, &lib, objective, &cfg);
            (format!("{objective:?}"), objective, r)
        }
    };
    if verbose {
        println!("saturation ({} iterations):", result.iterations.len());
        for (i, it) in result.iterations.iter().enumerate() {
            println!(
                "  iter {:>3}: {:>8} e-nodes, {:>7} e-classes, {:>6} applied, {:>6} skipped, \
                 {:>5} rebuilds, {:>3} rules active ({} dropped)  ({:.3} ms)",
                i + 1,
                it.nodes,
                it.classes,
                it.applied,
                it.skipped_substs,
                it.rebuilds,
                it.active_rules,
                it.dropped_rules,
                it.elapsed.as_secs_f64() * 1e3,
            );
        }
        println!("stop reason: {:?}", result.stop_reason);
    }
    println!(
        "{label}: area {:.2} um2, delay {:.2} ps, {} gates, {} levels",
        result.qor.area, result.qor.delay, result.qor.gates, result.qor.levels
    );
    println!(
        "e-graph {} nodes / {} classes, pool {}, stop {:?}, verified {:?}",
        result.egraph_nodes,
        result.egraph_classes,
        result.pool_size,
        result.stop_reason,
        result.verified
    );
    if let Some(out) = out_file {
        std::fs::write(&out, result.network.to_eqn()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote optimised equation file to {out}");
    }
    if let Some(vf) = verilog_file {
        let (nl, _) = e_syn::core::flow::esyn_backend(&result.network, &lib, objective, None);
        std::fs::write(&vf, nl.to_verilog(&lib, "esyn_top")).map_err(|e| format!("{vf}: {e}"))?;
        println!("wrote mapped Verilog netlist to {vf}");
    }
    Ok(())
}

fn baseline(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing input file")?;
    let use_choices = args.iter().any(|a| a == "--choices");
    let objective_arg: Option<&String> = args.get(1).filter(|a| a.as_str() != "--choices");
    let objective = parse_objective(objective_arg)?;
    let net = load(path)?;
    let lib = Library::asap7_like();
    let q = if use_choices {
        abc_baseline_choices(&net, &lib, objective, None)
    } else {
        abc_baseline(&net, &lib, objective, None)
    };
    println!(
        "{objective:?}: area {:.2} um2, delay {:.2} ps, {} gates, {} levels",
        q.area, q.delay, q.gates, q.levels
    );
    Ok(())
}

fn cec(args: &[String]) -> Result<(), String> {
    let mut files: Vec<&String> = Vec::new();
    let mut parallelism = Parallelism::Auto;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                parallelism = parse_threads(it.next().ok_or("--threads needs a value")?)?
            }
            _ => files.push(a),
        }
    }
    let [a, b] = files[..] else {
        return Err("cec needs exactly two circuit files".into());
    };
    let na = load(a)?;
    let nb = load(b)?;
    match check_equivalence_par(&na, &nb, DEFAULT_SIM_SEED, parallelism) {
        EquivResult::Equivalent => {
            println!("EQUIVALENT");
            Ok(())
        }
        EquivResult::NotEquivalent {
            output,
            counterexample,
        } => {
            println!("NOT EQUIVALENT (output #{output})");
            let assignment: Vec<String> = na
                .input_names()
                .iter()
                .zip(&counterexample)
                .map(|(n, v)| format!("{n}={}", u8::from(*v)))
                .collect();
            println!("counterexample: {}", assignment.join(" "));
            Err("circuits differ".into())
        }
        EquivResult::Incompatible(msg) => Err(format!("incompatible interfaces: {msg}")),
    }
}

fn bench(name: &str) -> Result<(), String> {
    if name == "list" {
        for b in e_syn::circuits::all_benchmarks() {
            let s = b.network.stats();
            println!(
                "{:8} {:10} {:4} in {:4} out {:5} gates depth {}",
                b.name,
                b.suite,
                s.inputs,
                s.outputs,
                s.gates(),
                s.depth
            );
        }
        return Ok(());
    }
    let net = e_syn::circuits::by_name(name).ok_or_else(|| format!("unknown circuit `{name}`"))?;
    print!("{}", net.to_eqn());
    Ok(())
}

/// `esyn gym` — saturate each requested registry circuit, then race the
/// extraction engines on the resulting e-graph and print a QoR/time
/// table. Fails (non-zero exit) if any engine's result flunks the shared
/// validator or an exact engine comes out worse than the best greedy one.
fn gym_cmd(args: &[String]) -> Result<(), String> {
    let mut circuits: Vec<String> = Vec::new();
    let mut engines: Option<Vec<&'static str>> = None;
    let mut parallelism = Parallelism::Auto;
    let mut cost: (&'static str, &dyn CostModel<BoolLang>) = ("unit", &UnitCost);
    // Gym races are about extraction, not saturation: grow the e-graphs
    // with a small budget by default so a full-registry race stays
    // interactive; `--full` switches to the default optimization limits.
    let mut limits = SaturationLimits::small();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engines" => {
                let list = it.next().ok_or("--engines needs a comma-separated list")?;
                engines = Some(
                    list.split(',')
                        .map(parse_engine)
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            "--cost" => cost = parse_cost_model(it.next().ok_or("--cost needs a value")?)?,
            "--full" => limits = SaturationLimits::default(),
            "--threads" => {
                parallelism = parse_threads(it.next().ok_or("--threads needs a value")?)?
            }
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument `{other}`"))
            }
            other => circuits.push(other.to_owned()),
        }
    }
    let engines = engines.unwrap_or_else(|| ENGINE_NAMES.to_vec());
    let benchmarks: Vec<(String, Network)> = if circuits.is_empty() {
        e_syn::circuits::all_benchmarks()
            .into_iter()
            .map(|b| (b.name.to_owned(), b.network))
            .collect()
    } else {
        circuits
            .iter()
            .map(|name| {
                e_syn::circuits::by_name(name)
                    .map(|net| (name.clone(), net))
                    .ok_or_else(|| format!("unknown circuit `{name}` (try `esyn bench list`)"))
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    let mut failures = 0usize;
    for (name, net) in &benchmarks {
        let expr = network_to_recexpr(net);
        let t0 = std::time::Instant::now();
        let runner = saturate_par(&expr, &all_rules(), &limits, parallelism);
        let sat_ms = t0.elapsed().as_secs_f64() * 1e3;
        let egraph = &runner.egraph;
        println!(
            "{name}: {} e-nodes / {} e-classes after saturation ({sat_ms:.1} ms, stop {:?}, cost {})",
            egraph.total_nodes(),
            egraph.num_classes(),
            runner.stop_reason,
            cost.0
        );
        let rows = gym::race(egraph, &runner.roots, cost.1, &engines, parallelism);
        println!(
            "  {:<18} {:>10} {:>12} {:>10}  check",
            "engine", "dag-cost", "tree-cost", "time(us)"
        );
        let mut best_greedy = f64::INFINITY;
        let mut best_exact = f64::INFINITY;
        for row in &rows {
            let check = match &row.check {
                Ok(()) => "ok".to_owned(),
                Err(e) => {
                    failures += 1;
                    format!("FAIL: {e}")
                }
            };
            println!(
                "  {:<18} {:>10.1} {:>12.1} {:>10}  {check}",
                row.engine, row.dag_cost, row.tree_cost, row.micros
            );
            if row.check.is_ok() {
                match row.engine {
                    "bnb" | "exact" => best_exact = best_exact.min(row.dag_cost),
                    _ => best_greedy = best_greedy.min(row.dag_cost),
                }
            }
        }
        if best_exact.is_finite() && best_greedy.is_finite() && best_exact > best_greedy + 1e-9 {
            failures += 1;
            println!("  FAIL: exact dag-cost {best_exact} worse than best greedy {best_greedy}");
        }
    }
    if failures > 0 {
        return Err(format!("{failures} gym check(s) failed"));
    }
    Ok(())
}

/// `esyn pareto` — saturate each requested registry circuit, race the
/// extraction engines under an objective pair (default area × depth),
/// and print every engine's point plus the non-dominated frontier.
///
/// Deliberately prints no wall-clock figures: the output is a pure
/// function of the circuit, the objective pair, and the engine list, so
/// it is bit-identical at any `ESYN_THREADS` / `--threads` setting.
fn pareto_cmd(args: &[String]) -> Result<(), String> {
    let mut circuits: Vec<String> = Vec::new();
    let mut engines: Option<Vec<&'static str>> = None;
    let mut parallelism = Parallelism::Auto;
    let mut x_name = "area".to_owned();
    let mut y_name = "depth".to_owned();
    let mut limits = SaturationLimits::small();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--x" => x_name = it.next().ok_or("--x needs an objective name")?.clone(),
            "--y" => y_name = it.next().ok_or("--y needs an objective name")?.clone(),
            "--engines" => {
                let list = it.next().ok_or("--engines needs a comma-separated list")?;
                engines = Some(
                    list.split(',')
                        .map(parse_engine)
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            "--full" => limits = SaturationLimits::default(),
            "--threads" => {
                parallelism = parse_threads(it.next().ok_or("--threads needs a value")?)?
            }
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument `{other}`"))
            }
            other => circuits.push(other.to_owned()),
        }
    }
    let x = parse_named_objective(&x_name)?;
    let y = parse_named_objective(&y_name)?;
    let engines = engines.unwrap_or_else(|| ENGINE_NAMES.to_vec());
    let benchmarks: Vec<(String, Network)> = if circuits.is_empty() {
        e_syn::circuits::all_benchmarks()
            .into_iter()
            .map(|b| (b.name.to_owned(), b.network))
            .collect()
    } else {
        circuits
            .iter()
            .map(|name| {
                e_syn::circuits::by_name(name)
                    .map(|net| (name.clone(), net))
                    .ok_or_else(|| format!("unknown circuit `{name}` (try `esyn bench list`)"))
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    for (name, net) in &benchmarks {
        let expr = network_to_recexpr(net);
        let runner = saturate_par(&expr, &all_rules(), &limits, parallelism);
        let egraph = &runner.egraph;
        println!(
            "{name}: {} e-nodes / {} e-classes (stop {:?})",
            egraph.total_nodes(),
            egraph.num_classes(),
            runner.stop_reason
        );
        let race = pareto_race(egraph, &runner.roots, x, y, &engines, parallelism);
        println!(
            "  {:<18} {:<12} {:>12} {:>12}",
            "engine", "raced-under", race.x_name, race.y_name
        );
        for p in &race.points {
            println!(
                "  {:<18} {:<12} {:>12} {:>12}",
                p.engine, p.raced_under, p.x, p.y
            );
        }
        let frontier: Vec<String> = race
            .frontier
            .iter()
            .map(|(px, py)| format!("({px}, {py})"))
            .collect();
        println!(
            "  frontier ({} of {} points): {}",
            race.frontier.len(),
            race.points.len(),
            frontier.join(" ")
        );
    }
    Ok(())
}

/// Parses a byte-size argument: a plain count or one with a `k`/`m`/`g`
/// suffix (binary multiples). `0` disables the cache it configures.
fn parse_bytes(s: &str) -> Option<usize> {
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: usize = digits.parse().ok()?;
    n.checked_shl(shift).filter(|&v| v >> shift == n)
}

/// `esyn serve` — start the long-running batch synthesis service.
///
/// Defaults to stdin/stdout mode; `--port N` listens on TCP instead
/// (`--port 0` picks an ephemeral port; the bound address is printed to
/// stdout and flushed before the first accept, so harnesses can parse
/// it). `--train tiny` trains the small test-grade cost models at
/// startup instead of loading/training the full set — the fast path CI's
/// smoke run uses. `--cache-bytes` / `--sat-cache-bytes` set the byte
/// budgets of the result tier and the saturated-e-graph tier (`0`
/// disables a tier; sizes accept `k`/`m`/`g` suffixes).
fn serve(args: &[String]) -> Result<(), String> {
    use e_syn::serve::{serve_stdio, serve_tcp, Engine, ServeConfig};

    let mut port: Option<u16> = None;
    let mut stdio = false;
    let mut models_dir = None;
    let mut train_tiny = false;
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                let v = it.next().ok_or("--port needs a value")?;
                port = Some(
                    v.parse()
                        .map_err(|_| format!("--port needs a number 0-65535, got `{v}`"))?,
                );
            }
            "--stdio" => stdio = true,
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                cfg.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{v}`"))?;
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                cfg.queue_cap =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--queue-cap needs a positive integer, got `{v}`")
                    })?;
            }
            "--cache-bytes" => {
                let v = it.next().ok_or("--cache-bytes needs a value")?;
                cfg.cache_bytes = parse_bytes(v).ok_or_else(|| {
                    format!("--cache-bytes needs a byte size like 1048576, 512k or 32m, got `{v}`")
                })?;
            }
            "--sat-cache-bytes" => {
                let v = it.next().ok_or("--sat-cache-bytes needs a value")?;
                cfg.sat_cache_bytes = parse_bytes(v).ok_or_else(|| {
                    format!(
                        "--sat-cache-bytes needs a byte size like 1048576, 512k or 64m, got `{v}`"
                    )
                })?;
            }
            "--models" => models_dir = Some(it.next().ok_or("--models needs a value")?.clone()),
            "--train" => match it.next().ok_or("--train needs tiny or default")?.as_str() {
                "tiny" => train_tiny = true,
                "default" => train_tiny = false,
                other => return Err(format!("--train needs tiny or default, got `{other}`")),
            },
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if stdio && port.is_some() {
        return Err("--stdio and --port are mutually exclusive".into());
    }
    let lib = Library::asap7_like();
    let models = if train_tiny {
        train_cost_models(&TrainConfig::tiny(), &lib)
    } else {
        models_for(models_dir.as_deref(), &lib)
    };
    let engine = Engine::new(models, lib, cfg);
    match port {
        None => {
            serve_stdio(engine);
            Ok(())
        }
        Some(p) => {
            let listener = std::net::TcpListener::bind(("127.0.0.1", p))
                .map_err(|e| format!("bind 127.0.0.1:{p}: {e}"))?;
            let addr = listener.local_addr().map_err(|e| e.to_string())?;
            println!("esyn-serve listening on {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
            serve_tcp(engine, listener).map_err(|e| e.to_string())
        }
    }
}

fn aig_export(path: &str, out: &str) -> Result<(), String> {
    let net = load(path)?;
    let aig = Aig::from_network(&net).cleanup();
    if out.ends_with(".aag") {
        std::fs::write(out, aig.to_aiger_ascii()).map_err(|e| format!("{out}: {e}"))?;
    } else {
        std::fs::write(out, aig.to_aiger_binary()).map_err(|e| format!("{out}: {e}"))?;
    }
    println!(
        "wrote {} ({} ands, {} levels)",
        out,
        aig.num_ands(),
        aig.num_levels()
    );
    Ok(())
}
