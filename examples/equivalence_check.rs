//! Combinational equivalence checking — the validation step E-Syn runs on
//! every optimised circuit (Figure 2, "we also check the result using
//! combinational equivalence checking").
//!
//! Optimises a benchmark with the AIG baseline script and proves the
//! result equivalent, then plants a bug and shows the counterexample the
//! checker returns.
//!
//! ```text
//! cargo run --release --example equivalence_check
//! ```

use e_syn::aig::{scripts, Aig};
use e_syn::cec::{check_equivalence, EquivResult};
use e_syn::eqn::parse_eqn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = e_syn::circuits::by_name("cavlc").expect("registry circuit");
    println!(
        "circuit: cavlc-like, {} gates, depth {}",
        net.stats().gates(),
        net.stats().depth
    );

    // Optimise through the AIG baseline (strash + dc2-style script).
    let aig = Aig::from_network(&net);
    let optimized = scripts::dc2(&aig);
    println!(
        "dc2: {} -> {} AND nodes",
        aig.num_ands(),
        optimized.num_ands()
    );
    match check_equivalence(&net, &optimized.to_network()) {
        EquivResult::Equivalent => println!("[ok] optimised circuit proven equivalent"),
        other => panic!("optimiser must preserve function: {other:?}"),
    }

    // Now a deliberately broken "optimisation": swap AND for OR in one
    // output of a small adder.
    let good = parse_eqn(
        "INORDER = a b cin;\nOUTORDER = sum cout;\n\
         sum = (a*!b + !a*b)*!cin + !(a*!b + !a*b)*cin;\n\
         cout = (a*b) + (cin*(a+b));\n",
    )?;
    let buggy = parse_eqn(
        "INORDER = a b cin;\nOUTORDER = sum cout;\n\
         sum = (a*!b + !a*b)*!cin + !(a*!b + !a*b)*cin;\n\
         cout = (a*b) + (cin*(a*b));\n", // carry-propagate broken
    )?;
    match check_equivalence(&good, &buggy) {
        EquivResult::NotEquivalent {
            output,
            counterexample,
        } => {
            let names = good.input_names();
            let assignment: Vec<String> = names
                .iter()
                .zip(&counterexample)
                .map(|(n, v)| format!("{n}={}", u8::from(*v)))
                .collect();
            println!(
                "[ok] bug caught: output #{output} ({}) differs under {}",
                good.outputs()[output].0,
                assignment.join(", ")
            );
        }
        other => panic!("checker must find the planted bug: {other:?}"),
    }
    Ok(())
}
