//! Design-space exploration in the style of the paper's Figure 6: sweep
//! the baseline flow over delay targets, scatter every E-Syn pool
//! candidate, and compare the Pareto frontiers.
//!
//! ```text
//! cargo run --release --example pareto_explorer -- frg2
//! ```

use e_syn::circuits;
use e_syn::core::pareto::frontier_dominates;
use e_syn::core::{
    abc_baseline, extract_pool, flow::measure_pool, lang::network_to_recexpr, pareto_front,
    rules::all_rules, saturate, Objective, PoolConfig, SaturationLimits,
};
use e_syn::techmap::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "frg2".to_owned());
    let net = circuits::by_name(&name).ok_or_else(|| format!("unknown circuit `{name}`"))?;
    let lib = Library::asap7_like();

    // --- Baseline design points: sweep the delay target. ---
    println!("# baseline ABC flow, delay-target sweep");
    let reference = abc_baseline(&net, &lib, Objective::Delay, None);
    let mut abc_points = Vec::new();
    for k in 0..8 {
        let target = reference.delay * (0.85 + 0.15 * k as f64);
        let q = abc_baseline(&net, &lib, Objective::Delay, Some(target));
        println!(
            "abc point: area {:9.2}  delay {:9.2}  (target {:8.2})",
            q.area, q.delay, target
        );
        abc_points.push((q.delay, q.area));
    }

    // --- E-Syn pool candidates. ---
    println!("# e-syn pool candidates");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::default());
    let pool = extract_pool(
        &runner.egraph,
        runner.roots[0],
        &PoolConfig::with_samples(60, 6),
    );
    let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let qors = measure_pool(&pool, &names, &lib, Objective::Delay, None);
    let esyn_points: Vec<(f64, f64)> = qors.iter().map(|q| (q.delay, q.area)).collect();
    for q in &qors {
        println!("esyn point: area {:9.2}  delay {:9.2}", q.area, q.delay);
    }

    let abc_front = pareto_front(&abc_points);
    let esyn_front = pareto_front(&esyn_points);
    println!("# frontiers (delay, area)");
    println!("abc frontier:  {abc_front:?}");
    println!("esyn frontier: {esyn_front:?}");
    if frontier_dominates(&esyn_front, &abc_front) {
        println!("verdict: E-Syn frontier dominates the baseline frontier");
    } else if frontier_dominates(&abc_front, &esyn_front) {
        println!("verdict: baseline frontier dominates E-Syn");
    } else {
        println!("verdict: frontiers cross");
    }
    Ok(())
}
