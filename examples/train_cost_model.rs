//! Train the technology-aware cost models exactly as §3.2.1 describes:
//! fuzz random circuits, label them through the mapping backend, fit two
//! GBDT regressors, and report the paper's R-value metric plus feature
//! importances.
//!
//! ```text
//! cargo run --release --example train_cost_model -- 400
//! ```

use e_syn::core::{train_cost_models, Features, TrainConfig};
use e_syn::techmap::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_circuits: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(300);

    let lib = Library::asap7_like();
    let cfg = TrainConfig {
        num_circuits,
        ..Default::default()
    };
    println!(
        "generating {num_circuits} fuzzed circuits and mapping them (paper: 50000 aigfuzz circuits)..."
    );
    let t0 = std::time::Instant::now();
    let models = train_cost_models(&cfg, &lib);
    println!("trained in {:.1}s", t0.elapsed().as_secs_f64());
    println!();
    println!(
        "delay model: R = {:.3}   (paper reports 0.78)",
        models.r_delay
    );
    println!(
        "area  model: R = {:.3}   (paper reports 0.76)",
        models.r_area
    );
    println!();

    let names = [
        "num_and",
        "num_or",
        "num_not",
        "num_nodes",
        "depth",
        "density",
        "edge_sum",
    ];
    assert_eq!(names.len(), Features::LEN);
    println!("feature importances (split counts, normalised):");
    let imp_d = models.delay.model().feature_importance();
    let imp_a = models.area.model().feature_importance();
    println!("  {:>10} {:>8} {:>8}", "feature", "delay", "area");
    for (i, n) in names.iter().enumerate() {
        println!("  {:>10} {:8.3} {:8.3}", n, imp_d[i], imp_a[i]);
    }

    let dir = std::path::Path::new("target/esyn-models");
    models.save(dir)?;
    println!("\nmodels saved to {}", dir.display());
    Ok(())
}
