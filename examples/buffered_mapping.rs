//! Fanout buffering in the mapping backend — the `buffer` step of the
//! paper's §4.3 baseline script (`buffer; upsize; dnsize`).
//!
//! Maps a fanout-heavy circuit with and without buffer insertion and
//! compares post-sizing QoR; the buffered flow should win on delay at a
//! modest area premium.
//!
//! ```text
//! cargo run --release --example buffered_mapping
//! ```

use e_syn::aig::Aig;
use e_syn::eqn::parse_eqn;
use e_syn::techmap::{map_and_size, map_buffer_size, BufferConfig, Library, MapMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared product (sel = a*b) fanning out to 48 output cones: a
    // worst case for the linear load-dependent delay model.
    let n = 48;
    let mut src = String::from("INORDER = a b");
    for i in 0..n {
        src.push_str(&format!(" x{i}"));
    }
    src.push_str(";\nOUTORDER =");
    for i in 0..n {
        src.push_str(&format!(" f{i}"));
    }
    src.push_str(";\n");
    for i in 0..n {
        src.push_str(&format!("f{i} = (a*b) * x{i};\n"));
    }
    let net = parse_eqn(&src)?;
    let aig = Aig::from_network(&net);
    let lib = Library::asap7_like();

    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>8}",
        "flow", "gates", "area (um2)", "delay (ps)", "levels"
    );
    for mode in [MapMode::Delay, MapMode::Area] {
        let (plain_nl, plain) = map_and_size(&aig, &lib, mode, None);
        let cfg = BufferConfig::default();
        let (buf_nl, buffered) = map_buffer_size(&aig, &lib, mode, None, &cfg);
        println!(
            "{:<24} {:>8} {:>12.2} {:>12.2} {:>8}",
            format!("{mode:?} (no buffer)"),
            plain.gates,
            plain.area,
            plain.delay,
            plain.levels
        );
        println!(
            "{:<24} {:>8} {:>12.2} {:>12.2} {:>8}",
            format!("{mode:?} (buffered)"),
            buffered.gates,
            buffered.area,
            buffered.delay,
            buffered.levels
        );

        // Both netlists must still compute the original function.
        let words: Vec<u64> = (0..(n as u64 + 2))
            .map(|i| (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(aig.simulate(&words), plain_nl.simulate(&lib, &words));
        assert_eq!(aig.simulate(&words), buf_nl.simulate(&lib, &words));
    }
    println!(
        "area-mode mapping shares (a*b) into one 48-sink net, so buffering cuts its delay\n\
         sharply for a few buffers of area; delay-mode mapping duplicated the AND per cone\n\
         (fanout sits on the ideal-driver PIs), so buffering is correctly a no-op there"
    );
    Ok(())
}
