//! Quickstart: optimise a small circuit with E-Syn and compare it against
//! the ABC-style baseline flow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use e_syn::core::{
    abc_baseline, esyn_optimize, train_cost_models, EsynConfig, Objective, TrainConfig,
};
use e_syn::eqn::parse_eqn;
use e_syn::techmap::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A multiplexer-rich function with obvious factoring opportunities.
    let net = parse_eqn(
        "INORDER = a b c d e;\n\
         OUTORDER = f g;\n\
         f = (a*b) + (a*c) + (a*d) + (a*e);\n\
         g = ((a+b) * (a+c)) + ((!a*d) + (!a*e));\n",
    )?;
    println!(
        "input: {} gates, depth {}",
        net.stats().gates(),
        net.stats().depth
    );

    let lib = Library::asap7_like();
    println!("training technology-aware cost models (tiny corpus)...");
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    println!(
        "  delay model R = {:.3}, area model R = {:.3} (paper: 0.78 / 0.76)",
        models.r_delay, models.r_area
    );

    for objective in [Objective::Delay, Objective::Area, Objective::Balanced] {
        let baseline = abc_baseline(&net, &lib, objective, None);
        let result = esyn_optimize(&net, &models, &lib, objective, &EsynConfig::small());
        println!(
            "{objective:?}: baseline area {:8.2} um2, delay {:8.2} ps | e-syn area {:8.2} um2, delay {:8.2} ps  (pool {}, e-graph {} nodes, verified {:?})",
            baseline.area,
            baseline.delay,
            result.qor.area,
            result.qor.delay,
            result.pool_size,
            result.egraph_nodes,
            result.verified,
        );
    }
    Ok(())
}
