//! Optimise any named benchmark circuit from the paper's evaluation
//! (§4.1) and print the ABC-baseline vs E-Syn comparison.
//!
//! ```text
//! cargo run --release --example optimize_benchmark -- max delay
//! cargo run --release --example optimize_benchmark -- 5_5 area
//! ```
//!
//! Run without arguments to list the available circuits.

use e_syn::circuits;
use e_syn::core::{
    abc_baseline, esyn_optimize, train_cost_models, EsynConfig, Objective, TrainConfig,
};
use e_syn::techmap::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        println!("usage: optimize_benchmark <circuit> [delay|area|balanced]");
        println!("available circuits:");
        for b in circuits::all_benchmarks() {
            let s = b.network.stats();
            println!(
                "  {:8} ({:10}) — {:4} inputs, {:4} outputs, {:5} gates",
                b.name,
                b.suite,
                s.inputs,
                s.outputs,
                s.gates()
            );
        }
        return Ok(());
    };
    let objective = match args.next().as_deref() {
        None | Some("delay") => Objective::Delay,
        Some("area") => Objective::Area,
        Some("balanced") => Objective::Balanced,
        Some(other) => return Err(format!("unknown objective `{other}`").into()),
    };

    let net = circuits::by_name(&name).ok_or_else(|| format!("unknown circuit `{name}`"))?;
    let stats = net.stats();
    println!(
        "{name}: {} inputs, {} outputs, {} gates, depth {}",
        stats.inputs,
        stats.outputs,
        stats.gates(),
        stats.depth
    );

    let lib = Library::asap7_like();
    println!("training cost models...");
    let models = train_cost_models(&TrainConfig::tiny(), &lib);

    println!("running baseline ABC flow ({objective:?})...");
    let baseline = abc_baseline(&net, &lib, objective, None);
    println!("running E-Syn flow ({objective:?})...");
    let result = esyn_optimize(&net, &models, &lib, objective, &EsynConfig::default());

    println!();
    println!(
        "              {:>12} {:>12} {:>8} {:>8}",
        "area/um2", "delay/ps", "gates", "levels"
    );
    println!(
        "ABC baseline  {:12.2} {:12.2} {:8} {:8}",
        baseline.area, baseline.delay, baseline.gates, baseline.levels
    );
    println!(
        "E-Syn         {:12.2} {:12.2} {:8} {:8}",
        result.qor.area, result.qor.delay, result.qor.gates, result.qor.levels
    );
    println!(
        "e-graph: {} nodes / {} classes, pool {}, stop {:?}, verified {:?}",
        result.egraph_nodes,
        result.egraph_classes,
        result.pool_size,
        result.stop_reason,
        result.verified
    );
    let d_gain = 100.0 * (baseline.delay - result.qor.delay) / baseline.delay;
    let a_gain = 100.0 * (baseline.area - result.qor.area) / baseline.area;
    println!("delay gain {d_gain:+.2}%  area gain {a_gain:+.2}%");
    Ok(())
}
