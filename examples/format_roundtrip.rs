//! Format converters (§3.3): one circuit through every representation in
//! the workspace — equation format, e-graph S-expressions, BLIF and AIGER
//! — with a combinational equivalence check after each round-trip.
//!
//! ```text
//! cargo run --release --example format_roundtrip
//! ```

use e_syn::aig::Aig;
use e_syn::cec::{check_equivalence, EquivResult};
use e_syn::core::{network_to_recexpr, recexpr_to_network, BoolLang};
use e_syn::egraph::RecExpr;
use e_syn::eqn::{parse_blif, parse_eqn, write_blif, Network};

fn assert_equiv(stage: &str, a: &Network, b: &Network) {
    match check_equivalence(a, b) {
        EquivResult::Equivalent => println!("  [ok] {stage}: equivalent"),
        other => panic!("{stage} broke the function: {other:?}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A carry-select-style fragment with shared subterms.
    let src = "INORDER = a b c cin;\n\
               OUTORDER = sum cout;\n\
               sum = (a*!b + !a*b)*!cin + !(a*!b + !a*b)*cin;\n\
               cout = (a*b) + (cin*(a*!b + !a*b)) + c*0;\n";
    let net = parse_eqn(src)?;
    let stats = net.stats();
    println!(
        "parsed eqn: {} inputs, {} outputs, {} gates, depth {}",
        stats.inputs,
        stats.outputs,
        stats.gates(),
        stats.depth
    );

    // --- equation format (ABC write_eqn / read_eqn) ----------------------
    let eqn_text = net.to_eqn();
    let back = parse_eqn(&eqn_text)?;
    assert_equiv("eqn -> text -> eqn", &net, &back);

    // --- S-expressions (the egg interchange of Figure 2) -----------------
    let expr = network_to_recexpr(&net);
    let sexpr_text = expr.to_string();
    println!(
        "  s-expression: {} chars, {} DAG nodes",
        sexpr_text.len(),
        expr.len()
    );
    let reparsed: RecExpr<BoolLang> = sexpr_text.parse()?;
    let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let back = recexpr_to_network(&reparsed, &names);
    assert_equiv("network -> sexpr -> network", &net, &back);

    // --- BLIF (the LGSynth/ISCAS distribution format) --------------------
    let blif_text = write_blif(&net, "roundtrip");
    println!("  blif: {} lines", blif_text.lines().count());
    let back = parse_blif(&blif_text)?;
    assert_equiv("network -> blif -> network", &net, &back);

    // --- AIGER (the aigfuzz/training pipeline format) --------------------
    let aig = Aig::from_network(&net);
    let ascii = aig.to_aiger_ascii();
    println!(
        "  aiger: {} ands as aag ({} bytes), binary {} bytes",
        aig.num_ands(),
        ascii.len(),
        aig.to_aiger_binary().len()
    );
    let back = Aig::from_aiger_ascii(&ascii)?.to_network();
    assert_equiv("network -> aag -> network", &net, &back);
    let back = Aig::from_aiger_binary(&aig.to_aiger_binary())?.to_network();
    assert_equiv("network -> aig(binary) -> network", &net, &back);

    println!("all format round-trips preserve the function");
    Ok(())
}
