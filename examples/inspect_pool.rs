//! Diagnostic: dump every pool candidate of a circuit with its features,
//! model-predicted costs and measured post-backend QoR, plus the rank
//! correlation between prediction and measurement.
//!
//! ```text
//! cargo run --release --example inspect_pool -- bar
//! ```

use e_syn::core::{
    extract_pool_with, flow::measure_pool, lang::network_to_recexpr, rules::all_rules, saturate,
    CandidateCost, Features, Objective, PoolConfig, SaturationLimits,
};
use e_syn::core::{train_cost_models, CostModels, TrainConfig};
use e_syn::gbdt::pearson_r;
use e_syn::techmap::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bar".to_owned());
    let net = e_syn::circuits::by_name(&name).ok_or_else(|| format!("unknown `{name}`"))?;
    let lib = Library::asap7_like();
    // Full-scale models; cached on disk between runs.
    let cache = std::path::Path::new("target/esyn-models");
    let models = CostModels::load(cache).unwrap_or_else(|| {
        eprintln!("training cost models (cached under {})...", cache.display());
        let m = train_cost_models(&TrainConfig::default(), &lib);
        m.save(cache).ok();
        m
    });

    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::default());
    let pool = extract_pool_with(
        &runner.egraph,
        runner.roots[0],
        Some(&expr),
        &PoolConfig::with_samples(40, 0xD1A6),
    );
    let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let qors = measure_pool(&pool, &names, &lib, Objective::Delay, None);

    println!(
        "{:>4} {:>7} {:>6} {:>9} {:>9} | {:>9} {:>9}",
        "cand", "nodes", "depth", "pred-d", "pred-a", "meas-d", "meas-a"
    );
    let mut pred_d = Vec::new();
    let mut pred_a = Vec::new();
    let mut meas_d = Vec::new();
    let mut meas_a = Vec::new();
    for (i, (cand, q)) in pool.iter().zip(&qors).enumerate() {
        let f = Features::from_expr(cand);
        let pd = models.delay.cost(&f);
        let pa = models.area.cost(&f);
        println!(
            "{i:>4} {:>7} {:>6} {pd:>9.1} {pa:>9.1} | {:>9.2} {:>9.2}",
            f.num_nodes, f.depth, q.delay, q.area
        );
        pred_d.push(pd);
        pred_a.push(pa);
        meas_d.push(q.delay);
        meas_a.push(q.area);
    }
    println!();
    println!(
        "prediction-measurement correlation: delay R = {:.3}, area R = {:.3}",
        pearson_r(&pred_d, &meas_d),
        pearson_r(&pred_a, &meas_a)
    );
    let best_pred_d = (0..pool.len())
        .min_by(|&a, &b| pred_d[a].partial_cmp(&pred_d[b]).unwrap())
        .unwrap();
    let best_meas_d = (0..pool.len())
        .min_by(|&a, &b| meas_d[a].partial_cmp(&meas_d[b]).unwrap())
        .unwrap();
    let best_pred_a = (0..pool.len())
        .min_by(|&a, &b| pred_a[a].partial_cmp(&pred_a[b]).unwrap())
        .unwrap();
    let best_meas_a = (0..pool.len())
        .min_by(|&a, &b| meas_a[a].partial_cmp(&meas_a[b]).unwrap())
        .unwrap();
    println!(
        "delay: model picks #{best_pred_d} ({:.2}), oracle picks #{best_meas_d} ({:.2}) — regret {:+.2}%",
        meas_d[best_pred_d],
        meas_d[best_meas_d],
        100.0 * (meas_d[best_pred_d] - meas_d[best_meas_d]) / meas_d[best_meas_d]
    );
    println!(
        "area:  model picks #{best_pred_a} ({:.2}), oracle picks #{best_meas_a} ({:.2}) — regret {:+.2}%",
        meas_a[best_pred_a],
        meas_a[best_meas_a],
        100.0 * (meas_a[best_pred_a] - meas_a[best_meas_a]) / meas_a[best_meas_a]
    );
    Ok(())
}
