//! The `esyn-par` contract, proven end to end: pools, CEC verdicts
//! (including counterexamples) and GBDT models are **bit-identical at
//! any worker-thread count**. Parallelism trades wall-clock only.
//!
//! `Parallelism::Fixed` is the in-process stand-in for sweeping
//! `ESYN_THREADS` (mutating the environment would race the parallel test
//! harness); CI additionally runs the whole suite under `ESYN_THREADS=1`
//! to pin the environment-variable path.

use e_syn::aig::{scripts, Aig};
use e_syn::cec::{check_equivalence_par, EquivResult, DEFAULT_SIM_SEED};
use e_syn::core::{
    extract_pool_with, lang::network_to_recexpr, rules::all_rules, saturate, saturate_par,
    PoolConfig, SaturationLimits,
};
use e_syn::egraph::{AstDepth, AstSize};
use e_syn::gbdt::{Dataset, GbdtParams, GbdtRegressor};
use e_syn::par::Parallelism;

const SWEEP: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Fixed(2),
    Parallelism::Fixed(8),
];

#[test]
fn saturation_is_thread_count_invariant_on_a_real_circuit() {
    // The rule-search phase of `Runner::run` fans out over workers; the
    // whole saturation outcome — per-iteration statistics, stop reason,
    // and the expressions extracted from the final e-graph — must be
    // bit-identical at every thread count (`ESYN_THREADS` ∈ {1, 2, 4},
    // pinned in-process via `Parallelism::Fixed`).
    let net = e_syn::circuits::by_name("qadd").expect("qadd generator");
    let expr = network_to_recexpr(&net);
    let fingerprint = |par: Parallelism| {
        let runner = saturate_par(&expr, &all_rules(), &SaturationLimits::small(), par);
        type IterRow = (usize, usize, usize, usize, usize, usize, usize);
        let stats: Vec<IterRow> = runner
            .iterations
            .iter()
            .map(|i| {
                (
                    i.nodes,
                    i.classes,
                    i.applied,
                    i.skipped_substs,
                    i.rebuilds,
                    i.active_rules,
                    i.dropped_rules,
                )
            })
            .collect();
        let (size_cost, best_size) = runner.extract_best(AstSize);
        let (depth_cost, best_depth) = runner.extract_best(AstDepth);
        (
            stats,
            runner.stop_reason.expect("runner finished"),
            runner.egraph.total_nodes(),
            runner.egraph.num_classes(),
            runner.egraph.checksum(),
            (size_cost, best_size.to_string()),
            (depth_cost, best_depth.to_string()),
        )
    };
    let serial = fingerprint(Parallelism::Fixed(1));
    assert!(!serial.0.is_empty(), "saturation must record iterations");
    for par in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
        assert_eq!(fingerprint(par), serial, "saturation differs under {par:?}");
    }
}

#[test]
fn pool_extraction_is_thread_count_invariant_on_a_real_circuit() {
    let net = e_syn::circuits::by_name("qadd").expect("qadd generator");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::small());
    let pool_at = |par: Parallelism| {
        let cfg = PoolConfig {
            parallelism: par,
            ..PoolConfig::with_samples(96, 0xE5F1)
        };
        extract_pool_with(&runner.egraph, runner.roots[0], Some(&expr), &cfg)
    };
    let serial = pool_at(Parallelism::Serial);
    assert!(serial.len() >= 3, "pool too small: {}", serial.len());
    for par in SWEEP {
        assert_eq!(pool_at(par), serial, "pool differs under {par:?}");
    }
}

#[test]
fn extraction_gym_race_is_thread_count_invariant() {
    // The gym's parallel fan-out is the shared cost-table build; every
    // engine itself is a deterministic serial pass over the dense
    // snapshot. Everything a race reports except wall-clock — engine
    // order, DAG cost, tree cost, validator verdict — must be
    // bit-identical at `ESYN_THREADS` ∈ {1, 2, 4} (pinned in-process via
    // `Parallelism::Fixed`).
    use e_syn::extract::{gym, UnitCost, ENGINE_NAMES};
    let net = e_syn::circuits::by_name("qadd").expect("qadd generator");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::small());
    let race_at = |par: Parallelism| -> Vec<(&'static str, u64, u64, bool)> {
        gym::race(&runner.egraph, &runner.roots, &UnitCost, &ENGINE_NAMES, par)
            .into_iter()
            .map(|row| {
                (
                    row.engine,
                    row.dag_cost.to_bits(),
                    row.tree_cost.to_bits(),
                    row.check.is_ok(),
                )
            })
            .collect()
    };
    let serial = race_at(Parallelism::Fixed(1));
    assert_eq!(serial.len(), ENGINE_NAMES.len());
    assert!(serial.iter().all(|(_, _, _, ok)| *ok));
    for par in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
        assert_eq!(race_at(par), serial, "gym race differs under {par:?}");
    }
}

#[test]
fn pareto_race_is_thread_count_invariant() {
    // The multi-objective race shares the gym's structure (dense
    // snapshot + cost-table fan-out), so its entire outcome — point
    // order, both scores of every point, and the frontier — must be
    // bit-identical at `ESYN_THREADS` ∈ {1, 2, 4} (pinned in-process
    // via `Parallelism::Fixed`). This is what lets `esyn pareto` print
    // frontiers with no wall-clock caveat.
    use e_syn::extract::ENGINE_NAMES;
    use e_syn::objective::{objective_by_name, pareto_race};
    let net = e_syn::circuits::by_name("qadd").expect("qadd generator");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::small());
    let (x, y) = (
        objective_by_name("area").unwrap(),
        objective_by_name("depth").unwrap(),
    );
    type Fingerprint = (Vec<(&'static str, &'static str, u64, u64)>, Vec<(u64, u64)>);
    let race_at = |par: Parallelism| -> Fingerprint {
        let race = pareto_race(&runner.egraph, &runner.roots, x, y, &ENGINE_NAMES, par);
        (
            race.points
                .iter()
                .map(|p| (p.engine, p.raced_under, p.x.to_bits(), p.y.to_bits()))
                .collect(),
            race.frontier
                .iter()
                .map(|&(fx, fy)| (fx.to_bits(), fy.to_bits()))
                .collect(),
        )
    };
    let serial = race_at(Parallelism::Fixed(1));
    assert_eq!(serial.0.len(), ENGINE_NAMES.len(), "area drives one round");
    assert!(!serial.1.is_empty(), "frontier must be non-empty");
    for par in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
        assert_eq!(race_at(par), serial, "pareto race differs under {par:?}");
    }
}

#[test]
fn cec_verdict_is_thread_count_invariant_on_equivalent_networks() {
    // A multiplier against its dc2-resynthesised form: structurally very
    // different, functionally identical — every output miter does real
    // SAT work.
    let net = e_syn::circuits::by_name("3_3").expect("3_3 multiplier");
    let opt = scripts::dc2(&Aig::from_network(&net)).to_network();
    let verdicts: Vec<EquivResult> = SWEEP
        .iter()
        .map(|&par| check_equivalence_par(&net, &opt, DEFAULT_SIM_SEED, par))
        .collect();
    for v in &verdicts {
        assert_eq!(*v, EquivResult::Equivalent);
    }
}

#[test]
fn cec_counterexample_is_thread_count_invariant() {
    // An adder with one corrupted sum bit: the verdict must name the
    // same output and the same counterexample at every thread count.
    let good = e_syn::circuits::by_name("qadd").expect("qadd generator");
    let mut src = good.to_eqn();
    // Corrupt one internal definition: swap an AND for an OR on the
    // first gate line that uses `*`.
    let corrupted = {
        let mut done = false;
        src = src
            .lines()
            .map(|l| {
                if !done
                    && !l.starts_with("INORDER")
                    && !l.starts_with("OUTORDER")
                    && l.contains('*')
                {
                    done = true;
                    l.replacen('*', "+", 1)
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(done, "no gate line found to corrupt");
        e_syn::eqn::parse_eqn(&src).expect("corrupted eqn still parses")
    };
    let results: Vec<EquivResult> = SWEEP
        .iter()
        .map(|&par| check_equivalence_par(&good, &corrupted, DEFAULT_SIM_SEED, par))
        .collect();
    let EquivResult::NotEquivalent {
        output,
        counterexample,
    } = &results[0]
    else {
        panic!("corruption must be detectable, got {:?}", results[0]);
    };
    // the counterexample really distinguishes the two networks
    let words: Vec<u64> = counterexample.iter().map(|&v| v as u64).collect();
    assert_ne!(
        good.simulate(&words)[*output] & 1,
        corrupted.simulate(&words)[*output] & 1
    );
    for r in &results[1..] {
        assert_eq!(r, &results[0], "verdict depends on thread count");
    }
}

#[test]
fn gbdt_model_is_thread_count_invariant() {
    // Large enough that the split search clears its serial work gate
    // (rows × features ≥ 2^16) at the upper tree nodes.
    let rows: Vec<Vec<f64>> = (0..8400)
        .map(|i| {
            (0..8)
                .map(|f| ((i * (2 * f + 1) + 7 * f) % 101) as f64)
                .collect::<Vec<f64>>()
        })
        .collect();
    let labels: Vec<f64> = rows
        .iter()
        .map(|r| 2.0 * r[0] - r[3] + 0.25 * r[5] * r[7])
        .collect();
    let data = Dataset::new(rows, labels).unwrap();
    let fit_at = |par: Parallelism| {
        let params = GbdtParams {
            n_estimators: 25,
            parallelism: par,
            ..Default::default()
        };
        GbdtRegressor::fit(&data, &params, 11).to_text()
    };
    let serial = fit_at(Parallelism::Serial);
    for par in &SWEEP[1..] {
        assert_eq!(fit_at(*par), serial, "model differs under {par:?}");
    }
}

#[test]
fn serve_results_are_worker_count_and_interleaving_invariant() {
    // ISSUE satellite 4: concurrent submissions to the batch service at
    // worker counts {1, 2, 4} yield identical per-job `result` objects
    // regardless of queue interleaving. Jobs are submitted from one
    // thread per client so the enqueue order itself races; only the
    // `cached` flags may differ between runs (a duplicate is served by
    // the result cache or coalesces onto its twin's in-flight
    // computation depending on timing — both paths are byte-identical).
    use e_syn::core::{train_cost_models, TrainConfig};
    use e_syn::serve::json::{self, Json};
    use e_syn::serve::{Engine, ServeConfig};
    use e_syn::techmap::Library;
    use std::collections::BTreeMap;
    use std::sync::mpsc::channel;
    use std::sync::Arc;
    use std::time::Duration;

    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    let jobs: Vec<(String, String)> = [
        ("3_3", r#""seed":1"#),
        ("3_3", r#""seed":2"#),
        ("qadd", r#""seed":1"#),
        ("b12", r#""seed":1"#),
        ("3_3", r#""seed":1"#), // duplicate: may hit or recompute
        ("max", r#""seed":1"#),
    ]
    .iter()
    .enumerate()
    .map(|(i, (circuit, extra))| {
        (
            format!("job{i}"),
            format!(
                r#"{{"op":"submit","id":"job{i}","format":"name","circuit":"{circuit}","config":{{"iter_limit":3,"node_limit":2000,"samples":6,{extra}}}}}"#
            ),
        )
    })
    .collect();

    let run_at = |workers: usize| -> BTreeMap<String, String> {
        let engine = Engine::new(
            models.clone(),
            lib.clone(),
            ServeConfig {
                workers,
                queue_cap: 32,
                cache_bytes: 1 << 20,
                ..ServeConfig::default()
            },
        );
        let (tx, rx) = channel();
        let submitters: Vec<_> = jobs
            .iter()
            .cloned()
            .map(|(_, line)| {
                let e = Arc::clone(&engine);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    e.handle_line(&line, &tx);
                })
            })
            .collect();
        for s in submitters {
            s.join().expect("submitter thread");
        }
        let mut by_id = BTreeMap::new();
        for _ in 0..jobs.len() {
            let line = rx
                .recv_timeout(Duration::from_secs(300))
                .expect("result within deadline");
            let reply = json::parse(&line).expect("valid reply JSON");
            assert_eq!(
                reply.get("reply").and_then(Json::as_str),
                Some("result"),
                "unexpected reply: {line}"
            );
            let id = reply.get("id").and_then(Json::as_str).unwrap().to_owned();
            let bytes = reply.get("result").expect("result object").encode();
            by_id.insert(id, bytes);
        }
        // Single-flight invariant: the six jobs span five distinct
        // cache keys, and the duplicate is served by the result cache
        // or by coalescing onto its twin's in-flight computation —
        // never recomputed — at every worker count.
        assert_eq!(
            engine.stats().computed,
            5,
            "five distinct keys must mean exactly five computations"
        );
        engine.shutdown();
        by_id
    };

    let serial = run_at(1);
    assert_eq!(serial.len(), jobs.len(), "every job must be answered");
    let (dup, orig) = (&serial["job4"], &serial["job0"]);
    assert_eq!(
        dup, orig,
        "identical submissions must carry identical payloads"
    );
    for workers in [2usize, 4] {
        assert_eq!(
            run_at(workers),
            serial,
            "serve results differ at {workers} workers"
        );
    }
}
