//! Property-based integration tests: random Boolean networks pushed
//! through every transformation layer must keep their function.
//!
//! The properties run as seeded loops over the in-repo deterministic PRNG
//! (`esyn-rand`); every case derives its generator from the test name and
//! case index, so a failure message's `case N` reproduces exactly.

use e_syn::aig::{Aig, ChoiceAig};
use e_syn::cec::{check_equivalence, EquivResult};
use e_syn::core::lang::{network_to_recexpr, recexpr_to_network};
use e_syn::core::{extract_pool, rules::all_rules, saturate, PoolConfig, SaturationLimits};
use e_syn::eqn::{parse_blif, write_blif, Network, NodeId};
use e_syn::extract::{engine_by_name, extract_best, UnitCost, ENGINE_NAMES};
use e_syn::techmap::{buffer, map_aig, map_choices, BufferConfig, Library, MapMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Cases per property (matches the seed's proptest budget).
const CASES: u64 = 24;

/// Deterministic per-case generator: FNV-1a over the test name, mixed
/// with the case index.
fn case_rng(test: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A recipe for building a random network over `n` inputs.
#[derive(Clone, Debug)]
enum Op {
    And(usize, usize),
    Or(usize, usize),
    Not(usize),
    Xor(usize, usize),
}

/// Draws `len_range`-many random ops with operand indices in `0..64`
/// (resolved modulo the live node pool by [`build_net`]).
fn random_ops(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(min_len..max_len);
    (0..len)
        .map(|_| {
            let a = rng.gen_range(0usize..64);
            let b = rng.gen_range(0usize..64);
            match rng.gen_range(0u32..4) {
                0 => Op::And(a, b),
                1 => Op::Or(a, b),
                2 => Op::Not(a),
                _ => Op::Xor(a, b),
            }
        })
        .collect()
}

fn build_net(num_inputs: usize, ops: &[Op], num_outputs: usize) -> Network {
    let mut net = Network::new();
    let mut nodes: Vec<NodeId> = (0..num_inputs)
        .map(|i| net.input(format!("x{i}")))
        .collect();
    for op in ops {
        let pick = |k: usize| nodes[k % nodes.len()];
        let id = match *op {
            Op::And(a, b) => {
                let (x, y) = (pick(a), pick(b));
                net.and(x, y)
            }
            Op::Or(a, b) => {
                let (x, y) = (pick(a), pick(b));
                net.or(x, y)
            }
            Op::Not(a) => {
                let x = pick(a);
                net.not(x)
            }
            Op::Xor(a, b) => {
                let (x, y) = (pick(a), pick(b));
                net.xor(x, y)
            }
        };
        nodes.push(id);
    }
    for k in 0..num_outputs {
        let id = nodes[nodes.len() - 1 - (k % nodes.len())];
        net.output(format!("f{k}"), id);
    }
    net
}

#[test]
fn aig_roundtrip_preserves_function() {
    for case in 0..CASES {
        let mut rng = case_rng("aig_roundtrip", case);
        let ops = random_ops(&mut rng, 1, 40);
        let num_inputs = rng.gen_range(2usize..6);
        let num_outputs = rng.gen_range(1usize..4);
        let net = build_net(num_inputs, &ops, num_outputs);
        let aig = Aig::from_network(&net);
        let back = aig.to_network();
        assert_eq!(
            check_equivalence(&net, &back),
            EquivResult::Equivalent,
            "case {case}"
        );
    }
}

#[test]
fn aig_optimisation_preserves_function() {
    for case in 0..CASES {
        let mut rng = case_rng("aig_optimisation", case);
        let ops = random_ops(&mut rng, 1, 40);
        let num_inputs = rng.gen_range(2usize..6);
        let net = build_net(num_inputs, &ops, 2);
        let aig = Aig::from_network(&net);
        for (i, opt) in [aig.rewrite(false), aig.balance(), aig.refactor(false, 6)]
            .into_iter()
            .enumerate()
        {
            let back = opt.to_network();
            assert_eq!(
                check_equivalence(&net, &back),
                EquivResult::Equivalent,
                "case {case}, pass {i}"
            );
        }
    }
}

#[test]
fn mapping_preserves_function() {
    let lib = Library::asap7_like();
    for case in 0..CASES {
        let mut rng = case_rng("mapping", case);
        let ops = random_ops(&mut rng, 1, 30);
        let num_inputs = rng.gen_range(2usize..6);
        let net = build_net(num_inputs, &ops, 2);
        let aig = Aig::from_network(&net);
        let nl = map_aig(&aig, &lib, MapMode::Delay);
        let words: Vec<u64> = (0..num_inputs as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(
            aig.simulate(&words),
            nl.simulate(&lib, &words),
            "case {case}"
        );
    }
}

#[test]
fn fraig_and_choice_mapping_preserve_function() {
    let lib = Library::asap7_like();
    for case in 0..CASES {
        let mut rng = case_rng("fraig_and_choice", case);
        let ops = random_ops(&mut rng, 1, 24);
        let num_inputs = rng.gen_range(2usize..6);
        let seed = rng.gen_range(0u64..1000);
        let net = build_net(num_inputs, &ops, 2);
        let aig = Aig::from_network(&net);
        let fraiged = aig.fraig(seed);
        assert_eq!(
            check_equivalence(&net, &fraiged.to_network()),
            EquivResult::Equivalent,
            "case {case}, seed {seed}"
        );
        let choice = ChoiceAig::build(&aig, seed);
        let nl = map_choices(&choice, &lib, MapMode::Area);
        let words: Vec<u64> = (0..num_inputs as u64)
            .map(|i| (i + seed).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(
            aig.simulate(&words),
            nl.simulate(&lib, &words),
            "case {case}, seed {seed}"
        );
    }
}

#[test]
fn buffering_preserves_function_and_fanout_limit() {
    let lib = Library::asap7_like();
    for case in 0..CASES {
        let mut rng = case_rng("buffering", case);
        let ops = random_ops(&mut rng, 4, 40);
        let num_inputs = rng.gen_range(2usize..6);
        let max_fanout = rng.gen_range(2usize..6);
        let net = build_net(num_inputs, &ops, 3);
        let aig = Aig::from_network(&net);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let cfg = BufferConfig {
            max_fanout,
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        let words: Vec<u64> = (0..num_inputs as u64)
            .map(|i| i.wrapping_mul(0x0123_4567_89AB_CDEF))
            .collect();
        assert_eq!(
            nl.simulate(&lib, &words),
            buffered.simulate(&lib, &words),
            "case {case}"
        );
        // Every gate-output net respects the limit (PIs and POs counted).
        let mut counts = vec![0usize; buffered.num_gates()];
        for g in buffered.gates() {
            for s in &g.inputs {
                if let e_syn::techmap::Signal::Gate(j) = s {
                    counts[*j as usize] += 1;
                }
            }
        }
        for (_, s) in buffered.outputs() {
            if let e_syn::techmap::Signal::Gate(j) = s {
                counts[*j as usize] += 1;
            }
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                c <= max_fanout,
                "case {case}: gate {g} fanout {c} > {max_fanout}"
            );
        }
    }
}

#[test]
fn aiger_and_blif_roundtrips_preserve_function() {
    for case in 0..CASES {
        let mut rng = case_rng("aiger_blif_roundtrip", case);
        let ops = random_ops(&mut rng, 1, 40);
        let num_inputs = rng.gen_range(2usize..6);
        let net = build_net(num_inputs, &ops, 2);
        // BLIF round-trip at the network level.
        let back = parse_blif(&write_blif(&net, "prop")).expect("writer output parses");
        assert_eq!(
            check_equivalence(&net, &back),
            EquivResult::Equivalent,
            "case {case} (blif)"
        );
        // AIGER round-trips (ASCII and binary) at the AIG level.
        let aig = Aig::from_network(&net);
        let ascii = Aig::from_aiger_ascii(&aig.to_aiger_ascii()).expect("aag parses");
        assert_eq!(
            check_equivalence(&net, &ascii.to_network()),
            EquivResult::Equivalent,
            "case {case} (aag)"
        );
        let binary = Aig::from_aiger_binary(&aig.to_aiger_binary()).expect("aig parses");
        assert_eq!(
            check_equivalence(&net, &binary.to_network()),
            EquivResult::Equivalent,
            "case {case} (aig)"
        );
    }
}

#[test]
fn dag_extraction_stays_equivalent_and_reports_its_own_cost() {
    for case in 0..CASES {
        let mut rng = case_rng("dag_extraction", case);
        let ops = random_ops(&mut rng, 1, 16);
        let num_inputs = rng.gen_range(2usize..5);
        let net = build_net(num_inputs, &ops, 1);
        let expr = network_to_recexpr(&net);
        let limits = SaturationLimits {
            iter_limit: 5,
            node_limit: 2_000,
            time_limit: Duration::from_secs(3),
        };
        let runner = saturate(&expr, &all_rules(), &limits);
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        // Every gym engine's term must keep the circuit's function, and
        // every reported cost is the distinct-node count of the term
        // built. (Greedy-DAG carries no guarantee against the tree
        // extractor — independently minimal sub-DAGs may overlap less.)
        for name in ENGINE_NAMES {
            let (_, engine) = engine_by_name(name).expect("registry name");
            let (dag_cost, dag_best) =
                extract_best(engine.as_ref(), &runner.egraph, runner.roots[0], &UnitCost)
                    .expect("extractable");
            assert_eq!(dag_cost, dag_best.len() as f64, "case {case}, {name}");
            let dag_net = recexpr_to_network(&dag_best, &names);
            assert_eq!(
                check_equivalence(&net, &dag_net),
                EquivResult::Equivalent,
                "case {case}: {name}-extracted candidate not equivalent"
            );
        }
    }
}

#[test]
fn saturation_and_pool_candidates_stay_equivalent() {
    for case in 0..CASES {
        let mut rng = case_rng("saturation_pool", case);
        let ops = random_ops(&mut rng, 1, 20);
        let num_inputs = rng.gen_range(2usize..5);
        let seed = rng.gen_range(0u64..1000);
        let net = build_net(num_inputs, &ops, 1);
        let expr = network_to_recexpr(&net);
        let limits = SaturationLimits {
            iter_limit: 6,
            node_limit: 3_000,
            time_limit: Duration::from_secs(3),
        };
        let runner = saturate(&expr, &all_rules(), &limits);
        let pool = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(6, seed),
        );
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        for cand in &pool {
            let cnet = recexpr_to_network(cand, &names);
            assert_eq!(
                check_equivalence(&net, &cnet),
                EquivResult::Equivalent,
                "case {case}: candidate {cand} not equivalent"
            );
        }
    }
}
