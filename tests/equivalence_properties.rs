//! Property-based integration tests: random Boolean networks pushed
//! through every transformation layer must keep their function.

use e_syn::aig::{Aig, ChoiceAig};
use e_syn::cec::{check_equivalence, EquivResult};
use e_syn::core::lang::{network_to_recexpr, recexpr_to_network};
use e_syn::core::{extract_pool, rules::all_rules, saturate, PoolConfig, SaturationLimits};
use e_syn::egraph::{DagExtractor, DagSize};
use e_syn::eqn::{parse_blif, write_blif, Network, NodeId};
use e_syn::techmap::{buffer, map_aig, map_choices, BufferConfig, Library, MapMode};
use proptest::prelude::*;
use std::time::Duration;

/// A recipe for building a random network over `n` inputs.
#[derive(Clone, Debug)]
enum Op {
    And(usize, usize),
    Or(usize, usize),
    Not(usize),
    Xor(usize, usize),
}

fn build_net(num_inputs: usize, ops: &[Op], num_outputs: usize) -> Network {
    let mut net = Network::new();
    let mut nodes: Vec<NodeId> = (0..num_inputs)
        .map(|i| net.input(format!("x{i}")))
        .collect();
    for op in ops {
        let pick = |k: usize| nodes[k % nodes.len()];
        let id = match *op {
            Op::And(a, b) => {
                let (x, y) = (pick(a), pick(b));
                net.and(x, y)
            }
            Op::Or(a, b) => {
                let (x, y) = (pick(a), pick(b));
                net.or(x, y)
            }
            Op::Not(a) => {
                let x = pick(a);
                net.not(x)
            }
            Op::Xor(a, b) => {
                let (x, y) = (pick(a), pick(b));
                net.xor(x, y)
            }
        };
        nodes.push(id);
    }
    for k in 0..num_outputs {
        let id = nodes[nodes.len() - 1 - (k % nodes.len())];
        net.output(format!("f{k}"), id);
    }
    net
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::And(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Or(a, b)),
        (0usize..64).prop_map(Op::Not),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Xor(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn aig_roundtrip_preserves_function(
        ops in prop::collection::vec(op_strategy(), 1..40),
        num_inputs in 2usize..6,
        num_outputs in 1usize..4,
    ) {
        let net = build_net(num_inputs, &ops, num_outputs);
        let aig = Aig::from_network(&net);
        let back = aig.to_network();
        prop_assert_eq!(check_equivalence(&net, &back), EquivResult::Equivalent);
    }

    #[test]
    fn aig_optimisation_preserves_function(
        ops in prop::collection::vec(op_strategy(), 1..40),
        num_inputs in 2usize..6,
    ) {
        let net = build_net(num_inputs, &ops, 2);
        let aig = Aig::from_network(&net);
        for opt in [aig.rewrite(false), aig.balance(), aig.refactor(false, 6)] {
            let back = opt.to_network();
            prop_assert_eq!(check_equivalence(&net, &back), EquivResult::Equivalent);
        }
    }

    #[test]
    fn mapping_preserves_function(
        ops in prop::collection::vec(op_strategy(), 1..30),
        num_inputs in 2usize..6,
    ) {
        let lib = Library::asap7_like();
        let net = build_net(num_inputs, &ops, 2);
        let aig = Aig::from_network(&net);
        let nl = map_aig(&aig, &lib, MapMode::Delay);
        let words: Vec<u64> = (0..num_inputs as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        prop_assert_eq!(aig.simulate(&words), nl.simulate(&lib, &words));
    }

    #[test]
    fn fraig_and_choice_mapping_preserve_function(
        ops in prop::collection::vec(op_strategy(), 1..24),
        num_inputs in 2usize..6,
        seed in 0u64..1000,
    ) {
        let lib = Library::asap7_like();
        let net = build_net(num_inputs, &ops, 2);
        let aig = Aig::from_network(&net);
        let fraiged = aig.fraig(seed);
        prop_assert_eq!(
            check_equivalence(&net, &fraiged.to_network()),
            EquivResult::Equivalent
        );
        let choice = ChoiceAig::build(&aig, seed);
        let nl = map_choices(&choice, &lib, MapMode::Area);
        let words: Vec<u64> = (0..num_inputs as u64)
            .map(|i| (i + seed).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        prop_assert_eq!(aig.simulate(&words), nl.simulate(&lib, &words));
    }

    #[test]
    fn buffering_preserves_function_and_fanout_limit(
        ops in prop::collection::vec(op_strategy(), 4..40),
        num_inputs in 2usize..6,
        max_fanout in 2usize..6,
    ) {
        let lib = Library::asap7_like();
        let net = build_net(num_inputs, &ops, 3);
        let aig = Aig::from_network(&net);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let cfg = BufferConfig { max_fanout, ..BufferConfig::default() };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        let words: Vec<u64> = (0..num_inputs as u64)
            .map(|i| i.wrapping_mul(0x0123_4567_89AB_CDEF))
            .collect();
        prop_assert_eq!(nl.simulate(&lib, &words), buffered.simulate(&lib, &words));
        // Every gate-output net respects the limit (PIs and POs counted).
        let mut counts = vec![0usize; buffered.num_gates()];
        for g in buffered.gates() {
            for s in &g.inputs {
                if let e_syn::techmap::Signal::Gate(j) = s {
                    counts[*j as usize] += 1;
                }
            }
        }
        for (_, s) in buffered.outputs() {
            if let e_syn::techmap::Signal::Gate(j) = s {
                counts[*j as usize] += 1;
            }
        }
        for (g, &c) in counts.iter().enumerate() {
            prop_assert!(c <= max_fanout, "gate {} fanout {} > {}", g, c, max_fanout);
        }
    }

    #[test]
    fn aiger_and_blif_roundtrips_preserve_function(
        ops in prop::collection::vec(op_strategy(), 1..40),
        num_inputs in 2usize..6,
    ) {
        let net = build_net(num_inputs, &ops, 2);
        // BLIF round-trip at the network level.
        let back = parse_blif(&write_blif(&net, "prop")).expect("writer output parses");
        prop_assert_eq!(check_equivalence(&net, &back), EquivResult::Equivalent);
        // AIGER round-trips (ASCII and binary) at the AIG level.
        let aig = Aig::from_network(&net);
        let ascii = Aig::from_aiger_ascii(&aig.to_aiger_ascii()).expect("aag parses");
        prop_assert_eq!(
            check_equivalence(&net, &ascii.to_network()),
            EquivResult::Equivalent
        );
        let binary = Aig::from_aiger_binary(&aig.to_aiger_binary()).expect("aig parses");
        prop_assert_eq!(
            check_equivalence(&net, &binary.to_network()),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn dag_extraction_stays_equivalent_and_reports_its_own_cost(
        ops in prop::collection::vec(op_strategy(), 1..16),
        num_inputs in 2usize..5,
    ) {
        let net = build_net(num_inputs, &ops, 1);
        let expr = network_to_recexpr(&net);
        let limits = SaturationLimits {
            iter_limit: 5,
            node_limit: 2_000,
            time_limit: Duration::from_secs(3),
        };
        let runner = saturate(&expr, &all_rules(), &limits);
        let dag = DagExtractor::new(&runner.egraph, DagSize);
        let (dag_cost, dag_best) = dag.find_best(runner.roots[0]).expect("extractable");
        // The reported cost is the distinct-node count of the term built
        // (greedy-DAG carries no guarantee against the tree extractor —
        // independently minimal sub-DAGs may overlap less).
        prop_assert_eq!(dag_cost, dag_best.len() as f64);
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let dag_net = recexpr_to_network(&dag_best, &names);
        prop_assert_eq!(
            check_equivalence(&net, &dag_net),
            EquivResult::Equivalent,
            "dag-extracted candidate not equivalent"
        );
    }

    #[test]
    fn saturation_and_pool_candidates_stay_equivalent(
        ops in prop::collection::vec(op_strategy(), 1..20),
        num_inputs in 2usize..5,
        seed in 0u64..1000,
    ) {
        let net = build_net(num_inputs, &ops, 1);
        let expr = network_to_recexpr(&net);
        let limits = SaturationLimits {
            iter_limit: 6,
            node_limit: 3_000,
            time_limit: Duration::from_secs(3),
        };
        let runner = saturate(&expr, &all_rules(), &limits);
        let pool = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(6, seed),
        );
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        for cand in &pool {
            let cnet = recexpr_to_network(cand, &names);
            prop_assert_eq!(
                check_equivalence(&net, &cnet),
                EquivResult::Equivalent,
                "candidate {} not equivalent", cand
            );
        }
    }
}
