//! End-to-end tests for `esyn serve` over real TCP sockets (ISSUE
//! satellite 1): an in-process server on an ephemeral port, concurrent
//! clients driving the submit/result/shutdown flow, and the headline
//! contract — a served `result` object is **byte-identical** to
//! encoding a one-shot [`esyn_optimize`] run of the same circuit and
//! configuration.

use e_syn::core::{cache_key, esyn_optimize, train_cost_models, Objective, TrainConfig};
use e_syn::serve::json::{self, Json};
use e_syn::serve::protocol::JobOverrides;
use e_syn::serve::{serve_tcp, Engine, ResultPayload, ServeConfig};
use e_syn::techmap::Library;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// The per-job budget every test client submits: small enough that the
/// whole suite stays fast, deterministic by construction (iteration and
/// node caps bind long before the wall-clock safety net).
const JOB_CONFIG: &str = r#"{"iter_limit":3,"node_limit":2000,"samples":6,"seed":5}"#;

fn submit_line(id: &str, circuit: &str) -> String {
    format!(
        r#"{{"op":"submit","id":"{id}","format":"name","circuit":"{circuit}","objective":"delay","config":{JOB_CONFIG}}}"#
    )
}

/// The overrides [`JOB_CONFIG`] decodes to, for the one-shot replay.
fn job_overrides() -> JobOverrides {
    JobOverrides {
        iter_limit: Some(3),
        node_limit: Some(2000),
        samples: Some(6),
        seed: Some(5),
        ..Default::default()
    }
}

/// Boots an in-process server on an ephemeral port. Returns the address
/// and the acceptor thread's handle (joined after shutdown).
fn start_server(engine: Arc<Engine>) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("ephemeral addr");
    let handle = std::thread::spawn(move || serve_tcp(engine, listener));
    (addr, handle)
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone read half"));
    (stream, reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply line");
    json::parse(line.trim_end()).expect("reply is valid JSON")
}

/// Canonical bytes of a reply's `result` object (re-encoding the parsed
/// object is byte-faithful; `encode ∘ parse` is a fixed point).
fn result_bytes(reply: &Json) -> String {
    assert_eq!(
        reply.get("reply").and_then(Json::as_str),
        Some("result"),
        "expected result line, got {}",
        reply.encode()
    );
    reply.get("result").expect("result object").encode()
}

#[test]
fn concurrent_tcp_clients_match_one_shot_optimize_byte_for_byte() {
    // Eight real TCP clients, two per registry circuit, against a
    // 2-worker server. Every served payload must equal the one-shot
    // encoding; the duplicate submissions also exercise warm hits.
    let circuits = ["3_3", "qadd", "b12", "max"];
    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    let engine = Engine::new(
        models.clone(),
        lib.clone(),
        ServeConfig {
            workers: 2,
            queue_cap: 32,
            cache_bytes: 1 << 20,
            ..ServeConfig::default()
        },
    );
    let base = engine.base_config().clone();
    let (addr, server) = start_server(Arc::clone(&engine));

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let circuit = circuits[i % circuits.len()];
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let id = format!("client{i}");
                writeln!(stream, "{}", submit_line(&id, circuit)).expect("send submit");
                let reply = read_reply(&mut reader);
                assert_eq!(
                    reply.get("id").and_then(Json::as_str),
                    Some(id.as_str()),
                    "job id must be echoed"
                );
                (circuit, result_bytes(&reply))
            })
        })
        .collect();
    let served: Vec<(&str, String)> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    // Replay each circuit one-shot with the identical effective config.
    for circuit in circuits {
        let net = e_syn::circuits::by_name(circuit).expect("registry circuit");
        let cfg = job_overrides().apply(&base);
        let result = esyn_optimize(&net, &models, &lib, Objective::Delay, &cfg);
        let expected = ResultPayload::from_result(&result, cache_key(&net, Objective::Delay, &cfg))
            .to_json()
            .encode();
        let got: Vec<&String> = served
            .iter()
            .filter(|(c, _)| *c == circuit)
            .map(|(_, bytes)| bytes)
            .collect();
        assert_eq!(got.len(), 2, "{circuit}: both clients must get results");
        for bytes in got {
            assert_eq!(
                bytes, &expected,
                "{circuit}: served payload differs from one-shot optimize"
            );
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.errors, 0);
    assert!(
        stats.cache_misses >= circuits.len() as u64,
        "each distinct circuit computes at least once"
    );

    // Shutdown via a final client; the acceptor thread must then exit.
    let (mut stream, mut reader) = connect(addr);
    writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
    let ack = read_reply(&mut reader);
    assert_eq!(ack.get("reply").and_then(Json::as_str), Some("shutdown"));
    assert_eq!(ack.get("completed").and_then(Json::as_u64), Some(8));
    server.join().expect("acceptor thread").expect("serve_tcp");
}

#[test]
fn submit_then_shutdown_on_one_connection_drains_before_acking() {
    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    let engine = Engine::new(
        models,
        lib,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let (addr, server) = start_server(engine);
    let (mut stream, mut reader) = connect(addr);
    for (i, circuit) in ["3_3", "qadd", "3_3"].iter().enumerate() {
        writeln!(stream, "{}", submit_line(&format!("j{i}"), circuit)).expect("send");
    }
    writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
    // Graceful drain: all three results arrive, then the ack, then EOF.
    let mut ids = Vec::new();
    for _ in 0..3 {
        let reply = read_reply(&mut reader);
        assert_eq!(reply.get("reply").and_then(Json::as_str), Some("result"));
        ids.push(reply.get("id").and_then(Json::as_str).unwrap().to_owned());
    }
    ids.sort();
    assert_eq!(ids, ["j0", "j1", "j2"]);
    let ack = read_reply(&mut reader);
    assert_eq!(ack.get("reply").and_then(Json::as_str), Some("shutdown"));
    assert_eq!(ack.get("completed").and_then(Json::as_u64), Some(3));
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("read EOF");
    assert!(
        rest.is_empty(),
        "no output after the shutdown ack: {rest:?}"
    );
    server.join().expect("acceptor thread").expect("serve_tcp");
}

#[test]
fn protocol_errors_over_tcp_carry_positions_and_keep_the_connection() {
    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    let engine = Engine::new(
        models,
        lib,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let (addr, server) = start_server(engine);
    let (mut stream, mut reader) = connect(addr);

    // Truncated JSON → error with a byte position.
    writeln!(stream, "{{\"op\": ").expect("send");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.get("reply").and_then(Json::as_str), Some("error"));
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(reply.get("position").and_then(Json::as_u64).is_some());

    // Semantic error (unknown op) → no position, id echoed when present.
    writeln!(stream, r#"{{"op":"frobnicate","id":"e1"}}"#).expect("send");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.get("reply").and_then(Json::as_str), Some("error"));
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("e1"));
    assert!(reply.get("position").is_none());

    // Bad circuit text → parse error echoed under the job id.
    writeln!(
        stream,
        r#"{{"op":"submit","id":"e2","format":"eqn","circuit":"INORDER = ;"}}"#
    )
    .expect("send");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.get("reply").and_then(Json::as_str), Some("error"));
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("e2"));

    // The connection survives all three errors.
    writeln!(stream, r#"{{"op":"ping"}}"#).expect("send ping");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.get("reply").and_then(Json::as_str), Some("pong"));

    writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
    let ack = read_reply(&mut reader);
    assert_eq!(ack.get("reply").and_then(Json::as_str), Some("shutdown"));
    server.join().expect("acceptor thread").expect("serve_tcp");
}

#[test]
fn backpressure_rejects_with_busy_when_the_queue_is_full() {
    // queue_cap 1 + a single worker: flooding submissions from one
    // connection must surface at least one explicit `busy` rejection,
    // and every accepted job still completes.
    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    let engine = Engine::new(
        models,
        lib,
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            // Disable both cache tiers so accepted jobs occupy the
            // worker for real (identical in-flight submits may still
            // coalesce — they count as completed like any other job).
            cache_bytes: 0,
            sat_cache_bytes: 0,
            ..ServeConfig::default()
        },
    );
    let (addr, server) = start_server(Arc::clone(&engine));
    let (mut stream, mut reader) = connect(addr);
    let flood = 10;
    for i in 0..flood {
        writeln!(stream, "{}", submit_line(&format!("f{i}"), "3_3")).expect("send");
    }
    let mut results = 0u64;
    let mut busy = 0u64;
    for _ in 0..flood {
        let reply = read_reply(&mut reader);
        match reply.get("reply").and_then(Json::as_str) {
            Some("result") => results += 1,
            Some("busy") => {
                busy += 1;
                let msg = reply.get("error").and_then(Json::as_str).unwrap_or("");
                assert!(
                    msg.contains("queue full"),
                    "busy line names the queue: {msg}"
                );
                // Every rejection carries a bounded retry hint.
                let retry = reply
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .expect("busy reply carries retry_after_ms");
                assert!((25..=60_000).contains(&retry), "retry hint {retry}ms");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(busy >= 1, "a cap-1 queue under a 10-deep flood must reject");
    assert_eq!(results + busy, flood);
    let stats = engine.stats();
    assert_eq!(stats.rejected, busy);
    assert_eq!(stats.completed, results);

    writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
    let ack = read_reply(&mut reader);
    assert_eq!(ack.get("reply").and_then(Json::as_str), Some("shutdown"));
    server.join().expect("acceptor thread").expect("serve_tcp");
}
