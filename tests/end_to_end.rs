//! Cross-crate integration tests: the complete E-Syn pipeline over real
//! benchmark circuits, with equivalence verification at every step.

use e_syn::aig::{scripts, Aig};
use e_syn::cec::{check_equivalence, EquivResult};
use e_syn::core::{
    abc_baseline, esyn_optimize, train_cost_models, EsynConfig, Objective, PoolConfig,
    SaturationLimits, TrainConfig,
};
use e_syn::techmap::{map_and_size, Library, MapMode};
use std::sync::OnceLock;
use std::time::Duration;

fn models() -> &'static e_syn::core::CostModels {
    static MODELS: OnceLock<e_syn::core::CostModels> = OnceLock::new();
    MODELS.get_or_init(|| train_cost_models(&TrainConfig::tiny(), &Library::asap7_like()))
}

fn fast_config() -> EsynConfig {
    EsynConfig {
        limits: SaturationLimits {
            iter_limit: 8,
            node_limit: 8_000,
            time_limit: Duration::from_secs(5),
        },
        pool: PoolConfig::with_samples(20, 0x1E57),
        verify: true,
        target_delay: None,
        use_choices: false,
        parallelism: e_syn::par::Parallelism::Auto,
    }
}

#[test]
fn esyn_flow_on_benchmark_circuits_is_sound() {
    let lib = Library::asap7_like();
    for name in ["alu4", "3_3", "cavlc", "C432"] {
        let net = e_syn::circuits::by_name(name).expect("known circuit");
        let result = esyn_optimize(&net, models(), &lib, Objective::Delay, &fast_config());
        // esyn_optimize panics internally if CEC fails; double-check here.
        assert_eq!(result.verified, Some(true), "{name}");
        assert!(result.qor.delay > 0.0, "{name}");
        assert!(result.pool_size >= 2, "{name}");
    }
}

#[test]
fn baseline_flow_preserves_function_on_benchmarks() {
    let lib = Library::asap7_like();
    for name in ["alu4", "qadd", "3_3"] {
        let net = e_syn::circuits::by_name(name).expect("known circuit");
        let aig = Aig::from_network(&net);
        let opt = scripts::baseline_tech_indep(&aig, 99);
        let opt_net = opt.to_network();
        assert_eq!(
            check_equivalence(&net, &opt_net),
            EquivResult::Equivalent,
            "{name}: baseline tech-indep optimisation must preserve function"
        );
        // mapping also preserves function (netlist vs aig simulation)
        let (nl, _) = map_and_size(&opt, &lib, MapMode::Delay, None);
        let words: Vec<u64> = (0..net.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .collect();
        assert_eq!(opt.simulate(&words), nl.simulate(&lib, &words), "{name}");
    }
}

#[test]
fn esyn_and_baseline_comparable_on_max() {
    // The headline direction on at least one circuit: delay-oriented
    // E-Syn should not lose delay vs the baseline on `max`
    // (the paper's strongest class of wins).
    let lib = Library::asap7_like();
    let net = e_syn::circuits::by_name("max").expect("max");
    let baseline = abc_baseline(&net, &lib, Objective::Delay, None);
    let cfg = EsynConfig {
        limits: SaturationLimits {
            iter_limit: 12,
            node_limit: 20_000,
            time_limit: Duration::from_secs(10),
        },
        pool: PoolConfig::with_samples(60, 0x7AB1E2),
        verify: true,
        target_delay: None,
        use_choices: false,
        parallelism: e_syn::par::Parallelism::Auto,
    };
    let esyn = esyn_optimize(&net, models(), &lib, Objective::Delay, &cfg);
    assert!(
        esyn.qor.delay <= baseline.delay * 1.05,
        "esyn delay {} should be competitive with baseline {}",
        esyn.qor.delay,
        baseline.delay
    );
}

#[test]
fn objectives_order_the_tradeoff_on_benchmarks() {
    let lib = Library::asap7_like();
    for name in ["alu4", "qadd"] {
        let net = e_syn::circuits::by_name(name).expect("known circuit");
        let d = esyn_optimize(&net, models(), &lib, Objective::Delay, &fast_config());
        let a = esyn_optimize(&net, models(), &lib, Objective::Area, &fast_config());
        assert!(
            d.qor.delay <= a.qor.delay + 1e-6,
            "{name}: delay mode slower than area mode"
        );
        assert!(
            a.qor.area <= d.qor.area + 1e-6,
            "{name}: area mode bigger than delay mode"
        );
    }
}

#[test]
fn full_pipeline_deterministic() {
    let lib = Library::asap7_like();
    let net = e_syn::circuits::by_name("3_3").expect("3_3");
    let r1 = esyn_optimize(&net, models(), &lib, Objective::Delay, &fast_config());
    let r2 = esyn_optimize(&net, models(), &lib, Objective::Delay, &fast_config());
    assert_eq!(r1.qor.area, r2.qor.area);
    assert_eq!(r1.qor.delay, r2.qor.delay);
    assert_eq!(r1.pool_size, r2.pool_size);
    assert_eq!(r1.predicted_cost, r2.predicted_cost);
}
