//! The gym contract over the real benchmark registry: every engine's
//! result passes the shared validator on every circuit, and the exact
//! engines never come out worse than the best greedy heuristic (they are
//! incumbent-seeded, so this holds even when their budgets bind).
//!
//! Saturation budgets here are deliberately small — these tests exercise
//! *extraction* on realistically shaped e-graphs, not saturation depth;
//! `esyn gym --full` and the `gym` bench target cover the larger setting.

use e_syn::core::{all_rules, network_to_recexpr, saturate, SaturationLimits};
use e_syn::extract::{gym, UnitCost, ENGINE_NAMES};
use e_syn::par::Parallelism;
use std::time::Duration;

fn tiny_limits() -> SaturationLimits {
    SaturationLimits {
        iter_limit: 4,
        node_limit: 3_000,
        time_limit: Duration::from_secs(5),
    }
}

#[test]
fn every_engine_validates_on_the_whole_registry() {
    for b in e_syn::circuits::all_benchmarks() {
        let expr = network_to_recexpr(&b.network);
        let runner = saturate(&expr, &all_rules(), &tiny_limits());
        let rows = gym::race(
            &runner.egraph,
            &runner.roots,
            &UnitCost,
            &ENGINE_NAMES,
            Parallelism::Serial,
        );
        assert_eq!(rows.len(), ENGINE_NAMES.len());

        let mut cost_of = std::collections::HashMap::new();
        for row in &rows {
            assert!(
                row.check.is_ok(),
                "{}: engine {} failed check: {:?}",
                b.name,
                row.engine,
                row.check
            );
            assert!(row.dag_cost.is_finite(), "{}: {}", b.name, row.engine);
            // DAG cost charges shared classes once; tree cost charges per
            // reference — it can never be smaller.
            assert!(
                row.tree_cost + 1e-9 >= row.dag_cost,
                "{}: {} tree {} < dag {}",
                b.name,
                row.engine,
                row.tree_cost,
                row.dag_cost
            );
            cost_of.insert(row.engine, row.dag_cost);
        }
        // Each exact engine never regresses past its own incumbent,
        // budget exhaustion or not: `bnb` is seeded with greedy-dag,
        // `exact` with the whole greedy portfolio (so it lower-bounds
        // every heuristic in the race).
        assert!(
            cost_of["bnb"] <= cost_of["greedy-dag"] + 1e-9,
            "{}: bnb {} worse than its greedy-dag incumbent {}",
            b.name,
            cost_of["bnb"],
            cost_of["greedy-dag"]
        );
        let best_heuristic = ENGINE_NAMES[..5]
            .iter()
            .map(|&n| cost_of[n])
            .fold(f64::INFINITY, f64::min);
        assert!(
            cost_of["exact"] <= best_heuristic + 1e-9,
            "{}: exact {} worse than best heuristic {}",
            b.name,
            cost_of["exact"],
            best_heuristic
        );
    }
}
