//! Smoke test: every file in `examples/` must build AND run to
//! completion, so the examples can never silently rot.
//!
//! Each test shells out to `cargo run --example` (dev profile — the
//! binaries were already compiled as part of this `cargo test`
//! invocation, so this adds no build time) with the smallest benchmark
//! arguments so the whole suite stays in smoke-test territory.

use std::process::Command;

/// Runs one example to completion and asserts a zero exit status.
fn run_example(name: &str, args: &[&str]) {
    let cargo = env!("CARGO");
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--quiet", "--example", name]);
    if !args.is_empty() {
        cmd.arg("--").args(args);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("spawning {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} {args:?} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn example_quickstart() {
    run_example("quickstart", &[]);
}

#[test]
fn example_format_roundtrip() {
    run_example("format_roundtrip", &[]);
}

#[test]
fn example_equivalence_check() {
    run_example("equivalence_check", &[]);
}

#[test]
fn example_buffered_mapping() {
    run_example("buffered_mapping", &[]);
}

#[test]
fn example_inspect_pool() {
    run_example("inspect_pool", &["3_3"]);
}

#[test]
fn example_pareto_explorer() {
    run_example("pareto_explorer", &["3_3"]);
}

#[test]
fn example_optimize_benchmark() {
    run_example("optimize_benchmark", &["3_3", "area"]);
}

#[test]
fn example_train_cost_model() {
    run_example("train_cost_model", &["20"]);
}
