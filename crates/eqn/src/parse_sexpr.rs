//! S-expression parser — the interchange format between the equation world
//! and the e-graph rewriter (paper §3.3: "transformed into nested
//! S-expressions in Common Lisp").
//!
//! Grammar:
//!
//! ```text
//! sexpr := atom | "(" op sexpr* ")"
//! op    := "*" | "&" | "AND" | "+" | "|" | "OR" | "!" | "~" | "NOT" | "outs"
//! atom  := identifier | "0" | "1" | "true" | "false"
//! ```
//!
//! `*`/`+`/`!` follow the paper's Figure 3 notation (AND/OR/NOT); the
//! synonyms make hand-written tests pleasant. The variadic `outs` head wraps
//! a multi-output network into a single term.

use crate::error::ParseError;
use crate::network::Network;
use crate::node::NodeId;

/// A parsed S-expression tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SExpr {
    /// Constant `0` / `1`.
    Const(bool),
    /// A variable reference.
    Var(String),
    /// `(! x)`
    Not(Box<SExpr>),
    /// `(* x y ...)` — n-ary in the text, folded left-associatively.
    And(Vec<SExpr>),
    /// `(+ x y ...)` — n-ary in the text, folded left-associatively.
    Or(Vec<SExpr>),
    /// `(outs f g ...)` — multi-output wrapper.
    Outs(Vec<SExpr>),
}

impl SExpr {
    /// Number of nodes in this tree (every `Const`, `Var` and operator
    /// application counts as one).
    pub fn size(&self) -> usize {
        match self {
            SExpr::Const(_) | SExpr::Var(_) => 1,
            SExpr::Not(x) => 1 + x.size(),
            SExpr::And(xs) | SExpr::Or(xs) | SExpr::Outs(xs) => {
                1 + xs.iter().map(SExpr::size).sum::<usize>()
            }
        }
    }

    /// Tree depth (leaves have depth 1).
    pub fn depth(&self) -> usize {
        match self {
            SExpr::Const(_) | SExpr::Var(_) => 1,
            SExpr::Not(x) => 1 + x.depth(),
            SExpr::And(xs) | SExpr::Or(xs) | SExpr::Outs(xs) => {
                1 + xs.iter().map(SExpr::depth).max().unwrap_or(0)
            }
        }
    }
}

impl std::fmt::Display for SExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SExpr::Const(false) => write!(f, "0"),
            SExpr::Const(true) => write!(f, "1"),
            SExpr::Var(v) => write!(f, "{v}"),
            SExpr::Not(x) => write!(f, "(! {x})"),
            SExpr::And(xs) => write_list(f, "*", xs),
            SExpr::Or(xs) => write_list(f, "+", xs),
            SExpr::Outs(xs) => write_list(f, "outs", xs),
        }
    }
}

fn write_list(f: &mut std::fmt::Formatter<'_>, head: &str, xs: &[SExpr]) -> std::fmt::Result {
    write!(f, "({head}")?;
    for x in xs {
        write!(f, " {x}")?;
    }
    write!(f, ")")
}

/// Parses one S-expression from `text`.
///
/// # Errors
///
/// Returns [`ParseError`] on unbalanced parentheses, unknown operator heads,
/// arity violations (`!` takes exactly one argument; `*`, `+` take at least
/// two) or trailing garbage.
///
/// # Example
///
/// ```
/// use esyn_eqn::{parse_sexpr, SExpr};
/// let e = parse_sexpr("(+ (* x y) (* x z))")?;
/// assert_eq!(e.size(), 7);
/// assert_eq!(e.depth(), 3);
/// # Ok::<(), esyn_eqn::ParseError>(())
/// ```
pub fn parse_sexpr(text: &str) -> Result<SExpr, ParseError> {
    let mut toks = tokenize(text);
    let expr = parse_expr(&mut toks)?;
    if let Some((t, line, col)) = toks.first() {
        return Err(ParseError::new(
            *line,
            *col,
            format!("trailing input after S-expression: `{t}`"),
        ));
    }
    Ok(expr)
}

/// Parses an S-expression and converts it into a [`Network`].
///
/// A top-level `(outs ...)` wrapper produces one output per argument, named
/// `po0`, `po1`, ...; any other expression produces a single output named
/// `po0`.
///
/// # Errors
///
/// Propagates [`parse_sexpr`] errors.
pub fn parse_sexpr_network(text: &str) -> Result<Network, ParseError> {
    let expr = parse_sexpr(text)?;
    let mut net = Network::new();
    let roots: Vec<SExpr> = match expr {
        SExpr::Outs(xs) => xs,
        other => vec![other],
    };
    for (i, root) in roots.iter().enumerate() {
        let id = build(&mut net, root);
        net.output(format!("po{i}"), id);
    }
    Ok(net)
}

fn build(net: &mut Network, e: &SExpr) -> NodeId {
    match e {
        SExpr::Const(v) => net.constant(*v),
        SExpr::Var(v) => net.input(v.clone()),
        SExpr::Not(x) => {
            let inner = build(net, x);
            net.not(inner)
        }
        SExpr::And(xs) => {
            let ids: Vec<NodeId> = xs.iter().map(|x| build(net, x)).collect();
            ids.into_iter()
                .reduce(|a, b| net.and(a, b))
                .expect("And arity checked by parser")
        }
        SExpr::Or(xs) => {
            let ids: Vec<NodeId> = xs.iter().map(|x| build(net, x)).collect();
            ids.into_iter()
                .reduce(|a, b| net.or(a, b))
                .expect("Or arity checked by parser")
        }
        SExpr::Outs(_) => unreachable!("nested outs rejected by parser"),
    }
}

type Token = (String, usize, usize);

fn tokenize(text: &str) -> Vec<Token> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    let (mut line, mut col) = (1usize, 1usize);
    let (mut tline, mut tcol) = (1usize, 1usize);
    for c in text.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    toks.push((std::mem::take(&mut cur), tline, tcol));
                }
                toks.push((c.to_string(), line, col));
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push((std::mem::take(&mut cur), tline, tcol));
                }
            }
            _ => {
                if cur.is_empty() {
                    tline = line;
                    tcol = col;
                }
                cur.push(c);
            }
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    if !cur.is_empty() {
        toks.push((cur, tline, tcol));
    }
    toks
}

fn parse_expr(toks: &mut Vec<Token>) -> Result<SExpr, ParseError> {
    parse_expr_inner(toks, 0)
}

fn parse_expr_inner(toks: &mut Vec<Token>, depth: usize) -> Result<SExpr, ParseError> {
    if toks.is_empty() {
        return Err(ParseError::nopos("unexpected end of S-expression input"));
    }
    let (t, line, col) = toks.remove(0);
    match t.as_str() {
        "(" => {
            let (head, hline, hcol) = toks
                .first()
                .cloned()
                .ok_or_else(|| ParseError::nopos("missing operator after `(`"))?;
            toks.remove(0);
            let mut args = Vec::new();
            loop {
                match toks.first() {
                    Some((t, ..)) if t == ")" => {
                        toks.remove(0);
                        break;
                    }
                    Some(_) => args.push(parse_expr_inner(toks, depth + 1)?),
                    None => {
                        return Err(ParseError::nopos("unbalanced `(` in S-expression"));
                    }
                }
            }
            match head.as_str() {
                "*" | "&" | "AND" | "and" => {
                    if args.len() < 2 {
                        return Err(ParseError::new(hline, hcol, "`*` needs >= 2 arguments"));
                    }
                    Ok(SExpr::And(args))
                }
                "+" | "|" | "OR" | "or" => {
                    if args.len() < 2 {
                        return Err(ParseError::new(hline, hcol, "`+` needs >= 2 arguments"));
                    }
                    Ok(SExpr::Or(args))
                }
                "!" | "~" | "NOT" | "not" => {
                    if args.len() != 1 {
                        return Err(ParseError::new(hline, hcol, "`!` needs exactly 1 argument"));
                    }
                    Ok(SExpr::Not(Box::new(args.into_iter().next().unwrap())))
                }
                "outs" | "OUTS" => {
                    if depth != 0 {
                        return Err(ParseError::new(
                            hline,
                            hcol,
                            "`outs` is only allowed at the top level",
                        ));
                    }
                    if args.is_empty() {
                        return Err(ParseError::new(hline, hcol, "`outs` needs >= 1 argument"));
                    }
                    Ok(SExpr::Outs(args))
                }
                other => Err(ParseError::new(
                    hline,
                    hcol,
                    format!("unknown operator `{other}`"),
                )),
            }
        }
        ")" => Err(ParseError::new(line, col, "unexpected `)`")),
        "0" | "false" => Ok(SExpr::Const(false)),
        "1" | "true" => Ok(SExpr::Const(true)),
        v => Ok(SExpr::Var(v.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure3_example() {
        // the paper's Figure 3 function: xy + xz
        let e = parse_sexpr("(+ (* x y) (* x z))").unwrap();
        assert_eq!(e.to_string(), "(+ (* x y) (* x z))");
        assert_eq!(e.size(), 7);
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn operator_synonyms() {
        let a = parse_sexpr("(& a (| b (~ c)))").unwrap();
        let b = parse_sexpr("(* a (+ b (! c)))").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nary_fold_matches_binary_nest() {
        let nary = parse_sexpr_network("(* a b c)").unwrap();
        let nested = parse_sexpr_network("(* (* a b) c)").unwrap();
        assert_eq!(nary.truth_tables(), nested.truth_tables());
    }

    #[test]
    fn constants_and_bools() {
        assert_eq!(parse_sexpr("0").unwrap(), SExpr::Const(false));
        assert_eq!(parse_sexpr("true").unwrap(), SExpr::Const(true));
    }

    #[test]
    fn outs_builds_multi_output_network() {
        let net = parse_sexpr_network("(outs (* a b) (+ a b) (! a))").unwrap();
        assert_eq!(net.num_outputs(), 3);
        assert_eq!(net.outputs()[0].0, "po0");
        assert_eq!(net.outputs()[2].0, "po2");
    }

    #[test]
    fn error_cases() {
        assert!(parse_sexpr("(* a)").is_err());
        assert!(parse_sexpr("(! a b)").is_err());
        assert!(parse_sexpr("(foo a b)").is_err());
        assert!(parse_sexpr("(* a b").is_err());
        assert!(parse_sexpr(")").is_err());
        assert!(parse_sexpr("(* a b) extra").is_err());
        assert!(parse_sexpr("(* (outs a b) c)").is_err(), "nested outs");
        assert!(parse_sexpr("").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let src = "(outs (+ (* x y) (! (+ x 0))) (* 1 z))";
        let e = parse_sexpr(src).unwrap();
        let printed = e.to_string();
        let e2 = parse_sexpr(&printed).unwrap();
        assert_eq!(e, e2);
    }
}
