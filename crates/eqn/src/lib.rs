//! Boolean expression IR for the E-Syn logic-synthesis flow.
//!
//! This crate is the lingua franca of the workspace: every other crate
//! (e-graph rewriting, AIG optimisation, technology mapping, equivalence
//! checking, benchmark generators) consumes or produces a [`Network`].
//!
//! A [`Network`] is a hash-consed DAG of Boolean nodes over the operator set
//! {AND, OR, NOT} plus constants and named primary inputs, with an ordered
//! list of named primary outputs. The operator set deliberately matches the
//! paper's choice ("we decide to loosen the requirement on the operators and
//! allow free use of AND, OR and NOT", §3.1).
//!
//! Supported text formats:
//!
//! * **ABC equation format** (`INORDER = ...; OUTORDER = ...; f = a*b + !c;`)
//!   via [`parse_eqn`] / [`Network::to_eqn`]. This is what ABC's
//!   `write_eqn` emits and what the paper uses to exchange circuits between
//!   ABC and the e-graph rewriter (Figure 2).
//! * **S-expressions** (`(+ (* a b) (! c))`) via [`parse_sexpr`] /
//!   [`Network::to_sexpr`], the input format of the e-graph layer.
//! * **Structural Verilog** (write-only) via [`Network::to_verilog`] for
//!   netlist inspection.
//!
//! Bit-parallel simulation ([`Network::simulate`], [`Network::truth_tables`])
//! evaluates 64 input patterns per word and underpins both the equivalence
//! checker's random-simulation filter and the test suites.
//!
//! # Example
//!
//! ```
//! use esyn_eqn::Network;
//!
//! let mut net = Network::new();
//! let a = net.input("a");
//! let b = net.input("b");
//! let g = net.and(a, b);
//! net.output("g", g);
//!
//! let text = net.to_eqn();
//! let parsed = esyn_eqn::parse_eqn(&text).unwrap();
//! assert_eq!(parsed.num_outputs(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blif;
mod error;
mod network;
mod node;
mod parse_eqn;
mod parse_sexpr;
mod print;
mod sim;

pub use blif::{parse_blif, write_blif};
pub use error::ParseError;
pub use network::{Network, NetworkStats};
pub use node::{Node, NodeId};
pub use parse_eqn::parse_eqn;
pub use parse_sexpr::{parse_sexpr, parse_sexpr_network, SExpr};
pub use sim::{TruthTable, MAX_TT_INPUTS};
