//! Parse-error type shared by the eqn and S-expression parsers.

use std::error::Error;
use std::fmt;

/// Error produced when parsing equation-format or S-expression text.
///
/// Carries a 1-based line/column of the offending token where available
/// (`line == 0` means "no position information").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error, or 0 if unknown.
    pub line: usize,
    /// 1-based column of the error, or 0 if unknown.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    pub(crate) fn nopos(message: impl Into<String>) -> Self {
        ParseError::new(0, 0, message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(
                f,
                "parse error at {}:{}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_position() {
        let e = ParseError::new(3, 14, "unexpected token `;`");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token `;`");
        let e = ParseError::nopos("empty input");
        assert_eq!(e.to_string(), "parse error: empty input");
    }
}
