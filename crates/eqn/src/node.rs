//! Node and node-id types for the hash-consed Boolean DAG.

use std::fmt;

/// Index of a node inside a [`crate::Network`] arena.
///
/// Ids are dense, start at zero and are only meaningful relative to the
/// network that issued them. The `u32` representation keeps node footprints
/// small; practical circuits in this workspace stay far below `u32::MAX`
/// nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw arena index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single Boolean node.
///
/// `Input` nodes carry an index into the network's ordered primary-input
/// list rather than a name, so nodes stay `Copy` and hash-consing stays
/// cheap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// Boolean constant `false` / `true`.
    Const(bool),
    /// Primary input, by position in [`crate::Network::input_names`].
    Input(u32),
    /// Logical negation.
    Not(NodeId),
    /// Logical conjunction.
    And(NodeId, NodeId),
    /// Logical disjunction.
    Or(NodeId, NodeId),
}

impl Node {
    /// The fanin node ids of this node (empty for leaves).
    pub fn fanins(&self) -> FaninIter {
        let (buf, len) = match *self {
            Node::Const(_) | Node::Input(_) => ([NodeId(0); 2], 0),
            Node::Not(a) => ([a, NodeId(0)], 1),
            Node::And(a, b) | Node::Or(a, b) => ([a, b], 2),
        };
        FaninIter { buf, len, pos: 0 }
    }

    /// True for `Const` and `Input` nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Const(_) | Node::Input(_))
    }

    /// True for `And` and `Or` nodes (the two-input logic operators).
    pub fn is_binary(&self) -> bool {
        matches!(self, Node::And(..) | Node::Or(..))
    }
}

/// Iterator over the fanins of a [`Node`]; at most two elements.
#[derive(Clone, Debug)]
pub struct FaninIter {
    buf: [NodeId; 2],
    len: u8,
    pos: u8,
}

impl Iterator for FaninIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.pos < self.len {
            let id = self.buf[self.pos as usize];
            self.pos += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.pos) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FaninIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn fanin_iter_lengths() {
        assert_eq!(Node::Const(true).fanins().len(), 0);
        assert_eq!(Node::Input(0).fanins().len(), 0);
        assert_eq!(Node::Not(NodeId(3)).fanins().len(), 1);
        assert_eq!(Node::And(NodeId(1), NodeId(2)).fanins().len(), 2);
        let v: Vec<_> = Node::Or(NodeId(5), NodeId(9)).fanins().collect();
        assert_eq!(v, vec![NodeId(5), NodeId(9)]);
    }

    #[test]
    fn leaf_classification() {
        assert!(Node::Const(false).is_leaf());
        assert!(Node::Input(7).is_leaf());
        assert!(!Node::Not(NodeId(0)).is_leaf());
        assert!(Node::And(NodeId(0), NodeId(1)).is_binary());
        assert!(Node::Or(NodeId(0), NodeId(1)).is_binary());
        assert!(!Node::Not(NodeId(0)).is_binary());
    }
}
