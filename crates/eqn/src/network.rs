//! The hash-consed multi-output Boolean network.

use crate::node::{Node, NodeId};
use std::collections::HashMap;

/// A combinational Boolean network over {AND, OR, NOT}.
///
/// Nodes live in an append-only arena and are hash-consed: building the same
/// structure twice yields the same [`NodeId`]. The constructors apply *local*
/// zero-cost simplifications (constant folding, double-negation removal,
/// idempotence, structural complement detection) so that generated circuits
/// do not accumulate trivially redundant nodes; they never perform global
/// restructuring — that is the job of the optimisation crates.
///
/// # Example
///
/// ```
/// use esyn_eqn::Network;
///
/// let mut net = Network::new();
/// let a = net.input("a");
/// let b = net.input("b");
/// let s = net.xor(a, b);
/// let c = net.and(a, b);
/// net.output("sum", s);
/// net.output("carry", c);
/// assert_eq!(net.num_inputs(), 2);
/// assert_eq!(net.num_outputs(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    memo: HashMap<Node, NodeId>,
    input_names: Vec<String>,
    input_lookup: HashMap<String, NodeId>,
    outputs: Vec<(String, NodeId)>,
}

/// Summary statistics of a network, as reported by [`Network::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Reachable AND nodes.
    pub ands: usize,
    /// Reachable OR nodes.
    pub ors: usize,
    /// Reachable NOT nodes.
    pub nots: usize,
    /// Longest input-to-output path counting every operator node as 1.
    pub depth: usize,
}

impl NetworkStats {
    /// Total reachable operator nodes (AND + OR + NOT).
    pub fn gates(&self) -> usize {
        self.ands + self.ors + self.nots
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the arena (including unreachable ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena holds no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this network.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// Ordered primary-input names (the `INORDER` line of the eqn format).
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Named primary outputs in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Name of input `idx` (the payload of [`Node::Input`]).
    pub fn input_name(&self, idx: u32) -> &str {
        &self.input_names[idx as usize]
    }

    fn intern(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.memo.get(&node) {
            return id;
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        self.memo.insert(node, id);
        id
    }

    /// Returns the node for constant `value`.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.intern(Node::Const(value))
    }

    /// Returns the primary input named `name`, creating it on first use.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.input_lookup.get(&name) {
            return id;
        }
        let idx = u32::try_from(self.input_names.len()).expect("too many inputs");
        self.input_names.push(name.clone());
        let id = self.intern(Node::Input(idx));
        self.input_lookup.insert(name, id);
        id
    }

    /// Declares `id` as a primary output named `name`.
    ///
    /// Output names need not be unique, matching ABC's permissiveness, but
    /// generators in this workspace always use distinct names.
    pub fn output(&mut self, name: impl Into<String>, id: NodeId) {
        self.outputs.push((name.into(), id));
    }

    /// True if `a` is the structural complement of `b` (one is `Not` of the
    /// other). This is a local check, not a semantic one.
    fn complements(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[a.index()] == Node::Not(b) || self.nodes[b.index()] == Node::Not(a)
    }

    /// Logical NOT with double-negation and constant folding.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        match self.nodes[a.index()] {
            Node::Const(v) => self.constant(!v),
            Node::Not(inner) => inner,
            _ => self.intern(Node::Not(a)),
        }
    }

    /// Logical AND with local simplification (`a*1 = a`, `a*0 = 0`,
    /// `a*a = a`, `a*!a = 0`). Operands are ordered canonically so the
    /// hash-cons map treats `a*b` and `b*a` as the same node.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.nodes[a.index()], self.nodes[b.index()]) {
            (Node::Const(false), _) | (_, Node::Const(false)) => self.constant(false),
            (Node::Const(true), _) => b,
            (_, Node::Const(true)) => a,
            _ if a == b => a,
            _ if self.complements(a, b) => self.constant(false),
            _ => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::And(lo, hi))
            }
        }
    }

    /// Logical OR with local simplification (`a+0 = a`, `a+1 = 1`,
    /// `a+a = a`, `a+!a = 1`), operands canonically ordered.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.nodes[a.index()], self.nodes[b.index()]) {
            (Node::Const(true), _) | (_, Node::Const(true)) => self.constant(true),
            (Node::Const(false), _) => b,
            (_, Node::Const(false)) => a,
            _ if a == b => a,
            _ if self.complements(a, b) => self.constant(true),
            _ => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::Or(lo, hi))
            }
        }
    }

    /// `!(a & b)`.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.and(a, b);
        self.not(x)
    }

    /// `!(a | b)`.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.or(a, b);
        self.not(x)
    }

    /// Exclusive OR, built as `(a & !b) | (!a & b)`.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let nb = self.not(b);
        let na = self.not(a);
        let l = self.and(a, nb);
        let r = self.and(na, b);
        self.or(l, r)
    }

    /// Exclusive NOR.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 2:1 multiplexer `sel ? t : e`, built as `(sel & t) | (!sel & e)`.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, e: NodeId) -> NodeId {
        let ns = self.not(sel);
        let l = self.and(sel, t);
        let r = self.and(ns, e);
        self.or(l, r)
    }

    /// Majority of three, `ab + ac + bc`.
    pub fn maj(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Conjunction of all operands; the constant `true` for an empty slice.
    /// Builds a balanced tree to keep depth logarithmic.
    pub fn and_many(&mut self, ids: &[NodeId]) -> NodeId {
        self.reduce_balanced(ids, true)
    }

    /// Disjunction of all operands; the constant `false` for an empty slice.
    /// Builds a balanced tree to keep depth logarithmic.
    pub fn or_many(&mut self, ids: &[NodeId]) -> NodeId {
        self.reduce_balanced(ids, false)
    }

    fn reduce_balanced(&mut self, ids: &[NodeId], is_and: bool) -> NodeId {
        match ids.len() {
            0 => self.constant(is_and),
            1 => ids[0],
            _ => {
                let mut level: Vec<NodeId> = ids.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        let combined = if pair.len() == 2 {
                            if is_and {
                                self.and(pair[0], pair[1])
                            } else {
                                self.or(pair[0], pair[1])
                            }
                        } else {
                            pair[0]
                        };
                        next.push(combined);
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Nodes reachable from the outputs, in topological (fanin-first) order.
    ///
    /// Because the arena is append-only and constructors only reference
    /// already-existing nodes, ascending id order *is* a topological order;
    /// this method additionally filters to the reachable subset.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|&(_, id)| id).collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            stack.extend(self.nodes[id.index()].fanins());
        }
        (0..self.nodes.len())
            .filter(|&i| reachable[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// Per-node depth (leaves at 0, each operator adds 1) for all reachable
    /// nodes; unreachable entries are 0.
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        for id in self.topo_order() {
            let node = self.nodes[id.index()];
            if !node.is_leaf() {
                depth[id.index()] = 1 + node.fanins().map(|f| depth[f.index()]).max().unwrap_or(0);
            }
        }
        depth
    }

    /// Computes reachable-node statistics.
    pub fn stats(&self) -> NetworkStats {
        let order = self.topo_order();
        let depths = self.depths();
        let mut stats = NetworkStats {
            inputs: self.input_names.len(),
            outputs: self.outputs.len(),
            ..Default::default()
        };
        for &id in &order {
            match self.nodes[id.index()] {
                Node::And(..) => stats.ands += 1,
                Node::Or(..) => stats.ors += 1,
                Node::Not(_) => stats.nots += 1,
                _ => {}
            }
        }
        stats.depth = self
            .outputs
            .iter()
            .map(|&(_, id)| depths[id.index()])
            .max()
            .unwrap_or(0);
        stats
    }

    /// Copies the cone of `roots` from `src` into `self`, returning the
    /// translated ids in the same order. Input nodes are translated by name.
    pub fn import(&mut self, src: &Network, roots: &[NodeId]) -> Vec<NodeId> {
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        // Compute reachable set restricted to the requested roots, then walk
        // in ascending id order (a valid topological order of `src`).
        let mut reachable = vec![false; src.nodes.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            stack.extend(src.nodes[id.index()].fanins());
        }
        for i in 0..src.nodes.len() {
            if !reachable[i] {
                continue;
            }
            let id = NodeId::from_index(i);
            let new_id = match src.nodes[i] {
                Node::Const(v) => self.constant(v),
                Node::Input(idx) => {
                    let name = src.input_name(idx).to_owned();
                    self.input(name)
                }
                Node::Not(a) => {
                    let a = map[&a];
                    self.not(a)
                }
                Node::And(a, b) => {
                    let (a, b) = (map[&a], map[&b]);
                    self.and(a, b)
                }
                Node::Or(a, b) => {
                    let (a, b) = (map[&a], map[&b]);
                    self.or(a, b)
                }
            };
            map.insert(id, new_id);
        }
        roots.iter().map(|r| map[r]).collect()
    }

    /// Returns a copy of this network containing only nodes reachable from
    /// the outputs, with the same input order for inputs that remain in use
    /// and the same output names.
    pub fn cleaned(&self) -> Network {
        let mut out = Network::new();
        // Preserve the primary-input order: declare all inputs up front so
        // simulation patterns line up between original and cleaned networks.
        for name in &self.input_names {
            out.input(name.clone());
        }
        let roots: Vec<NodeId> = self.outputs.iter().map(|&(_, id)| id).collect();
        let new_roots = out.import(self, &roots);
        for ((name, _), new_id) in self.outputs.iter().zip(new_roots) {
            out.output(name.clone(), new_id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let x = net.and(a, b);
        let y = net.and(b, a); // commuted -> same node
        assert_eq!(x, y);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn local_simplifications() {
        let mut net = Network::new();
        let a = net.input("a");
        let t = net.constant(true);
        let f = net.constant(false);

        assert_eq!(net.and(a, t), a);
        assert_eq!(net.and(a, f), f);
        assert_eq!(net.or(a, f), a);
        assert_eq!(net.or(a, t), t);
        assert_eq!(net.and(a, a), a);
        assert_eq!(net.or(a, a), a);

        let na = net.not(a);
        assert_eq!(net.and(a, na), f);
        assert_eq!(net.or(a, na), t);
        assert_eq!(net.not(na), a);

        let nt = net.not(t);
        assert_eq!(nt, f);
    }

    #[test]
    fn xor_mux_maj_shapes() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let x = net.xor(a, b);
        net.output("x", x);
        let m = net.mux(a, b, c);
        net.output("m", m);
        let j = net.maj(a, b, c);
        net.output("j", j);
        let stats = net.stats();
        assert!(stats.gates() > 0);
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.outputs, 3);
    }

    #[test]
    fn and_many_balanced_depth() {
        let mut net = Network::new();
        let leaves: Vec<_> = (0..16).map(|i| net.input(format!("i{i}"))).collect();
        let root = net.and_many(&leaves);
        net.output("f", root);
        // 16 leaves -> balanced tree of depth exactly 4.
        assert_eq!(net.stats().depth, 4);
    }

    #[test]
    fn and_many_empty_and_singleton() {
        let mut net = Network::new();
        let t = net.constant(true);
        assert_eq!(net.and_many(&[]), t);
        let f = net.constant(false);
        assert_eq!(net.or_many(&[]), f);
        let a = net.input("a");
        assert_eq!(net.and_many(&[a]), a);
        assert_eq!(net.or_many(&[a]), a);
    }

    #[test]
    fn topo_order_parents_after_children() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let x = net.and(a, b);
        let y = net.not(x);
        net.output("y", y);
        let order = net.topo_order();
        let pos = |id: NodeId| order.iter().position(|&o| o == id).expect("node in order");
        assert!(pos(a) < pos(x));
        assert!(pos(b) < pos(x));
        assert!(pos(x) < pos(y));
    }

    #[test]
    fn cleaned_drops_unreachable() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let keep = net.and(a, b);
        let _dead = net.or(a, b); // never used as an output
        net.output("f", keep);
        let cleaned = net.cleaned();
        assert_eq!(cleaned.stats().gates(), 1);
        // Input order preserved even if an input is dangling.
        assert_eq!(cleaned.input_names(), net.input_names());
    }

    #[test]
    fn import_translates_by_input_name() {
        let mut src = Network::new();
        let a = src.input("a");
        let b = src.input("b");
        let f = src.or(a, b);
        src.output("f", f);

        let mut dst = Network::new();
        let b2 = dst.input("b"); // note: reversed declaration order
        let _ = b2;
        let roots = dst.import(&src, &[f]);
        dst.output("f", roots[0]);
        // "a" was created on demand in dst.
        assert_eq!(dst.num_inputs(), 2);
        assert_eq!(dst.input_names()[0], "b");
        assert_eq!(dst.input_names()[1], "a");
    }

    #[test]
    fn stats_counts_each_kind() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let x = net.and(a, b);
        let y = net.or(a, b);
        let z = net.not(x);
        let w = net.and(z, y);
        net.output("w", w);
        let s = net.stats();
        assert_eq!(s.ands, 2);
        assert_eq!(s.ors, 1);
        assert_eq!(s.nots, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.gates(), 4);
    }
}
