//! Bit-parallel simulation and exhaustive truth tables.

use crate::network::Network;
use crate::node::Node;

/// Maximum input count for exhaustive truth-table computation.
///
/// `2^16` patterns = 1024 words per signal; enough for every unit test and
/// equivalence-check fast path in this workspace while keeping memory flat.
pub const MAX_TT_INPUTS: usize = 16;

/// An exhaustive truth table over `num_vars` inputs, bit-packed into `u64`
/// words. Bit `i` of the table is the function value under the input
/// assignment whose binary encoding is `i` (input 0 is the least-significant
/// position, i.e. input `k` toggles with period `2^k`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Builds a table from raw words.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match `num_vars` (one word for
    /// `num_vars <= 6`, `2^(num_vars-6)` words otherwise) or if `num_vars`
    /// exceeds [`MAX_TT_INPUTS`].
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert!(num_vars <= MAX_TT_INPUTS, "too many inputs for truth table");
        assert_eq!(words.len(), words_for(num_vars), "word count mismatch");
        let mut tt = TruthTable { num_vars, words };
        tt.mask_tail();
        tt
    }

    /// The all-zero (constant false) table.
    pub fn zeros(num_vars: usize) -> Self {
        TruthTable::from_words(num_vars, vec![0; words_for(num_vars)])
    }

    /// The table of input variable `var` (`0`-based).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars);
        let nwords = words_for(num_vars);
        let mut words = vec![0u64; nwords];
        if var < 6 {
            let pattern = VAR_PATTERNS[var];
            for w in &mut words {
                *w = pattern;
            }
        } else {
            let period = 1usize << (var - 6); // in words
            for (i, w) in words.iter_mut().enumerate() {
                if (i / period) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        TruthTable::from_words(num_vars, words)
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The packed function bits.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of input assignments for which the function is true.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Function value under the assignment encoded by `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < 1usize << self.num_vars);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Bitwise complement.
    pub fn not(&self) -> Self {
        let words = self.words.iter().map(|w| !w).collect();
        TruthTable::from_words(self.num_vars, words)
    }

    /// Bitwise AND of two tables over the same variable set.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.num_vars, other.num_vars);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        TruthTable::from_words(self.num_vars, words)
    }

    /// Bitwise OR of two tables over the same variable set.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.num_vars, other.num_vars);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        TruthTable::from_words(self.num_vars, words)
    }

    /// True when the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when the function is constant true.
    pub fn is_ones(&self) -> bool {
        self.not().is_zero()
    }

    /// The cofactor with variable `var` fixed to `value`; the result is
    /// still expressed over all `num_vars` variables (it simply no longer
    /// depends on `var`).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.num_vars);
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            let keep = if value {
                VAR_PATTERNS[var]
            } else {
                !VAR_PATTERNS[var]
            };
            for w in &mut out.words {
                let kept = *w & keep;
                *w = if value {
                    kept | (kept >> shift)
                } else {
                    kept | (kept << shift)
                };
            }
        } else {
            let period = 1usize << (var - 6); // words per half-block
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                // block [i, i+period) has var=0, [i+period, i+2*period) var=1
                for j in 0..period {
                    if value {
                        out.words[i + j] = self.words[i + period + j];
                    } else {
                        out.words[i + period + j] = self.words[i + j];
                    }
                }
                i += 2 * period;
            }
        }
        out.mask_tail();
        out
    }

    /// True when the function depends on variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    fn mask_tail(&mut self) {
        if self.num_vars < 6 {
            let bits = 1usize << self.num_vars;
            self.words[0] &= (1u64 << bits) - 1;
        }
    }
}

impl std::fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TruthTable({} vars, ", self.num_vars)?;
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, ")")
    }
}

/// Standard bit patterns for the first six variables in a 64-bit word.
const VAR_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

fn words_for(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

impl Network {
    /// Simulates one 64-pattern word: `input_words[i]` holds 64 stimulus
    /// bits for input `i`; the result holds 64 response bits per output.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != self.num_inputs()`.
    pub fn simulate(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            self.num_inputs(),
            "one stimulus word per input required"
        );
        let mut values = vec![0u64; self.len()];
        for id in self.topo_order() {
            let v = match self.node(id) {
                Node::Const(false) => 0,
                Node::Const(true) => u64::MAX,
                Node::Input(idx) => input_words[idx as usize],
                Node::Not(a) => !values[a.index()],
                Node::And(a, b) => values[a.index()] & values[b.index()],
                Node::Or(a, b) => values[a.index()] | values[b.index()],
            };
            values[id.index()] = v;
        }
        self.outputs()
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect()
    }

    /// Exhaustive truth table of every output.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than [`MAX_TT_INPUTS`] inputs — use
    /// random simulation or the SAT-based equivalence checker beyond that.
    pub fn truth_tables(&self) -> Vec<TruthTable> {
        let n = self.num_inputs();
        assert!(
            n <= MAX_TT_INPUTS,
            "{n} inputs exceed truth-table limit {MAX_TT_INPUTS}"
        );
        let nwords = words_for(n);
        let mut outs: Vec<TruthTable> = (0..self.num_outputs())
            .map(|_| TruthTable::zeros(n))
            .collect();
        for w in 0..nwords {
            let input_words: Vec<u64> = (0..n)
                .map(|v| {
                    if v < 6 {
                        VAR_PATTERNS[v]
                    } else {
                        let period = 1usize << (v - 6);
                        if (w / period) % 2 == 1 {
                            u64::MAX
                        } else {
                            0
                        }
                    }
                })
                .collect();
            let res = self.simulate(&input_words);
            for (o, word) in res.into_iter().enumerate() {
                outs[o].words[w] = word;
            }
        }
        for tt in &mut outs {
            tt.mask_tail();
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_eqn;

    #[test]
    fn var_patterns_are_correct() {
        for v in 0..6 {
            let tt = TruthTable::var(6, v);
            for idx in 0..64 {
                assert_eq!(tt.bit(idx), (idx >> v) & 1 == 1, "var {v} index {idx}");
            }
        }
    }

    #[test]
    fn var_patterns_above_word_boundary() {
        let tt = TruthTable::var(8, 7);
        for idx in 0..256 {
            assert_eq!(tt.bit(idx), (idx >> 7) & 1 == 1);
        }
    }

    #[test]
    fn tail_masking_small_tables() {
        let tt = TruthTable::var(2, 0).not();
        // 4 valid bits only; upper bits must be zero.
        assert_eq!(tt.words()[0] >> 4, 0);
        assert_eq!(tt.count_ones(), 2);
    }

    #[test]
    fn simulate_and_or_not() {
        let net =
            parse_eqn("INORDER = a b;\nOUTORDER = f g h;\nf = a*b;\ng = a+b;\nh = !a;\n").unwrap();
        let res = net.simulate(&[0b1100, 0b1010]);
        assert_eq!(res[0] & 0xF, 0b1000);
        assert_eq!(res[1] & 0xF, 0b1110);
        assert_eq!(res[2] & 0xF, !0b1100u64 & 0xF);
    }

    #[test]
    fn truth_table_matches_naive_eval() {
        let net =
            parse_eqn("INORDER = a b c d;\nOUTORDER = f;\nf = (a * b) + (!c * d) + (a * !d);\n")
                .unwrap();
        let tt = &net.truth_tables()[0];
        for idx in 0..16usize {
            let a = idx & 1 == 1;
            let b = (idx >> 1) & 1 == 1;
            let c = (idx >> 2) & 1 == 1;
            let d = (idx >> 3) & 1 == 1;
            let expect = (a && b) || (!c && d) || (a && !d);
            assert_eq!(tt.bit(idx), expect, "index {idx}");
        }
    }

    #[test]
    fn truth_table_seven_inputs_multiword() {
        // parity of 7 inputs — exercises the multi-word path
        let mut net = Network::new();
        let inputs: Vec<_> = (0..7).map(|i| net.input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = net.xor(acc, x);
        }
        net.output("p", acc);
        let tt = &net.truth_tables()[0];
        for idx in 0..128usize {
            assert_eq!(tt.bit(idx), (idx.count_ones() % 2) == 1, "index {idx}");
        }
    }

    #[test]
    fn tt_algebra() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let ab = a.and(&b);
        let a_or_b = a.or(&b);
        assert_eq!(ab.count_ones(), 2);
        assert_eq!(a_or_b.count_ones(), 6);
        assert_eq!(a.not().count_ones(), 4);
        // De Morgan on tables
        assert_eq!(ab.not(), a.not().or(&b.not()));
    }

    #[test]
    #[should_panic(expected = "one stimulus word per input")]
    fn simulate_wrong_arity_panics() {
        let net = parse_eqn("INORDER = a b;\nOUTORDER = f;\nf = a*b;\n").unwrap();
        let _ = net.simulate(&[0]);
    }

    #[test]
    fn cofactor_small_vars() {
        // f = a ? b : c  over vars (a,b,c) = (0,1,2)
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = a.and(&b).or(&a.not().and(&c));
        assert_eq!(f.cofactor(0, true), b);
        assert_eq!(f.cofactor(0, false), c);
        assert!(f.depends_on(0));
        assert!(f.depends_on(1));
        assert!(!b.depends_on(0), "b must not depend on a");
    }

    #[test]
    fn cofactor_word_level_vars() {
        // 8-var function: f = x7 ? x0 : x6
        let x0 = TruthTable::var(8, 0);
        let x6 = TruthTable::var(8, 6);
        let x7 = TruthTable::var(8, 7);
        let f = x7.and(&x0).or(&x7.not().and(&x6));
        assert_eq!(f.cofactor(7, true), x0);
        assert_eq!(f.cofactor(7, false), x6);
        assert_eq!(
            f.cofactor(6, true).cofactor(7, false),
            TruthTable::zeros(8).not()
        );
        assert!(!x0.depends_on(7));
    }

    #[test]
    fn is_zero_is_ones() {
        assert!(TruthTable::zeros(4).is_zero());
        assert!(TruthTable::zeros(4).not().is_ones());
        assert!(!TruthTable::var(4, 2).is_zero());
        assert!(!TruthTable::var(4, 2).is_ones());
        // tail masking: 2-var all-ones table must report is_ones
        assert!(TruthTable::zeros(2).not().is_ones());
    }
}
