//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! The LGSynth / ISCAS benchmark suites the paper evaluates on are
//! distributed as BLIF; this module lets [`Network`]s round-trip through
//! that format. Only the combinational subset is supported — `.model`,
//! `.inputs`, `.outputs`, `.names` with single-output SOP covers, and
//! `.end` — matching what the benchmark files use. Sequential and
//! hierarchical constructs (`.latch`, `.subckt`, `.gate`, …) are rejected
//! with a [`ParseError`] naming the unsupported directive.
//!
//! # Example
//!
//! ```
//! use esyn_eqn::{parse_blif, write_blif, Network};
//!
//! # fn main() -> Result<(), esyn_eqn::ParseError> {
//! let mut net = Network::new();
//! let a = net.input("a");
//! let b = net.input("b");
//! let f = net.xor(a, b);
//! net.output("f", f);
//!
//! let text = write_blif(&net, "xor2");
//! let back = parse_blif(&text)?;
//! assert_eq!(back.num_inputs(), 2);
//! assert_eq!(back.truth_tables(), net.truth_tables());
//! # Ok(())
//! # }
//! ```

use crate::error::ParseError;
use crate::network::Network;
use crate::node::{Node, NodeId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Serializes `net` as a single-model BLIF description.
///
/// Primary inputs and outputs keep their names; internal nets are named
/// `_n<k>`, renamed with extra underscores if that would collide with a
/// user-visible name. Every output is driven through an explicit buffer
/// cover so output names never clash with internal net names.
///
/// The output can be fed back through [`parse_blif`] and to external
/// tools; names containing whitespace or `#` would produce malformed BLIF
/// and are the caller's responsibility to avoid (the workspace's parsers
/// never produce such names).
pub fn write_blif(net: &Network, model: &str) -> String {
    let mut reserved: HashSet<&str> = net.input_names().iter().map(String::as_str).collect();
    reserved.extend(net.outputs().iter().map(|(n, _)| n.as_str()));

    // Name every reachable node's net.
    let order = net.topo_order();
    let mut names: HashMap<NodeId, String> = HashMap::new();
    for &id in &order {
        let name = match net.node(id) {
            Node::Input(idx) => net.input_name(idx).to_owned(),
            Node::Const(_) => continue, // only ever referenced by outputs
            _ => {
                let mut n = format!("_n{}", id.index());
                while reserved.contains(n.as_str()) {
                    n.insert(0, '_');
                }
                n
            }
        };
        names.insert(id, name);
    }

    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let _ = writeln!(out, ".inputs {}", net.input_names().join(" "));
    let _ = writeln!(
        out,
        ".outputs {}",
        net.outputs()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    );
    for &id in &order {
        match net.node(id) {
            Node::Const(_) | Node::Input(_) => {}
            Node::Not(a) => {
                let _ = writeln!(out, ".names {} {}\n0 1", names[&a], names[&id]);
            }
            Node::And(a, b) => {
                let _ = writeln!(
                    out,
                    ".names {} {} {}\n11 1",
                    names[&a], names[&b], names[&id]
                );
            }
            Node::Or(a, b) => {
                let _ = writeln!(
                    out,
                    ".names {} {} {}\n1- 1\n-1 1",
                    names[&a], names[&b], names[&id]
                );
            }
        }
    }
    for (name, id) in net.outputs() {
        match net.node(*id) {
            Node::Const(true) => {
                let _ = writeln!(out, ".names {name}\n1");
            }
            Node::Const(false) => {
                let _ = writeln!(out, ".names {name}");
            }
            _ => {
                let _ = writeln!(out, ".names {} {}\n1 1", names[id], name);
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// One `.names` block: fanin nets, output net, and the cover rows.
struct NamesBlock {
    inputs: Vec<String>,
    output: String,
    /// (input plane over `{0,1,-}`, output phase) per row.
    rows: Vec<(String, char)>,
    line: usize,
}

/// Parses the first model of a combinational BLIF description.
///
/// Primary inputs keep their declaration order; outputs keep theirs.
/// `.names` blocks may appear in any order (nets may be used before they
/// are defined), as the format allows.
///
/// # Errors
///
/// Returns a [`ParseError`] (with a 1-based line number) on:
///
/// * unsupported directives (`.latch`, `.subckt`, `.gate`, `.exdc`, …),
/// * a net that is used but neither defined nor declared an input,
/// * a net defined twice, or a definition of a declared input,
/// * combinational cycles,
/// * malformed covers (wrong plane width, characters outside `{0,1,-}`,
///   rows mixing output phases).
pub fn parse_blif(text: &str) -> Result<Network, ParseError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut blocks: Vec<NamesBlock> = Vec::new();
    let mut saw_model = false;
    let mut ended = false;

    // Pre-pass: strip comments, join `\` continuations, keep line numbers.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut chunk = no_comment.trim_end().to_owned();
        let continued = chunk.ends_with('\\');
        if continued {
            chunk.pop();
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&chunk);
                if continued {
                    pending = Some((start, acc));
                } else {
                    lines.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, chunk));
                } else {
                    lines.push((line_no, chunk));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        lines.push((start, acc));
    }

    for (line_no, line) in lines {
        if ended {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("non-empty line has a token");
        if let Some(directive) = head.strip_prefix('.') {
            match directive {
                "model" => {
                    if saw_model {
                        // Multi-model files: keep the first model only.
                        ended = true;
                    }
                    saw_model = true;
                }
                "inputs" => inputs.extend(toks.map(str::to_owned)),
                "outputs" => outputs.extend(toks.map(str::to_owned)),
                "names" => {
                    let mut nets: Vec<String> = toks.map(str::to_owned).collect();
                    let Some(output) = nets.pop() else {
                        return Err(ParseError::new(line_no, 1, ".names needs an output net"));
                    };
                    blocks.push(NamesBlock {
                        inputs: nets,
                        output,
                        rows: Vec::new(),
                        line: line_no,
                    });
                }
                "end" => ended = true,
                other => {
                    return Err(ParseError::new(
                        line_no,
                        1,
                        format!(
                            "unsupported BLIF directive `.{other}` (combinational subset only)"
                        ),
                    ));
                }
            }
            continue;
        }

        // A cover row for the most recent .names block.
        let Some(block) = blocks.last_mut() else {
            return Err(ParseError::new(
                line_no,
                1,
                format!("cover row `{line}` outside a .names block"),
            ));
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        let (plane, out_tok) = match (block.inputs.len(), fields.as_slice()) {
            (0, [o]) => (String::new(), *o),
            (_, [p, o]) => ((*p).to_owned(), *o),
            _ => {
                return Err(ParseError::new(
                    line_no,
                    1,
                    format!(
                        "cover row `{line}` must be `<plane> <phase>` for {} inputs",
                        block.inputs.len()
                    ),
                ));
            }
        };
        if plane.len() != block.inputs.len() {
            return Err(ParseError::new(
                line_no,
                1,
                format!(
                    "plane `{plane}` has {} columns, block has {} inputs",
                    plane.len(),
                    block.inputs.len()
                ),
            ));
        }
        if let Some(bad) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
            return Err(ParseError::new(
                line_no,
                1,
                format!("invalid plane character `{bad}` (expected 0, 1 or -)"),
            ));
        }
        let phase = match out_tok {
            "0" => '0',
            "1" => '1',
            other => {
                return Err(ParseError::new(
                    line_no,
                    1,
                    format!("invalid output phase `{other}` (expected 0 or 1)"),
                ));
            }
        };
        if let Some((_, p)) = block.rows.first() {
            if *p != phase {
                return Err(ParseError::new(
                    line_no,
                    1,
                    "cover mixes output phases 0 and 1",
                ));
            }
        }
        block.rows.push((plane, phase));
    }

    // Index definitions and check for conflicts.
    let input_set: HashSet<&str> = inputs.iter().map(String::as_str).collect();
    let mut def: HashMap<&str, usize> = HashMap::new();
    for (bi, b) in blocks.iter().enumerate() {
        if input_set.contains(b.output.as_str()) {
            return Err(ParseError::new(
                b.line,
                1,
                format!(
                    "net `{}` is declared .inputs but defined by .names",
                    b.output
                ),
            ));
        }
        if def.insert(b.output.as_str(), bi).is_some() {
            return Err(ParseError::new(
                b.line,
                1,
                format!("net `{}` defined twice", b.output),
            ));
        }
    }

    let mut net = Network::new();
    let mut resolved: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        let id = net.input(name.clone());
        resolved.insert(name.clone(), id);
    }

    // Iterative post-order resolution from the outputs, since .names
    // blocks may be listed in any order.
    enum Phase<'a> {
        Enter(&'a str, usize),
        Exit(usize),
    }
    let mut on_path: HashSet<&str> = HashSet::new();
    for out_name in &outputs {
        if resolved.contains_key(out_name) {
            continue;
        }
        let mut stack: Vec<Phase<'_>> = vec![Phase::Enter(out_name, 0)];
        while let Some(phase) = stack.pop() {
            match phase {
                Phase::Enter(name, use_line) => {
                    if resolved.contains_key(name) {
                        continue;
                    }
                    let Some(&bi) = def.get(name) else {
                        return Err(ParseError::new(
                            use_line,
                            1,
                            format!("net `{name}` is used but never defined"),
                        ));
                    };
                    if !on_path.insert(blocks[bi].output.as_str()) {
                        return Err(ParseError::new(
                            blocks[bi].line,
                            1,
                            format!("combinational cycle through net `{name}`"),
                        ));
                    }
                    stack.push(Phase::Exit(bi));
                    for dep in &blocks[bi].inputs {
                        stack.push(Phase::Enter(dep, blocks[bi].line));
                    }
                }
                Phase::Exit(bi) => {
                    let b = &blocks[bi];
                    let deps: Vec<NodeId> = b.inputs.iter().map(|d| resolved[d.as_str()]).collect();
                    let id = build_cover(&mut net, b, &deps);
                    on_path.remove(b.output.as_str());
                    resolved.insert(b.output.clone(), id);
                }
            }
        }
    }

    for name in &outputs {
        let id = resolved[name.as_str()];
        net.output(name.clone(), id);
    }
    Ok(net)
}

/// Builds the Boolean function of one `.names` cover over resolved fanins.
fn build_cover(net: &mut Network, block: &NamesBlock, deps: &[NodeId]) -> NodeId {
    if block.rows.is_empty() {
        return net.constant(false);
    }
    let phase = block.rows[0].1;
    let mut products = Vec::with_capacity(block.rows.len());
    for (plane, _) in &block.rows {
        let mut literals = Vec::new();
        for (i, c) in plane.chars().enumerate() {
            match c {
                '1' => literals.push(deps[i]),
                '0' => {
                    let l = net.not(deps[i]);
                    literals.push(l);
                }
                _ => {}
            }
        }
        products.push(net.and_many(&literals));
    }
    let sum = net.or_many(&products);
    if phase == '1' {
        sum
    } else {
        // Off-set cover: the rows list where the output is 0.
        net.not(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Network {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let s = net.xor(a, b);
        let s2 = net.xor(s, c);
        let maj = net.maj(a, b, c);
        net.output("sum", s2);
        net.output("carry", maj);
        net
    }

    fn equivalent(x: &Network, y: &Network) -> bool {
        assert_eq!(x.num_inputs(), y.num_inputs());
        x.truth_tables() == y.truth_tables()
    }

    #[test]
    fn roundtrip_preserves_function() {
        let net = sample();
        let text = write_blif(&net, "fa");
        let back = parse_blif(&text).unwrap();
        assert_eq!(back.input_names(), net.input_names());
        assert_eq!(
            back.outputs()
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
            vec!["sum".to_owned(), "carry".to_owned()]
        );
        assert!(equivalent(&net, &back));
    }

    #[test]
    fn writer_emits_expected_skeleton() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let f = net.and(a, b);
        net.output("f", f);
        let text = write_blif(&net, "and2");
        assert!(text.starts_with(".model and2\n"));
        assert!(text.contains(".inputs a b\n"));
        assert!(text.contains(".outputs f\n"));
        assert!(text.contains("11 1\n"));
        assert!(text.trim_end().ends_with(".end"));
    }

    #[test]
    fn parses_multi_input_cover() {
        // 3-input majority as an on-set cover.
        let text = "\
.model maj3
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
";
        let parsed = parse_blif(text).unwrap();
        let mut reference = Network::new();
        let a = reference.input("a");
        let b = reference.input("b");
        let c = reference.input("c");
        let m = reference.maj(a, b, c);
        reference.output("m", m);
        assert!(equivalent(&reference, &parsed));
    }

    #[test]
    fn parses_offset_cover() {
        // f is 0 exactly when a=b=0, i.e. f = a | b.
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n00 0\n.end\n";
        let parsed = parse_blif(text).unwrap();
        let mut reference = Network::new();
        let a = reference.input("a");
        let b = reference.input("b");
        let f = reference.or(a, b);
        reference.output("f", f);
        assert!(equivalent(&reference, &parsed));
    }

    #[test]
    fn parses_constant_covers() {
        let text = ".model k\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n";
        let parsed = parse_blif(text).unwrap();
        let tts = parsed.truth_tables();
        assert!(tts[0].is_ones());
        assert!(tts[1].is_zero());
    }

    #[test]
    fn roundtrips_constant_outputs() {
        let mut net = Network::new();
        let a = net.input("a");
        let na = net.not(a);
        let zero = net.and(a, na);
        let one = net.or(a, na);
        net.output("zero", zero);
        net.output("one", one);
        let back = parse_blif(&write_blif(&net, "consts")).unwrap();
        let tts = back.truth_tables();
        assert!(tts[0].is_zero());
        assert!(tts[1].is_ones());
    }

    #[test]
    fn blocks_in_any_order_resolve() {
        // g uses h, which is defined later.
        let text = "\
.model order
.inputs a b
.outputs g
.names h a g
11 1
.names b h
0 1
.end
";
        let parsed = parse_blif(text).unwrap();
        let mut reference = Network::new();
        let a = reference.input("a");
        let b = reference.input("b");
        let h = reference.not(b);
        let g = reference.and(h, a);
        reference.output("g", g);
        assert!(equivalent(&reference, &parsed));
    }

    #[test]
    fn continuation_and_comments() {
        let text = "\
# adder fragment
.model c
.inputs a \\
b
.outputs f # trailing comment
.names a b f
11 1
.end
";
        let parsed = parse_blif(text).unwrap();
        assert_eq!(parsed.input_names(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(parsed.num_outputs(), 1);
    }

    #[test]
    fn output_fed_directly_by_input() {
        let mut net = Network::new();
        let a = net.input("a");
        net.output("f", a);
        let back = parse_blif(&write_blif(&net, "wire")).unwrap();
        assert!(equivalent(&net, &back));
    }

    #[test]
    fn rejects_latch_and_subckt() {
        for directive in [".latch a b 0", ".subckt sub x=a", ".gate NAND2 a=x"] {
            let text = format!(".model m\n.inputs a\n.outputs f\n{directive}\n.end\n");
            let err = parse_blif(&text).unwrap_err();
            assert!(err.to_string().contains("unsupported"), "{err}");
        }
    }

    #[test]
    fn rejects_undefined_net() {
        let text = ".model m\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n";
        let err = parse_blif(text).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn rejects_combinational_cycle() {
        let text = "\
.model m
.inputs a
.outputs f
.names g a f
11 1
.names f g
1 1
.end
";
        let err = parse_blif(text).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn rejects_malformed_covers() {
        // wrong plane width
        let t1 = ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n";
        assert!(parse_blif(t1).unwrap_err().to_string().contains("columns"));
        // bad character
        let t2 = ".model m\n.inputs a b\n.outputs f\n.names a b f\n1x 1\n.end\n";
        assert!(parse_blif(t2)
            .unwrap_err()
            .to_string()
            .contains("invalid plane"));
        // mixed phases
        let t3 = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n";
        assert!(parse_blif(t3).unwrap_err().to_string().contains("mixes"));
        // redefinition
        let t4 = ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n";
        assert!(parse_blif(t4).unwrap_err().to_string().contains("twice"));
        // defining an input
        let t5 = ".model m\n.inputs a b\n.outputs f\n.names b a\n1 1\n.names a f\n1 1\n.end\n";
        assert!(parse_blif(t5)
            .unwrap_err()
            .to_string()
            .contains("declared .inputs"));
    }

    #[test]
    fn adversarial_names_still_roundtrip() {
        // An input named like the writer's internal nets must not collide.
        let mut net = Network::new();
        let a = net.input("_n2");
        let b = net.input("b");
        let f = net.and(a, b);
        net.output("_n3", f);
        let back = parse_blif(&write_blif(&net, "adv")).unwrap();
        assert!(equivalent(&net, &back));
    }

    mod properties {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn random_network(rng: &mut StdRng) -> Network {
            let num_inputs = rng.gen_range(2usize..6);
            let num_ops = rng.gen_range(1usize..24);
            let mut net = Network::new();
            let mut pool: Vec<NodeId> = (0..num_inputs)
                .map(|i| net.input(format!("x{i}")))
                .collect();
            for _ in 0..num_ops {
                let a = pool[rng.gen_range(0usize..pool.len())];
                let b = pool[rng.gen_range(0usize..pool.len())];
                let id = match rng.gen_range(0u32..4) {
                    0 => net.and(a, b),
                    1 => net.or(a, b),
                    2 => net.not(a),
                    _ => net.xor(a, b),
                };
                pool.push(id);
            }
            let last = *pool.last().expect("non-empty pool");
            net.output("f", last);
            let second = pool[pool.len() / 2];
            net.output("g", second);
            net
        }

        #[test]
        fn blif_roundtrip_is_equivalent() {
            for case in 0..64u64 {
                let mut rng = StdRng::seed_from_u64(0xB11F ^ (case << 8));
                let net = random_network(&mut rng);
                let text = write_blif(&net, "prop");
                let back = parse_blif(&text).unwrap();
                assert_eq!(back.num_inputs(), net.num_inputs(), "case {case}");
                assert_eq!(back.truth_tables(), net.truth_tables(), "case {case}");
            }
        }
    }
}
