//! Parser for the ABC equation format (`write_eqn` / `read_eqn`).
//!
//! The grammar accepted here is the one ABC emits plus a few tolerated
//! extensions that appear in the wild:
//!
//! ```text
//! file     := { statement }
//! statement:= "INORDER"  "=" ident* ";"
//!           | "OUTORDER" "=" ident* ";"
//!           | ident "=" expr ";"
//! expr     := term   { "+" term }           // OR, lowest precedence
//! term     := factor { "*" factor }         // AND
//! factor   := "!" factor | atom { "'" }     // prefix ! and postfix '
//! atom     := ident | "0" | "1" | "(" expr ")"
//! ```
//!
//! `#`-to-end-of-line comments are skipped. Identifiers assigned before use
//! act as intermediate wires; identifiers never assigned are primary inputs
//! (they must be listed in `INORDER` if an `INORDER` line is present).

use crate::error::ParseError;
use crate::network::Network;
use crate::node::NodeId;
use std::collections::HashMap;

/// Parses ABC equation-format text into a [`Network`].
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information on malformed
/// input, on use of an identifier that is neither a declared input nor a
/// previously assigned wire, and on `OUTORDER` entries that are never
/// defined.
///
/// # Example
///
/// ```
/// let net = esyn_eqn::parse_eqn(
///     "INORDER = a b c;\nOUTORDER = f;\nf = a*b + !c;\n",
/// )?;
/// assert_eq!(net.num_inputs(), 3);
/// assert_eq!(net.num_outputs(), 1);
/// # Ok::<(), esyn_eqn::ParseError>(())
/// ```
pub fn parse_eqn(text: &str) -> Result<Network, ParseError> {
    let toks = lex(text)?;
    Parser { toks, pos: 0 }.parse()
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Equals,
    Semi,
    Plus,
    Star,
    Bang,
    Tick,
    LParen,
    RParen,
    Zero,
    One,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(text: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        let bump = |c: char, line: &mut usize, col: &mut usize| {
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
                bump(c, &mut line, &mut col);
            }
            '#' => {
                // comment to end of line
                while let Some(&c) = chars.peek() {
                    chars.next();
                    bump(c, &mut line, &mut col);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '=' | ';' | '+' | '*' | '!' | '\'' | '(' | ')' => {
                chars.next();
                bump(c, &mut line, &mut col);
                let tok = match c {
                    '=' => Tok::Equals,
                    ';' => Tok::Semi,
                    '+' => Tok::Plus,
                    '*' => Tok::Star,
                    '!' => Tok::Bang,
                    '\'' => Tok::Tick,
                    '(' => Tok::LParen,
                    _ => Tok::RParen,
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            '&' => {
                // tolerated synonym for '*'
                chars.next();
                bump(c, &mut line, &mut col);
                out.push(Spanned {
                    tok: Tok::Star,
                    line: tline,
                    col: tcol,
                });
            }
            '|' => {
                chars.next();
                bump(c, &mut line, &mut col);
                out.push(Spanned {
                    tok: Tok::Plus,
                    line: tline,
                    col: tcol,
                });
            }
            _ if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '.' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '.' {
                        ident.push(c);
                        chars.next();
                        bump(c, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                let tok = match ident.as_str() {
                    "0" => Tok::Zero,
                    "1" => Tok::One,
                    _ => Tok::Ident(ident),
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(ParseError::new(
                    tline,
                    tcol,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn next_tok(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.next_tok() {
            Some(s) if &s.tok == want => Ok(()),
            Some(s) => Err(ParseError::new(
                s.line,
                s.col,
                format!("expected {what}, found {:?}", s.tok),
            )),
            None => Err(ParseError::nopos(format!(
                "unexpected end of input, expected {what}"
            ))),
        }
    }

    fn parse(mut self) -> Result<Network, ParseError> {
        let mut net = Network::new();
        let mut wires: HashMap<String, NodeId> = HashMap::new();
        let mut inorder: Option<Vec<String>> = None;
        let mut outorder: Option<Vec<String>> = None;
        let mut assigns: Vec<(String, NodeId)> = Vec::new();

        while let Some(s) = self.next_tok() {
            let (line, col) = (s.line, s.col);
            match s.tok {
                Tok::Ident(name) if name == "INORDER" => {
                    self.expect(&Tok::Equals, "`=` after INORDER")?;
                    let names = self.ident_list()?;
                    for n in &names {
                        let id = net.input(n.clone());
                        wires.insert(n.clone(), id);
                    }
                    inorder = Some(names);
                }
                Tok::Ident(name) if name == "OUTORDER" => {
                    self.expect(&Tok::Equals, "`=` after OUTORDER")?;
                    outorder = Some(self.ident_list()?);
                }
                Tok::Ident(name) => {
                    self.expect(&Tok::Equals, "`=` in assignment")?;
                    let id = self.expr(&mut net, &wires, inorder.is_some())?;
                    self.expect(&Tok::Semi, "`;` after expression")?;
                    if wires.insert(name.clone(), id).is_some() && inorder.is_some() {
                        return Err(ParseError::new(
                            line,
                            col,
                            format!("`{name}` assigned more than once"),
                        ));
                    }
                    assigns.push((name, id));
                }
                other => {
                    return Err(ParseError::new(
                        line,
                        col,
                        format!("expected statement, found {other:?}"),
                    ));
                }
            }
        }

        match outorder {
            Some(names) => {
                for n in names {
                    let id = wires.get(&n).copied().ok_or_else(|| {
                        ParseError::nopos(format!("OUTORDER signal `{n}` is never defined"))
                    })?;
                    net.output(n, id);
                }
            }
            None => {
                // ABC always emits OUTORDER; this branch only serves
                // hand-written snippets, where "every assignment is an
                // output" is the useful default.
                for (n, id) in assigns {
                    net.output(n, id);
                }
            }
        }
        Ok(net)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = Vec::new();
        loop {
            match self.next_tok() {
                Some(Spanned {
                    tok: Tok::Ident(n), ..
                }) => names.push(n),
                Some(Spanned { tok: Tok::Semi, .. }) => return Ok(names),
                Some(s) => {
                    return Err(ParseError::new(
                        s.line,
                        s.col,
                        format!("expected identifier or `;`, found {:?}", s.tok),
                    ));
                }
                None => {
                    return Err(ParseError::nopos(
                        "unexpected end of input in identifier list",
                    ));
                }
            }
        }
    }

    /// expr := term { '+' term }
    fn expr(
        &mut self,
        net: &mut Network,
        wires: &HashMap<String, NodeId>,
        strict_inputs: bool,
    ) -> Result<NodeId, ParseError> {
        let mut acc = self.term(net, wires, strict_inputs)?;
        while matches!(self.peek().map(|s| &s.tok), Some(Tok::Plus)) {
            self.next_tok();
            let rhs = self.term(net, wires, strict_inputs)?;
            acc = net.or(acc, rhs);
        }
        Ok(acc)
    }

    /// term := factor { '*' factor }
    fn term(
        &mut self,
        net: &mut Network,
        wires: &HashMap<String, NodeId>,
        strict_inputs: bool,
    ) -> Result<NodeId, ParseError> {
        let mut acc = self.factor(net, wires, strict_inputs)?;
        while matches!(self.peek().map(|s| &s.tok), Some(Tok::Star)) {
            self.next_tok();
            let rhs = self.factor(net, wires, strict_inputs)?;
            acc = net.and(acc, rhs);
        }
        Ok(acc)
    }

    /// factor := '!' factor | atom { '\'' }
    fn factor(
        &mut self,
        net: &mut Network,
        wires: &HashMap<String, NodeId>,
        strict_inputs: bool,
    ) -> Result<NodeId, ParseError> {
        if matches!(self.peek().map(|s| &s.tok), Some(Tok::Bang)) {
            self.next_tok();
            let inner = self.factor(net, wires, strict_inputs)?;
            return Ok(net.not(inner));
        }
        let mut id = self.atom(net, wires, strict_inputs)?;
        while matches!(self.peek().map(|s| &s.tok), Some(Tok::Tick)) {
            self.next_tok();
            id = net.not(id);
        }
        Ok(id)
    }

    fn atom(
        &mut self,
        net: &mut Network,
        wires: &HashMap<String, NodeId>,
        strict_inputs: bool,
    ) -> Result<NodeId, ParseError> {
        match self.next_tok() {
            Some(Spanned { tok: Tok::Zero, .. }) => Ok(net.constant(false)),
            Some(Spanned { tok: Tok::One, .. }) => Ok(net.constant(true)),
            Some(Spanned {
                tok: Tok::Ident(n),
                line,
                col,
            }) => {
                if let Some(&id) = wires.get(&n) {
                    Ok(id)
                } else if strict_inputs {
                    Err(ParseError::new(
                        line,
                        col,
                        format!("`{n}` used before definition and not in INORDER"),
                    ))
                } else {
                    Ok(net.input(n))
                }
            }
            Some(Spanned {
                tok: Tok::LParen, ..
            }) => {
                let id = self.expr(net, wires, strict_inputs)?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(id)
            }
            Some(s) => Err(ParseError::new(
                s.line,
                s.col,
                format!("expected operand, found {:?}", s.tok),
            )),
            None => Err(ParseError::nopos("unexpected end of input in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = a*b + !c;\n").unwrap();
        assert_eq!(net.num_inputs(), 3);
        assert_eq!(net.num_outputs(), 1);
        let s = net.stats();
        assert_eq!(s.ands, 1);
        assert_eq!(s.ors, 1);
        assert_eq!(s.nots, 1);
    }

    #[test]
    fn precedence_and_parens() {
        // a + b*c must parse as a + (b*c)
        let n1 = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = a + b*c;\n").unwrap();
        let n2 = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = a + (b*c);\n").unwrap();
        assert_eq!(n1.truth_tables(), n2.truth_tables());
        let n3 = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = (a + b)*c;\n").unwrap();
        assert_ne!(n1.truth_tables(), n3.truth_tables());
    }

    #[test]
    fn postfix_tick_and_prefix_bang_agree() {
        let n1 = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = !a;\n").unwrap();
        let n2 = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a';\n").unwrap();
        assert_eq!(n1.truth_tables(), n2.truth_tables());
    }

    #[test]
    fn intermediate_wires() {
        let net = parse_eqn("INORDER = a b;\nOUTORDER = f;\nw1 = a * b;\nw2 = !w1;\nf = w2 + a;\n")
            .unwrap();
        assert_eq!(net.num_outputs(), 1);
    }

    #[test]
    fn comments_and_synonym_operators() {
        let net =
            parse_eqn("# a comment\nINORDER = a b; # trailing\nOUTORDER = f;\nf = a & b | !a;\n")
                .unwrap();
        assert_eq!(net.num_inputs(), 2);
    }

    #[test]
    fn constants() {
        let net = parse_eqn("INORDER = a;\nOUTORDER = f g;\nf = a * 1;\ng = a + 0;\n").unwrap();
        // both fold to `a`
        let tts = net.truth_tables();
        assert_eq!(tts[0], tts[1]);
    }

    #[test]
    fn error_undefined_signal() {
        let err = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a * ghost;\n").unwrap_err();
        assert!(err.message.contains("ghost"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_missing_outorder_signal() {
        let err = parse_eqn("INORDER = a;\nOUTORDER = f;\ng = a;\n").unwrap_err();
        assert!(err.message.contains('f'), "{err}");
    }

    #[test]
    fn error_double_assignment() {
        let err = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a;\nf = !a;\n").unwrap_err();
        assert!(err.message.contains("more than once"), "{err}");
    }

    #[test]
    fn error_garbage_character() {
        let err = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a @ a;\n").unwrap_err();
        assert!(err.message.contains('@'), "{err}");
    }

    #[test]
    fn no_outorder_means_all_assigned_are_outputs() {
        let net = parse_eqn("f = a * b;\ng = !a;\n").unwrap();
        assert_eq!(net.num_outputs(), 2);
        assert_eq!(net.num_inputs(), 2);
    }

    #[test]
    fn bracketed_bus_names() {
        let net =
            parse_eqn("INORDER = x[0] x[1];\nOUTORDER = y[0];\ny[0] = x[0] * x[1];\n").unwrap();
        assert_eq!(net.input_names()[0], "x[0]");
    }
}
