//! Writers: ABC equation format, S-expressions and structural Verilog.

use crate::network::Network;
use crate::node::{Node, NodeId};
use crate::parse_sexpr::SExpr;
use std::collections::HashMap;
use std::fmt::Write as _;

impl Network {
    /// Renders this network in ABC equation format.
    ///
    /// Shared interior nodes (fanout > 1) become intermediate `new_nK_`
    /// wires exactly like ABC's `write_eqn`; single-fanout nodes are
    /// inlined into their parent expression.
    ///
    /// # Example
    ///
    /// ```
    /// let mut net = esyn_eqn::Network::new();
    /// let a = net.input("a");
    /// let b = net.input("b");
    /// let f = net.and(a, b);
    /// net.output("f", f);
    /// let text = net.to_eqn();
    /// assert!(text.contains("INORDER = a b;"));
    /// assert!(text.contains("f = (a * b);"));
    /// ```
    pub fn to_eqn(&self) -> String {
        let order = self.topo_order();
        // Count fanouts among reachable nodes + outputs.
        let mut fanout: HashMap<NodeId, usize> = HashMap::new();
        for &id in &order {
            for f in self.node(id).fanins() {
                *fanout.entry(f).or_insert(0) += 1;
            }
        }
        for &(_, id) in self.outputs() {
            *fanout.entry(id).or_insert(0) += 1;
        }

        let mut text = String::new();
        let _ = write!(text, "INORDER =");
        for name in self.input_names() {
            let _ = write!(text, " {name}");
        }
        let _ = writeln!(text, ";");
        let _ = write!(text, "OUTORDER =");
        for (name, _) in self.outputs() {
            let _ = write!(text, " {name}");
        }
        let _ = writeln!(text, ";");

        // Wires for shared operator nodes, in topological order.
        let mut wire_names: HashMap<NodeId, String> = HashMap::new();
        for &id in &order {
            let node = self.node(id);
            if node.is_leaf() {
                continue;
            }
            if fanout.get(&id).copied().unwrap_or(0) > 1 {
                let name = format!("new_n{}_", id.index());
                let expr = self.expr_text(id, &wire_names, true);
                let _ = writeln!(text, "{name} = {expr};");
                wire_names.insert(id, name);
            }
        }
        for (name, id) in self.outputs() {
            let expr = self.expr_text(*id, &wire_names, false);
            let _ = writeln!(text, "{name} = {expr};");
        }
        text
    }

    /// Expression text for `id`; `top_level_define` skips the wire-name
    /// substitution at the root (used when defining that very wire).
    fn expr_text(
        &self,
        id: NodeId,
        wires: &HashMap<NodeId, String>,
        top_level_define: bool,
    ) -> String {
        if !top_level_define {
            if let Some(name) = wires.get(&id) {
                return name.clone();
            }
        }
        match self.node(id) {
            Node::Const(false) => "0".to_owned(),
            Node::Const(true) => "1".to_owned(),
            Node::Input(idx) => self.input_name(idx).to_owned(),
            Node::Not(a) => format!("!{}", self.expr_text(a, wires, false)),
            Node::And(a, b) => format!(
                "({} * {})",
                self.expr_text(a, wires, false),
                self.expr_text(b, wires, false)
            ),
            Node::Or(a, b) => format!(
                "({} + {})",
                self.expr_text(a, wires, false),
                self.expr_text(b, wires, false)
            ),
        }
    }

    /// Converts the cone of `root` into an [`SExpr`] tree.
    ///
    /// Sharing in the DAG is *expanded*: the result is a tree, so this is
    /// intended for inspection and small-circuit tests. The e-graph layer
    /// converts networks directly (preserving sharing) and does not go
    /// through this method.
    pub fn node_to_sexpr(&self, root: NodeId) -> SExpr {
        match self.node(root) {
            Node::Const(v) => SExpr::Const(v),
            Node::Input(idx) => SExpr::Var(self.input_name(idx).to_owned()),
            Node::Not(a) => SExpr::Not(Box::new(self.node_to_sexpr(a))),
            Node::And(a, b) => SExpr::And(vec![self.node_to_sexpr(a), self.node_to_sexpr(b)]),
            Node::Or(a, b) => SExpr::Or(vec![self.node_to_sexpr(a), self.node_to_sexpr(b)]),
        }
    }

    /// Renders the whole network as one S-expression: `(outs f g ...)` for
    /// multi-output networks, or the bare expression for single-output ones.
    pub fn to_sexpr(&self) -> String {
        let roots: Vec<SExpr> = self
            .outputs()
            .iter()
            .map(|&(_, id)| self.node_to_sexpr(id))
            .collect();
        match roots.len() {
            1 => roots[0].to_string(),
            _ => SExpr::Outs(roots).to_string(),
        }
    }

    /// Renders the network as a structural Verilog module named `name`,
    /// one `assign` per reachable operator node.
    pub fn to_verilog(&self, name: &str) -> String {
        let sanitize = |s: &str| {
            s.chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
        };
        let mut text = String::new();
        let _ = writeln!(text, "module {name} (");
        for input in self.input_names() {
            let _ = writeln!(text, "  input wire {},", sanitize(input));
        }
        for (i, (oname, _)) in self.outputs().iter().enumerate() {
            let comma = if i + 1 == self.num_outputs() { "" } else { "," };
            let _ = writeln!(text, "  output wire {}{comma}", sanitize(oname));
        }
        let _ = writeln!(text, ");");

        let order = self.topo_order();
        let mut names: HashMap<NodeId, String> = HashMap::new();
        for &id in &order {
            match self.node(id) {
                Node::Input(idx) => {
                    names.insert(id, sanitize(self.input_name(idx)));
                }
                Node::Const(v) => {
                    names.insert(id, if v { "1'b1".into() } else { "1'b0".into() });
                }
                _ => {}
            }
        }
        for &id in &order {
            let node = self.node(id);
            if node.is_leaf() {
                continue;
            }
            let wire = format!("w{}", id.index());
            let _ = writeln!(text, "  wire {wire};");
            let rhs = match node {
                Node::Not(a) => format!("~{}", names[&a]),
                Node::And(a, b) => format!("{} & {}", names[&a], names[&b]),
                Node::Or(a, b) => format!("{} | {}", names[&a], names[&b]),
                _ => unreachable!(),
            };
            let _ = writeln!(text, "  assign {wire} = {rhs};");
            names.insert(id, wire);
        }
        for (oname, id) in self.outputs() {
            let _ = writeln!(text, "  assign {} = {};", sanitize(oname), names[id]);
        }
        let _ = writeln!(text, "endmodule");
        text
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_eqn, parse_sexpr_network, Network};

    fn adder2() -> Network {
        let mut net = Network::new();
        let a0 = net.input("a0");
        let a1 = net.input("a1");
        let b0 = net.input("b0");
        let b1 = net.input("b1");
        let s0 = net.xor(a0, b0);
        let c0 = net.and(a0, b0);
        let t = net.xor(a1, b1);
        let s1 = net.xor(t, c0);
        let g = net.and(a1, b1);
        let p = net.and(t, c0);
        let c1 = net.or(g, p);
        net.output("s0", s0);
        net.output("s1", s1);
        net.output("cout", c1);
        net
    }

    #[test]
    fn eqn_roundtrip_preserves_function() {
        let net = adder2();
        let text = net.to_eqn();
        let reparsed = parse_eqn(&text).unwrap();
        assert_eq!(net.truth_tables(), reparsed.truth_tables());
    }

    #[test]
    fn eqn_shared_nodes_become_wires() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let shared = net.and(a, b);
        let x = net.not(shared);
        let y = net.or(shared, a);
        net.output("x", x);
        net.output("y", y);
        let text = net.to_eqn();
        assert!(
            text.contains("new_n"),
            "shared node should get a wire:\n{text}"
        );
        let reparsed = parse_eqn(&text).unwrap();
        assert_eq!(net.truth_tables(), reparsed.truth_tables());
    }

    #[test]
    fn sexpr_roundtrip_preserves_function() {
        let net = adder2();
        let text = net.to_sexpr();
        let reparsed = parse_sexpr_network(&text).unwrap();
        // Input *declaration order* may differ after the round-trip (the
        // sexpr printer emits inputs in first-use order), so align stimulus
        // by input name before comparing responses.
        let patterns: Vec<u64> = (0..net.num_inputs() as u64)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
            .collect();
        let by_name: std::collections::HashMap<&str, u64> = net
            .input_names()
            .iter()
            .map(String::as_str)
            .zip(patterns.iter().copied())
            .collect();
        let reparsed_patterns: Vec<u64> = reparsed
            .input_names()
            .iter()
            .map(|n| by_name[n.as_str()])
            .collect();
        assert_eq!(
            net.simulate(&patterns),
            reparsed.simulate(&reparsed_patterns)
        );
    }

    #[test]
    fn single_output_sexpr_has_no_outs() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let f = net.and(a, b);
        net.output("f", f);
        assert_eq!(net.to_sexpr(), "(* a b)");
    }

    #[test]
    fn verilog_writer_emits_module() {
        let net = adder2();
        let v = net.to_verilog("adder2");
        assert!(v.starts_with("module adder2 ("));
        assert!(v.contains("assign"));
        assert!(v.trim_end().ends_with("endmodule"));
        // one assign per gate + one per output
        let assigns = v.matches("assign").count();
        assert_eq!(assigns, net.stats().gates() + net.num_outputs());
    }

    #[test]
    fn verilog_sanitizes_bus_names() {
        let mut net = Network::new();
        let a = net.input("x[0]");
        let b = net.input("x[1]");
        let f = net.or(a, b);
        net.output("y[0]", f);
        let v = net.to_verilog("m");
        assert!(v.contains("x_0_"));
        assert!(!v.contains("x[0]"));
    }

    #[test]
    fn constant_outputs_print() {
        let mut net = Network::new();
        let a = net.input("a");
        let na = net.not(a);
        let f = net.and(a, na); // folds to const 0
        net.output("f", f);
        let text = net.to_eqn();
        assert!(text.contains("f = 0;"), "{text}");
        let reparsed = parse_eqn(&text).unwrap();
        assert_eq!(reparsed.truth_tables()[0].words(), &[0]);
    }
}
