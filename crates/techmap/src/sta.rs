//! Static timing analysis with the linear (load-dependent) delay model.

use crate::library::Library;
use crate::netlist::{Netlist, Signal};

/// Default primary-output pin load, in the same units as cell input
/// capacitance.
pub const PO_CAP: f64 = 1.2;

/// The result of a timing analysis run.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Arrival time at each gate output (ps).
    pub arrivals: Vec<f64>,
    /// Worst primary-output arrival (the circuit delay).
    pub delay: f64,
    /// Slack per gate against the worst arrival (or an explicit target).
    pub slacks: Vec<f64>,
    /// Gate ids along one worst path, from the endpoint backwards.
    pub critical: Vec<u32>,
}

/// Runs STA: arrival times forward, required times backward, slack, and
/// one critical path.
///
/// The delay of a gate is `intrinsic + resistance * load`, where load sums
/// the input capacitance of all fanout pins plus `po_cap` per PO pin. The
/// same delay applies to every input pin (pin-dependent tables are beyond
/// the fidelity this reproduction needs).
pub fn sta(nl: &Netlist, lib: &Library, po_cap: f64) -> TimingReport {
    sta_with_target(nl, lib, po_cap, None)
}

/// Like [`sta`] but computes slacks against an explicit `target` delay
/// instead of the worst arrival.
pub fn sta_with_target(
    nl: &Netlist,
    lib: &Library,
    po_cap: f64,
    target: Option<f64>,
) -> TimingReport {
    let loads = nl.loads(lib, po_cap);
    let n = nl.num_gates();
    let mut arrivals = vec![0.0f64; n];
    let mut worst_in: Vec<Option<u32>> = vec![None; n];

    let sig_arrival = |arrivals: &[f64], s: &Signal| -> f64 {
        match s {
            Signal::Gate(g) => arrivals[*g as usize],
            _ => 0.0,
        }
    };

    for (i, g) in nl.gates().iter().enumerate() {
        let cell = &lib.cells()[g.cell];
        let mut arr: f64 = 0.0;
        for s in &g.inputs {
            let a = sig_arrival(&arrivals, s);
            if a >= arr {
                arr = a;
                worst_in[i] = match s {
                    Signal::Gate(j) => Some(*j),
                    _ => None,
                };
            }
        }
        arrivals[i] = arr + cell.delay(loads[i]);
    }

    let mut delay = 0.0f64;
    let mut worst_po: Option<u32> = None;
    for (_, s) in nl.outputs() {
        let a = sig_arrival(&arrivals, s);
        if a >= delay {
            delay = a;
            worst_po = match s {
                Signal::Gate(j) => Some(*j),
                _ => None,
            };
        }
    }

    // Required times backward.
    let horizon = target.unwrap_or(delay);
    let mut required = vec![f64::INFINITY; n];
    for (_, s) in nl.outputs() {
        if let Signal::Gate(j) = s {
            required[*j as usize] = required[*j as usize].min(horizon);
        }
    }
    for i in (0..n).rev() {
        let gate = &nl.gates()[i];
        let cell = &lib.cells()[gate.cell];
        if required[i].is_finite() {
            let req_in = required[i] - cell.delay(loads[i]);
            for s in &gate.inputs {
                if let Signal::Gate(j) = s {
                    required[*j as usize] = required[*j as usize].min(req_in);
                }
            }
        }
    }
    let slacks: Vec<f64> = (0..n)
        .map(|i| {
            if required[i].is_finite() {
                required[i] - arrivals[i]
            } else {
                f64::INFINITY // dangling gate
            }
        })
        .collect();

    // One critical path, endpoint backwards.
    let mut critical = Vec::new();
    let mut cursor = worst_po;
    while let Some(g) = cursor {
        critical.push(g);
        cursor = worst_in[g as usize];
    }

    TimingReport {
        arrivals,
        delay,
        slacks,
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::netlist::Netlist;

    fn cell_index(lib: &Library, name: &str) -> usize {
        lib.cells().iter().position(|c| c.name == name).unwrap()
    }

    /// inv chain: a -> INV -> INV -> f
    fn inv_chain(lib: &Library, len: usize) -> Netlist {
        let inv = cell_index(lib, "INV_x1");
        let mut nl = Netlist::new();
        let mut s = nl.add_input("a");
        for _ in 0..len {
            s = nl.add_gate(inv, vec![s]);
        }
        nl.add_output("f", s);
        nl
    }

    #[test]
    fn chain_delay_accumulates() {
        let lib = Library::asap7_like();
        let one = sta(&inv_chain(&lib, 1), &lib, 1.0);
        let three = sta(&inv_chain(&lib, 3), &lib, 1.0);
        assert!(three.delay > 2.0 * one.delay);
        assert_eq!(three.critical.len(), 3);
    }

    #[test]
    fn critical_path_slack_is_zero() {
        let lib = Library::asap7_like();
        let nl = inv_chain(&lib, 4);
        let t = sta(&nl, &lib, 1.0);
        for &g in &t.critical {
            assert!(t.slacks[g as usize].abs() < 1e-9, "critical gate slack");
        }
    }

    #[test]
    fn off_path_gate_has_positive_slack() {
        let lib = Library::asap7_like();
        let inv = cell_index(&lib, "INV_x1");
        let nand = cell_index(&lib, "NAND2_x1");
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // long path: a -> 3 invs; short path: b -> 1 inv; nand joins them
        let mut la = a;
        for _ in 0..3 {
            la = nl.add_gate(inv, vec![la]);
        }
        let lb = nl.add_gate(inv, vec![b]);
        let f = nl.add_gate(nand, vec![la, lb]);
        nl.add_output("f", f);
        let t = sta(&nl, &lib, 1.0);
        // the single b-side inverter must have positive slack
        let b_inv = 3usize;
        assert!(t.slacks[b_inv] > 1.0, "slack {}", t.slacks[b_inv]);
    }

    #[test]
    fn load_increases_delay() {
        let lib = Library::asap7_like();
        let inv = cell_index(&lib, "INV_x1");
        // one inverter driving 1 PO vs driving 4 fanout inverters
        let mut light = Netlist::new();
        let a = light.add_input("a");
        let g = light.add_gate(inv, vec![a]);
        light.add_output("f", g);

        let mut heavy = Netlist::new();
        let a2 = heavy.add_input("a");
        let g2 = heavy.add_gate(inv, vec![a2]);
        for i in 0..4 {
            let s = heavy.add_gate(inv, vec![g2]);
            heavy.add_output(format!("f{i}"), s);
        }
        let t_light = sta(&light, &lib, 1.0);
        let t_heavy = sta(&heavy, &lib, 1.0);
        assert!(t_heavy.arrivals[0] > t_light.arrivals[0]);
    }

    #[test]
    fn target_shifts_slack() {
        let lib = Library::asap7_like();
        let nl = inv_chain(&lib, 2);
        let base = sta(&nl, &lib, 1.0);
        let relaxed = sta_with_target(&nl, &lib, 1.0, Some(base.delay + 10.0));
        for (s1, s2) in base.slacks.iter().zip(&relaxed.slacks) {
            assert!((s2 - s1 - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_netlist_zero_delay() {
        let lib = Library::asap7_like();
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        nl.add_output("f", a);
        let t = sta(&nl, &lib, 1.0);
        assert_eq!(t.delay, 0.0);
        assert!(t.critical.is_empty());
    }
}
