//! Per-operator cost derivation: the cheapest way a [`Library`] can
//! realise each operator of the extraction language (`And`, `Or`,
//! `Not`), expressed as area and intrinsic delay.
//!
//! This is the bridge between the mapper's cell-level view and the
//! e-graph's node-level view: `esyn-objective`'s `techmap` objective
//! charges each e-node what the mapper would actually pay for it, so
//! extraction minimises a technology-aware proxy instead of a bare
//! gate count.
//!
//! The derivation considers, per operator function `f`:
//!
//! * every direct match `cell(leaves…) = f` from the NPN table, paying
//!   one inverter per negated input pin;
//! * every complement match `cell(leaves…) = ¬f`, paying the negated
//!   input pins plus one output inverter.
//!
//! Area is the cell area plus one minimum-drive inverter per inversion;
//! delay is the worst input-to-output intrinsic path through the chain
//! (input inverter → cell → output inverter). The cheapest realisation
//! is selected by area, tie-broken by delay, and the search order is
//! the deterministic match-table order, so the result is a pure
//! function of the library.

use crate::library::Library;

/// Cost of the cheapest library realisation of one Boolean operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    /// Total cell area (µm²), including helper inverters.
    pub area: f64,
    /// Worst intrinsic delay (ps) along the realisation chain.
    pub delay: f64,
}

/// Cheapest realisation costs for the extraction language's operators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCosts {
    /// Two-input AND.
    pub and: OpCost,
    /// Two-input OR.
    pub or: OpCost,
    /// Inverter.
    pub not: OpCost,
}

impl Library {
    /// Derives the cheapest per-operator realisation costs.
    ///
    /// # Panics
    ///
    /// Panics if the library cannot realise a two-input AND or OR in
    /// either polarity ([`Library::new`] already guarantees the
    /// inverter).
    pub fn op_costs(&self) -> OpCosts {
        OpCosts {
            and: self.cheapest_op("AND2", 2, 0b1000),
            or: self.cheapest_op("OR2", 2, 0b1110),
            not: self.cheapest_op("NOT", 1, 0b01),
        }
    }

    /// Cheapest realisation of the `num_vars`-input function `tt`
    /// (area-first, delay tie-break, deterministic match order).
    fn cheapest_op(&self, what: &str, num_vars: usize, tt: u16) -> OpCost {
        let inv = &self.cells()[self.inverter()];
        let mask = ((1u32 << (1 << num_vars)) - 1) as u16;
        let mut best: Option<OpCost> = None;
        // (candidate function, extra output inverters)
        for (f, out_invs) in [(tt, 0u32), ((!tt) & mask, 1)] {
            for m in self.matches(num_vars, f) {
                let cell = &self.cells()[m.cell];
                let in_invs = u32::from(m.input_neg.count_ones());
                let area = cell.area + f64::from(in_invs + out_invs) * inv.area;
                let mut delay = cell.intrinsic;
                if in_invs > 0 {
                    delay += inv.intrinsic;
                }
                delay += f64::from(out_invs) * inv.intrinsic;
                let cand = OpCost { area, delay };
                let better = match best {
                    None => true,
                    Some(b) => cand.area < b.area || (cand.area == b.area && cand.delay < b.delay),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        best.unwrap_or_else(|| panic!("library cannot realise {what}"))
    }
}

#[cfg(test)]
mod tests {
    use crate::Library;

    #[test]
    fn asap7_prefers_direct_and2_over_nand_plus_inv() {
        let costs = Library::asap7_like().op_costs();
        // AND2_x1 (1.40) beats NAND2_x1 + INV_x1 (0.94 + 0.70).
        assert_eq!(costs.and.area, 1.40);
        assert_eq!(costs.or.area, 1.40);
        assert_eq!(costs.not.area, 0.70);
        for op in [costs.and, costs.or, costs.not] {
            assert!(op.area > 0.0 && op.delay > 0.0);
        }
    }

    #[test]
    fn nand_inv_realises_and_via_complement_and_or_via_input_negation() {
        let lib = Library::nand_inv();
        let costs = lib.op_costs();
        let (nand, inv) = (0.94, 0.70);
        // AND = NAND + output inverter.
        assert!((costs.and.area - (nand + inv)).abs() < 1e-12);
        // OR = NAND(¬a, ¬b): two input inverters.
        assert!((costs.or.area - (nand + 2.0 * inv)).abs() < 1e-12);
        assert!((costs.not.area - inv).abs() < 1e-12);
        // Chains through inverters are slower than the bare cell.
        assert!(costs.and.delay > costs.not.delay);
    }

    #[test]
    fn op_costs_are_a_pure_function_of_the_library() {
        let a = Library::asap7_like().op_costs();
        let b = Library::asap7_like().op_costs();
        assert_eq!(a, b);
    }
}
