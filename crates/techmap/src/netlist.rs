//! Mapped gate-level netlists.

use crate::library::Library;

/// A signal in a mapped netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Constant false / true.
    Const(bool),
    /// Primary input by index.
    Pi(u32),
    /// Output of gate `GateId`.
    Gate(u32),
}

/// One instantiated standard cell.
#[derive(Clone, Debug)]
pub struct Gate {
    /// Index into [`Library::cells`].
    pub cell: usize,
    /// Input signals, one per cell pin.
    pub inputs: Vec<Signal>,
}

/// A gate-level netlist over a [`Library`].
///
/// Gates are stored in topological order (inputs of gate `i` only refer to
/// gates `< i`), which every analysis in this crate relies on.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    input_names: Vec<String>,
    outputs: Vec<(String, Signal)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a primary input; returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        self.input_names.push(name.into());
        Signal::Pi(self.input_names.len() as u32 - 1)
    }

    /// Adds a gate; inputs must refer to existing gates/PIs.
    ///
    /// # Panics
    ///
    /// Panics if an input refers to a gate that does not exist yet
    /// (topological order violation).
    pub fn add_gate(&mut self, cell: usize, inputs: Vec<Signal>) -> Signal {
        for s in &inputs {
            if let Signal::Gate(g) = s {
                assert!((*g as usize) < self.gates.len(), "forward gate reference");
            }
        }
        self.gates.push(Gate { cell, inputs });
        Signal::Gate(self.gates.len() as u32 - 1)
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: Signal) {
        self.outputs.push((name.into(), signal));
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Mutable gate access (used by sizing to swap drive variants).
    pub(crate) fn gates_mut(&mut self) -> &mut [Gate] {
        &mut self.gates
    }

    /// Primary-input names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total cell area.
    pub fn area(&self, lib: &Library) -> f64 {
        self.gates.iter().map(|g| lib.cells()[g.cell].area).sum()
    }

    /// Logic depth in gates.
    pub fn levels(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let m = g
                .inputs
                .iter()
                .filter_map(|s| match s {
                    Signal::Gate(j) => Some(level[*j as usize]),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            level[i] = m + 1;
        }
        self.outputs
            .iter()
            .filter_map(|(_, s)| match s {
                Signal::Gate(j) => Some(level[*j as usize]),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Bit-parallel simulation: 64 patterns per word, one stimulus word per
    /// input, one response word per output.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one word per input is supplied.
    pub fn simulate(&self, lib: &Library, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.input_names.len());
        let mut vals = vec![0u64; self.gates.len()];
        let read = |vals: &[u64], s: &Signal| -> u64 {
            match s {
                Signal::Const(false) => 0,
                Signal::Const(true) => u64::MAX,
                Signal::Pi(i) => pi_words[*i as usize],
                Signal::Gate(g) => vals[*g as usize],
            }
        };
        for (i, g) in self.gates.iter().enumerate() {
            let cell = &lib.cells()[g.cell];
            let ins: Vec<u64> = g.inputs.iter().map(|s| read(&vals, s)).collect();
            let mut out = 0u64;
            for bit in 0..64 {
                let mut pins = 0u16;
                for (p, w) in ins.iter().enumerate() {
                    pins |= (((w >> bit) & 1) as u16) << p;
                }
                if cell.eval(pins) {
                    out |= 1 << bit;
                }
            }
            vals[i] = out;
        }
        self.outputs.iter().map(|(_, s)| read(&vals, s)).collect()
    }

    /// Per-gate output load: sum of the input capacitance of every sink
    /// pin, plus `po_cap` for each primary-output connection.
    pub fn loads(&self, lib: &Library, po_cap: f64) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.gates.len()];
        for g in &self.gates {
            let cap = lib.cells()[g.cell].input_cap;
            for s in &g.inputs {
                if let Signal::Gate(j) = s {
                    loads[*j as usize] += cap;
                }
            }
        }
        for (_, s) in &self.outputs {
            if let Signal::Gate(j) = s {
                loads[*j as usize] += po_cap;
            }
        }
        loads
    }

    /// Counts gates per cell family, for reports.
    pub fn family_histogram(&self, lib: &Library) -> Vec<(String, usize)> {
        let mut hist: Vec<(String, usize)> = Vec::new();
        for g in &self.gates {
            let fam = lib.cells()[g.cell].family.clone();
            match hist.iter_mut().find(|(f, _)| *f == fam) {
                Some((_, n)) => *n += 1,
                None => hist.push((fam, 1)),
            }
        }
        hist.sort();
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;

    fn cell_index(lib: &Library, name: &str) -> usize {
        lib.cells().iter().position(|c| c.name == name).unwrap()
    }

    #[test]
    fn build_and_simulate_nand_inv() {
        let lib = Library::nand_inv();
        let nand = cell_index(&lib, "NAND2_x1");
        let inv = cell_index(&lib, "INV_x1");
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_gate(nand, vec![a, b]);
        let f = nl.add_gate(inv, vec![n1]); // AND
        nl.add_output("f", f);
        let res = nl.simulate(&lib, &[0b1100, 0b1010]);
        assert_eq!(res[0] & 0xF, 0b1000);
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.levels(), 2);
    }

    #[test]
    fn const_signals_simulate() {
        let lib = Library::nand_inv();
        let mut nl = Netlist::new();
        let _a = nl.add_input("a");
        nl.add_output("zero", Signal::Const(false));
        nl.add_output("one", Signal::Const(true));
        let res = nl.simulate(&lib, &[0xFFFF]);
        assert_eq!(res[0], 0);
        assert_eq!(res[1], u64::MAX);
    }

    #[test]
    fn loads_accumulate_sink_caps() {
        let lib = Library::nand_inv();
        let nand = cell_index(&lib, "NAND2_x1");
        let inv = cell_index(&lib, "INV_x1");
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_gate(nand, vec![a, b]);
        let i1 = nl.add_gate(inv, vec![n1]);
        let _i2 = nl.add_gate(inv, vec![n1]);
        nl.add_output("f", i1);
        nl.add_output("g", n1);
        let loads = nl.loads(&lib, 1.0);
        // n1 drives two INV pins (0.85 each) and one PO (1.0)
        assert!((loads[0] - (0.85 * 2.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "forward gate reference")]
    fn rejects_forward_reference() {
        let lib = Library::nand_inv();
        let inv = cell_index(&lib, "INV_x1");
        let mut nl = Netlist::new();
        let _ = nl.add_input("a");
        let _ = nl.add_gate(inv, vec![Signal::Gate(5)]);
    }

    #[test]
    fn area_and_histogram() {
        let lib = Library::nand_inv();
        let nand = cell_index(&lib, "NAND2_x1");
        let inv = cell_index(&lib, "INV_x1");
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_gate(nand, vec![a, b]);
        let f = nl.add_gate(inv, vec![n1]);
        nl.add_output("f", f);
        assert!((nl.area(&lib) - (0.94 + 0.7)).abs() < 1e-9);
        assert_eq!(
            nl.family_histogram(&lib),
            vec![("INV".to_owned(), 1), ("NAND2".to_owned(), 1)]
        );
    }
}
