//! Gate-level structural Verilog writer for mapped netlists.

use crate::library::Library;
use crate::netlist::{Netlist, Signal};
use std::fmt::Write as _;

impl Netlist {
    /// Renders the netlist as a structural Verilog module instantiating
    /// library cells. Cell pins are named `A`, `B`, `C`, `D` (inputs, in
    /// pin order) and `Y` (output), the usual generic-liberty convention.
    pub fn to_verilog(&self, lib: &Library, module: &str) -> String {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        };
        let mut v = String::new();
        let _ = writeln!(v, "module {module} (");
        for name in self.input_names() {
            let _ = writeln!(v, "  input wire {},", sanitize(name));
        }
        for (i, (name, _)) in self.outputs().iter().enumerate() {
            let comma = if i + 1 == self.outputs().len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(v, "  output wire {}{comma}", sanitize(name));
        }
        let _ = writeln!(v, ");");

        let signal = |s: &Signal| -> String {
            match s {
                Signal::Const(false) => "1'b0".to_owned(),
                Signal::Const(true) => "1'b1".to_owned(),
                Signal::Pi(i) => sanitize(&self.input_names()[*i as usize]),
                Signal::Gate(g) => format!("n{g}"),
            }
        };

        for (g, gate) in self.gates().iter().enumerate() {
            let _ = writeln!(v, "  wire n{g};");
            let cell = &lib.cells()[gate.cell];
            let mut pins = String::new();
            for (p, s) in gate.inputs.iter().enumerate() {
                let pin_name = (b'A' + p as u8) as char;
                let _ = write!(pins, ".{pin_name}({}), ", signal(s));
            }
            let _ = writeln!(v, "  {} g{g} ({pins}.Y(n{g}));", cell.name);
        }
        for (name, s) in self.outputs() {
            let _ = writeln!(v, "  assign {} = {};", sanitize(name), signal(s));
        }
        let _ = writeln!(v, "endmodule");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::MapMode;
    use crate::mapper::map_aig;
    use esyn_aig::Aig;
    use esyn_eqn::parse_eqn;

    #[test]
    fn emits_instances_and_assigns() {
        let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + !c;\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let v = nl.to_verilog(&lib, "mapped");
        assert!(v.starts_with("module mapped ("));
        assert!(v.contains(".Y(n0)"), "{v}");
        assert!(v.contains("assign f = "), "{v}");
        assert!(v.trim_end().ends_with("endmodule"));
        // one instance per gate
        assert_eq!(v.matches(" g").count(), nl.num_gates());
    }

    #[test]
    fn constant_outputs_become_literals() {
        let net = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a * !a;\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let v = nl.to_verilog(&lib, "m");
        assert!(v.contains("assign f = 1'b0;"), "{v}");
    }

    #[test]
    fn bus_names_are_sanitized() {
        let net =
            parse_eqn("INORDER = x[0] x[1];\nOUTORDER = y[0];\ny[0] = x[0] * x[1];\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let v = nl.to_verilog(&lib, "m");
        assert!(v.contains("x_0_"));
        assert!(!v.contains("x[0]"));
    }
}
