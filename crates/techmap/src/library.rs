//! Standard-cell library with NPN-based Boolean matching tables.

use std::collections::HashMap;

/// A standard cell: a single-output combinational gate with up to four
/// inputs, a linear delay model `delay = intrinsic + resistance * load`,
/// and per-pin input capacitance.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Cell name, e.g. `NAND2_x2`.
    pub name: String,
    /// Gate family without the drive suffix, e.g. `NAND2`.
    pub family: String,
    /// Drive strength multiplier (1, 2, 4, 8).
    pub drive: u32,
    /// Number of input pins (1..=4).
    pub num_inputs: usize,
    /// Function truth table over `num_inputs` variables, in the low
    /// `2^num_inputs` bits (pin `i` = variable `i`).
    pub tt: u16,
    /// Cell area in µm².
    pub area: f64,
    /// Intrinsic delay in ps.
    pub intrinsic: f64,
    /// Output resistance in ps per unit load.
    pub resistance: f64,
    /// Input capacitance per pin, in load units.
    pub input_cap: f64,
}

impl Cell {
    /// Pin-to-output delay under `load`.
    pub fn delay(&self, load: f64) -> f64 {
        self.intrinsic + self.resistance * load
    }

    /// Evaluates the cell function for packed input bits (bit `i` = pin `i`).
    pub fn eval(&self, inputs: u16) -> bool {
        (self.tt >> inputs) & 1 == 1
    }
}

/// A match of a cut function against a library cell: connect cell pin `i`
/// to cut leaf `pin_to_leaf[i]`, complementing it when bit `i` of
/// `input_neg` is set; complement the output when `output_neg` is set.
#[derive(Clone, Copy, Debug)]
pub struct CellMatch {
    /// Index of the matched cell in [`Library::cells`].
    pub cell: usize,
    /// For each cell pin, the index of the cut leaf it connects to.
    pub pin_to_leaf: [u8; 4],
    /// Bitmask of complemented input pins.
    pub input_neg: u8,
    /// Whether the cell output must be complemented to realise the cut
    /// function (callers typically search both polarities instead of using
    /// matches with `output_neg` set).
    pub output_neg: bool,
}

/// A cell library with precomputed matching tables.
///
/// The matching table maps `(num_vars, truth_table)` to every way any
/// library cell can realise that function via input permutation and
/// negation (the NPN orbit, expanded).
#[derive(Clone, Debug)]
pub struct Library {
    cells: Vec<Cell>,
    matches: HashMap<(usize, u16), Vec<CellMatch>>,
    inv: usize,
    buf: usize,
}

impl Library {
    /// Builds a library from cell descriptions.
    ///
    /// # Panics
    ///
    /// Panics if no inverter (1-input cell computing NOT) is present, or a
    /// cell has more than 4 inputs.
    pub fn new(cells: Vec<Cell>) -> Self {
        let inv = cells
            .iter()
            .position(|c| c.num_inputs == 1 && c.tt & 0b11 == 0b01)
            .expect("library must contain an inverter");
        let buf = cells
            .iter()
            .position(|c| c.num_inputs == 1 && c.tt & 0b11 == 0b10)
            .unwrap_or(inv);
        let mut lib = Library {
            cells,
            matches: HashMap::new(),
            inv,
            buf,
        };
        lib.build_match_table();
        lib
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Index of the smallest inverter.
    pub fn inverter(&self) -> usize {
        self.inv
    }

    /// Index of the smallest buffer (falls back to the inverter if the
    /// library has no buffer).
    pub fn buffer(&self) -> usize {
        self.buf
    }

    /// All matches realising the function `tt` over `num_vars` cut leaves
    /// (only matches with `output_neg == false`; search the complement
    /// table for the other polarity).
    pub fn matches(&self, num_vars: usize, tt: u16) -> &[CellMatch] {
        self.matches
            .get(&(num_vars, tt))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Drive variants of the same family as `cell`, sorted by drive.
    pub fn drive_variants(&self, cell: usize) -> Vec<usize> {
        let family = &self.cells[cell].family;
        let mut v: Vec<usize> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| &c.family == family)
            .map(|(i, _)| i)
            .collect();
        v.sort_by_key(|&i| self.cells[i].drive);
        v
    }

    fn build_match_table(&mut self) {
        let mut table: HashMap<(usize, u16), Vec<CellMatch>> = HashMap::new();
        for (ci, cell) in self.cells.iter().enumerate() {
            // Only match minimum-drive cells; sizing swaps drives later.
            if cell.drive != 1 {
                continue;
            }
            let n = cell.num_inputs;
            assert!(n >= 1 && n <= 4, "cell {} has {} inputs", cell.name, n);
            let perms = permutations(n);
            for perm in &perms {
                for neg in 0..(1u8 << n) {
                    // realized(x_0..x_{n-1}) where cell pin i reads
                    // x_{perm[i]} ^ neg_i
                    let mut tt: u16 = 0;
                    for idx in 0..(1u16 << n) {
                        let mut pins: u16 = 0;
                        for (i, &p) in perm.iter().enumerate() {
                            let bit = ((idx >> p) & 1) ^ u16::from((neg >> i) & 1);
                            pins |= bit << i;
                        }
                        if cell.eval(pins) {
                            tt |= 1 << idx;
                        }
                    }
                    let mut pin_to_leaf = [0u8; 4];
                    for (i, &p) in perm.iter().enumerate() {
                        pin_to_leaf[i] = p as u8;
                    }
                    let mask = (1u32 << (1 << n)) - 1;
                    for (f, out_neg) in [(tt, false), ((!tt) & mask as u16, true)] {
                        let entry = table.entry((n, f)).or_default();
                        // Avoid exact duplicates (different perms of
                        // symmetric pins produce the same realization).
                        if !entry.iter().any(|m| {
                            m.cell == ci
                                && m.pin_to_leaf == pin_to_leaf
                                && m.input_neg == neg
                                && m.output_neg == out_neg
                        }) {
                            entry.push(CellMatch {
                                cell: ci,
                                pin_to_leaf,
                                input_neg: neg,
                                output_neg: out_neg,
                            });
                        }
                    }
                }
            }
        }
        // Keep only output_neg == false entries in the primary table; the
        // complement polarity is looked up by complementing the query.
        for v in table.values_mut() {
            v.retain(|m| !m.output_neg);
        }
        table.retain(|_, v| !v.is_empty());
        self.matches = table;
    }

    /// The synthetic 7-nm-flavoured library used throughout the
    /// reproduction (see crate docs for the modelling rationale).
    pub fn asap7_like() -> Self {
        let mut cells = Vec::new();
        // (family, n, tt over n vars, area, intrinsic ps, resistance, cap)
        let defs: &[(&str, usize, u16, f64, f64, f64, f64)] = &[
            ("INV", 1, 0b01, 0.70, 3.8, 1.10, 0.85),
            ("BUF", 1, 0b10, 1.10, 7.4, 0.95, 0.80),
            ("NAND2", 2, 0b0111, 0.94, 5.6, 1.30, 0.92),
            ("NOR2", 2, 0b0001, 0.94, 6.4, 1.55, 0.92),
            ("AND2", 2, 0b1000, 1.40, 8.9, 1.15, 0.88),
            ("OR2", 2, 0b1110, 1.40, 9.6, 1.20, 0.88),
            ("NAND3", 3, 0b0111_1111, 1.30, 7.1, 1.45, 0.95),
            ("NOR3", 3, 0b0000_0001, 1.30, 8.6, 1.80, 0.95),
            ("AND3", 3, 0b1000_0000, 1.75, 10.2, 1.25, 0.90),
            ("OR3", 3, 0b1111_1110, 1.75, 11.3, 1.30, 0.90),
            ("NAND4", 4, 0x7FFF, 1.68, 8.8, 1.60, 1.00),
            ("NOR4", 4, 0x0001, 1.68, 10.9, 2.05, 1.00),
            // AOI21: !((a & b) | c) ; pins a=0,b=1,c=2
            ("AOI21", 3, 0b0001_0101, 1.26, 7.7, 1.50, 0.94),
            // OAI21: !((a | b) & c)
            ("OAI21", 3, 0b0001_0111, 1.26, 7.9, 1.50, 0.94),
            // AOI22: !((a&b) | (c&d))
            ("AOI22", 4, 0x0777, 1.62, 9.1, 1.65, 0.97),
            // OAI22: !((a|b) & (c|d))
            ("OAI22", 4, 0x1117, 1.62, 9.3, 1.65, 0.97),
            ("XOR2", 2, 0b0110, 2.34, 12.7, 1.40, 1.10),
            ("XNOR2", 2, 0b1001, 2.34, 12.9, 1.40, 1.10),
            // MUX2: s ? b : a ; pins a=0, b=1, s=2
            ("MUX2", 3, 0b1011_0010, 2.20, 11.8, 1.35, 1.05),
            // MAJ3: at least two of three
            ("MAJ3", 3, 0b1110_1000, 2.48, 13.1, 1.45, 1.08),
        ];
        for &(family, n, tt, area, intrinsic, res, cap) in defs {
            let drives: &[u32] = if family == "INV" || family == "BUF" {
                &[1, 2, 4, 8]
            } else {
                &[1, 2, 4]
            };
            for &d in drives {
                let s = d as f64;
                cells.push(Cell {
                    name: format!("{family}_x{d}"),
                    family: family.to_owned(),
                    drive: d,
                    num_inputs: n,
                    tt,
                    // Area grows sub-linearly with drive; resistance drops
                    // inversely; pin capacitance grows with transistor width.
                    area: area * (0.55 + 0.45 * s),
                    intrinsic: intrinsic * (1.0 + 0.04 * (s - 1.0)),
                    resistance: res / s,
                    input_cap: cap * (0.70 + 0.30 * s),
                });
            }
        }
        Library::new(cells)
    }

    /// A minimal NAND2 + INV library, useful in tests: every function is
    /// still mappable through 2-input cuts.
    pub fn nand_inv() -> Self {
        Library::new(vec![
            Cell {
                name: "INV_x1".into(),
                family: "INV".into(),
                drive: 1,
                num_inputs: 1,
                tt: 0b01,
                area: 0.7,
                intrinsic: 3.8,
                resistance: 1.1,
                input_cap: 0.85,
            },
            Cell {
                name: "NAND2_x1".into(),
                family: "NAND2".into(),
                drive: 1,
                num_inputs: 2,
                tt: 0b0111,
                area: 0.94,
                intrinsic: 5.6,
                resistance: 1.3,
                input_cap: 0.92,
            },
        ])
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    permute(&mut items, 0, &mut out);
    out
}

fn permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, out);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asap7_like_has_all_drives() {
        let lib = Library::asap7_like();
        let invs: Vec<_> = lib.cells().iter().filter(|c| c.family == "INV").collect();
        assert_eq!(invs.len(), 4);
        let nands: Vec<_> = lib.cells().iter().filter(|c| c.family == "NAND2").collect();
        assert_eq!(nands.len(), 3);
    }

    #[test]
    fn higher_drive_is_bigger_and_stronger() {
        let lib = Library::asap7_like();
        let nand1 = lib.cells().iter().find(|c| c.name == "NAND2_x1").unwrap();
        let nand4 = lib.cells().iter().find(|c| c.name == "NAND2_x4").unwrap();
        assert!(nand4.area > nand1.area);
        assert!(nand4.resistance < nand1.resistance);
        assert!(nand4.input_cap > nand1.input_cap);
        // at high load the x4 must be faster
        assert!(nand4.delay(20.0) < nand1.delay(20.0));
    }

    #[test]
    fn matches_and_function() {
        let lib = Library::asap7_like();
        // AND of two vars: tt = 0b1000 over 2 vars
        let ms = lib.matches(2, 0b1000);
        assert!(!ms.is_empty());
        // every match must realise the function
        for m in ms {
            let cell = &lib.cells()[m.cell];
            for idx in 0..4u16 {
                let mut pins = 0u16;
                for pin in 0..cell.num_inputs {
                    let leaf = m.pin_to_leaf[pin] as usize;
                    let bit = ((idx >> leaf) & 1) ^ u16::from((m.input_neg >> pin) & 1);
                    pins |= bit << pin;
                }
                let val = cell.eval(pins);
                let expect = (idx & 0b11) == 0b11;
                assert_eq!(val, expect, "cell {} idx {idx}", cell.name);
            }
        }
    }

    #[test]
    fn xor_matches_xor_cell() {
        let lib = Library::asap7_like();
        let ms = lib.matches(2, 0b0110);
        assert!(
            ms.iter().any(|m| lib.cells()[m.cell].family == "XOR2"),
            "xor function should match the XOR2 cell"
        );
    }

    #[test]
    fn aoi21_matches_its_function() {
        let lib = Library::asap7_like();
        // !((x0 & x1) | x2) over 3 vars
        let mut tt = 0u16;
        for idx in 0..8u16 {
            let a = idx & 1 == 1;
            let b = (idx >> 1) & 1 == 1;
            let c = (idx >> 2) & 1 == 1;
            if !((a && b) || c) {
                tt |= 1 << idx;
            }
        }
        let ms = lib.matches(3, tt);
        assert!(ms.iter().any(|m| lib.cells()[m.cell].family == "AOI21"));
    }

    #[test]
    fn nand_inv_library_is_complete_for_and2() {
        let lib = Library::nand_inv();
        // AND needs output negation of NAND: primary table holds NAND for
        // the complement polarity.
        assert!(!lib.matches(2, 0b0111).is_empty(), "NAND function");
        assert!(lib.matches(2, 0b1000).is_empty(), "AND needs the INV path");
    }

    #[test]
    fn inverter_and_buffer_indices() {
        let lib = Library::asap7_like();
        assert_eq!(lib.cells()[lib.inverter()].family, "INV");
        assert_eq!(lib.cells()[lib.buffer()].family, "BUF");
        let lib2 = Library::nand_inv();
        assert_eq!(lib2.cells()[lib2.buffer()].family, "INV"); // fallback
    }

    #[test]
    fn drive_variants_sorted() {
        let lib = Library::asap7_like();
        let nand1 = lib
            .cells()
            .iter()
            .position(|c| c.name == "NAND2_x2")
            .unwrap();
        let variants = lib.drive_variants(nand1);
        let drives: Vec<u32> = variants.iter().map(|&i| lib.cells()[i].drive).collect();
        assert_eq!(drives, vec![1, 2, 4]);
    }
}
