//! Technology mapping, static timing analysis and gate sizing.
//!
//! This crate is the workspace's substitute for the ABC backend the paper
//! uses to measure post-mapping QoR:
//! `strash; dch -f; map; topo; upsize; dnsize; stime` (§4.2) — cut-based
//! structural mapping onto a standard-cell library, followed by greedy
//! drive-strength assignment and a timing/area report.
//!
//! The cell [`Library`] is a synthetic 7-nm-flavoured library
//! ([`Library::asap7_like`]): the real ASAP7 PDK is not redistributable,
//! so cell areas and delays here follow its qualitative shape (see
//! DESIGN.md, substitution notes) — INV/NAND cheapest, XOR/MUX expensive,
//! drive strengths x1/x2/x4 (x8 for inverters/buffers) with load-dependent
//! linear delay. Every experiment in the paper is a *relative* comparison
//! evaluated through one fixed backend, which this crate provides.
//!
//! # Example
//!
//! ```
//! use esyn_aig::Aig;
//! use esyn_eqn::parse_eqn;
//! use esyn_techmap::{map_and_size, Library, MapMode};
//!
//! let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = a*b + !c;\n")?;
//! let aig = Aig::from_network(&net);
//! let lib = Library::asap7_like();
//! let (netlist, qor) = map_and_size(&aig, &lib, MapMode::Delay, None);
//! assert!(qor.area > 0.0 && qor.delay > 0.0);
//! assert_eq!(netlist.outputs().len(), 1);
//! # Ok::<(), esyn_eqn::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod buffer;
mod flow;
mod library;
mod mapper;
mod netlist;
mod opcost;
mod sizing;
mod sta;
mod verilog;

pub use buffer::{buffer, BufferConfig};
pub use flow::{map_and_size, map_buffer_size, map_choices_and_size, MapMode, QorReport};
pub use library::{Cell, Library};
pub use mapper::{map_aig, map_choices};
pub use netlist::{Gate, Netlist, Signal};
pub use opcost::{OpCost, OpCosts};
pub use sizing::{dnsize, upsize};
pub use sta::{sta, sta_with_target, TimingReport, PO_CAP};
