//! Greedy gate sizing: `upsize` speeds up the critical path, `dnsize`
//! recovers area off the critical path — the ABC `upsize; dnsize` steps of
//! the paper's evaluation command.

use crate::library::Library;
use crate::netlist::Netlist;
use crate::sta::{sta, sta_with_target};

/// Repeatedly upsizes the most beneficial critical-path gate until the
/// `target` delay is met (if given) or no single swap improves the worst
/// delay. Returns the final delay.
pub fn upsize(
    nl: &mut Netlist,
    lib: &Library,
    po_cap: f64,
    target: Option<f64>,
    max_iters: usize,
) -> f64 {
    let mut current = sta(nl, lib, po_cap).delay;
    for _ in 0..max_iters {
        if target.is_some_and(|t| current <= t) {
            break;
        }
        let report = sta(nl, lib, po_cap);
        let mut best_swap: Option<(u32, usize, f64)> = None; // (gate, cell, delay)
        for &g in &report.critical {
            let cur_cell = nl.gates()[g as usize].cell;
            for &variant in &lib.drive_variants(cur_cell) {
                if lib.cells()[variant].drive <= lib.cells()[cur_cell].drive {
                    continue;
                }
                nl.gates_mut()[g as usize].cell = variant;
                let d = sta(nl, lib, po_cap).delay;
                nl.gates_mut()[g as usize].cell = cur_cell;
                if d < current - 1e-9 && best_swap.is_none_or(|(_, _, bd)| d < bd) {
                    best_swap = Some((g, variant, d));
                }
            }
        }
        match best_swap {
            Some((g, variant, d)) => {
                nl.gates_mut()[g as usize].cell = variant;
                current = d;
            }
            None => break,
        }
    }
    current
}

/// Downsizes gates wherever doing so does not push the circuit delay past
/// `limit` (defaults to the current delay). Returns the final area.
pub fn dnsize(nl: &mut Netlist, lib: &Library, po_cap: f64, limit: Option<f64>) -> f64 {
    let base = sta(nl, lib, po_cap).delay;
    let limit = limit.unwrap_or(base).max(base);
    // Visit gates in decreasing area-saving potential; a single pass per
    // drive step, repeated until stable.
    let mut changed = true;
    while changed {
        changed = false;
        for g in 0..nl.num_gates() {
            let cur_cell = nl.gates()[g].cell;
            let variants = lib.drive_variants(cur_cell);
            // next smaller drive, if any
            let smaller: Vec<usize> = variants
                .iter()
                .copied()
                .filter(|&v| lib.cells()[v].drive < lib.cells()[cur_cell].drive)
                .collect();
            let Some(&next) = smaller.last() else {
                continue;
            };
            nl.gates_mut()[g].cell = next;
            let t = sta_with_target(nl, lib, po_cap, Some(limit));
            if t.delay <= limit + 1e-9 {
                changed = true; // keep the downsize
            } else {
                nl.gates_mut()[g].cell = cur_cell;
            }
        }
    }
    nl.area(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::MapMode;
    use crate::library::Library;
    use crate::mapper::map_aig;
    use esyn_aig::Aig;
    use esyn_eqn::parse_eqn;

    fn wide_fanout_circuit() -> Aig {
        // one signal driving many sinks: upsizing the driver should pay off
        let mut text = String::from("INORDER = a b c0 c1 c2 c3 c4 c5;\nOUTORDER =");
        for i in 0..6 {
            text.push_str(&format!(" f{i}"));
        }
        text.push_str(";\n");
        for i in 0..6 {
            text.push_str(&format!("f{i} = (a*b) * c{i};\n"));
        }
        Aig::from_network(&parse_eqn(&text).unwrap())
    }

    #[test]
    fn upsize_reduces_delay_on_loaded_paths() {
        let lib = Library::asap7_like();
        let aig = wide_fanout_circuit();
        let mut nl = map_aig(&aig, &lib, MapMode::Area);
        let before = sta(&nl, &lib, 1.2).delay;
        let after = upsize(&mut nl, &lib, 1.2, None, 50);
        assert!(after <= before);
        assert!(
            after < before - 1e-9,
            "upsizing must help here: {before} -> {after}"
        );
    }

    #[test]
    fn upsize_respects_target_stop() {
        let lib = Library::asap7_like();
        let aig = wide_fanout_circuit();
        let mut nl = map_aig(&aig, &lib, MapMode::Area);
        let before = sta(&nl, &lib, 1.2).delay;
        // target barely below current delay: at most a couple of swaps
        let after = upsize(&mut nl, &lib, 1.2, Some(before * 0.98), 50);
        assert!(after <= before);
    }

    #[test]
    fn dnsize_recovers_area_without_hurting_delay() {
        let lib = Library::asap7_like();
        let aig = wide_fanout_circuit();
        let mut nl = map_aig(&aig, &lib, MapMode::Delay);
        let _ = upsize(&mut nl, &lib, 1.2, None, 50);
        let delay_before = sta(&nl, &lib, 1.2).delay;
        let area_before = nl.area(&lib);
        let area_after = dnsize(&mut nl, &lib, 1.2, None);
        let delay_after = sta(&nl, &lib, 1.2).delay;
        assert!(area_after <= area_before + 1e-9);
        assert!(delay_after <= delay_before + 1e-9);
    }

    #[test]
    fn dnsize_with_relaxed_limit_saves_more() {
        let lib = Library::asap7_like();
        let aig = wide_fanout_circuit();
        let mut nl1 = map_aig(&aig, &lib, MapMode::Delay);
        let _ = upsize(&mut nl1, &lib, 1.2, None, 50);
        let mut nl2 = nl1.clone();
        let tight = dnsize(&mut nl1, &lib, 1.2, None);
        let base = sta(&nl2, &lib, 1.2).delay;
        let relaxed = dnsize(&mut nl2, &lib, 1.2, Some(base * 2.0));
        assert!(relaxed <= tight + 1e-9);
    }

    #[test]
    fn sizing_preserves_function() {
        let lib = Library::asap7_like();
        let aig = wide_fanout_circuit();
        let mut nl = map_aig(&aig, &lib, MapMode::Delay);
        let words: Vec<u64> = (0..8u64)
            .map(|i| i.wrapping_mul(0x0123_4567_89AB))
            .collect();
        let before = nl.simulate(&lib, &words);
        let _ = upsize(&mut nl, &lib, 1.2, None, 30);
        let _ = dnsize(&mut nl, &lib, 1.2, None);
        let after = nl.simulate(&lib, &words);
        assert_eq!(before, after, "sizing must only swap drive strengths");
    }
}
