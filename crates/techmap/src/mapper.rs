//! Cut-based structural technology mapping.
//!
//! Classic two-phase mapping: every AND node is considered in both output
//! polarities; 4-feasible cuts are matched against the library via the
//! precomputed permutation/negation tables; the cover is chosen by dynamic
//! programming on arrival time (delay mode) or area flow (area mode), with
//! inverters bridging phases where needed.

use crate::flow::MapMode;
use crate::library::{CellMatch, Library};
use crate::netlist::{Netlist, Signal};
use esyn_aig::{Aig, ChoiceAig, Cut, CutConfig};
use esyn_eqn::TruthTable;
use std::collections::HashMap;

/// Assumed output load during matching (final timing uses real loads).
const EST_LOAD: f64 = 2.0;

#[derive(Clone, Debug)]
enum Choice {
    /// Constant output (constant node or constant PO).
    Const(bool),
    /// Directly a primary input (phase 0 of a PI node).
    Pi(u32),
    /// Inverter over the opposite phase of the same node.
    FromInv,
    /// This phase is exactly some cut leaf's phase (wire).
    Alias { leaf: u32, leaf_phase: bool },
    /// A library cell over cut leaves.
    Cell {
        m: CellMatch,
        /// For each used cell pin: (leaf node, leaf phase).
        pins: Vec<(u32, bool)>,
    },
}

#[derive(Clone, Debug)]
struct Best {
    arrival: f64,
    area_flow: f64,
    choice: Choice,
}

/// Maps an AIG onto `lib`, returning a gate-level netlist.
///
/// # Panics
///
/// Panics if the library cannot realise a 2-input AND in either polarity
/// (a [`Library`] always can, since it is required to contain an inverter
/// and is checked to contain a 2-input cell at construction).
pub fn map_aig(aig: &Aig, lib: &Library, mode: MapMode) -> Netlist {
    let cuts = aig.k_cuts(&CutConfig { k: 4, max_cuts: 8 });
    let refs = fanout_estimates(aig);
    let live = live_mask(aig);
    let inv = &lib.cells()[lib.inverter()];
    let inv_delay = inv.delay(EST_LOAD);

    let mut best: Vec<[Option<Best>; 2]> = vec![[None, None]; aig.len()];

    // Constant node.
    best[0] = [
        Some(Best {
            arrival: 0.0,
            area_flow: 0.0,
            choice: Choice::Const(false),
        }),
        Some(Best {
            arrival: 0.0,
            area_flow: 0.0,
            choice: Choice::Const(true),
        }),
    ];

    for n in 1..aig.len() as u32 {
        if aig.is_pi(n) {
            let pi_idx = n - 1;
            best[n as usize][0] = Some(Best {
                arrival: 0.0,
                area_flow: 0.0,
                choice: Choice::Pi(pi_idx),
            });
            best[n as usize][1] = Some(Best {
                arrival: inv_delay,
                area_flow: inv.area,
                choice: Choice::FromInv,
            });
            continue;
        }
        debug_assert!(aig.is_and(n));
        if !live[n as usize] {
            continue; // dead logic is never realized
        }
        let node_refs = refs[n as usize].max(1) as f64;
        map_and_node(n, &cuts[n as usize], &mut best, node_refs, lib, mode);
    }

    // --- Cover extraction. ---
    let mut nl = Netlist::new();
    for name in aig.pi_names() {
        nl.add_input(name.clone());
    }
    let mut memo: HashMap<(u32, bool), Signal> = HashMap::new();
    let mut po_signals = Vec::new();
    for (name, lit) in aig.outputs() {
        let s = realize(lib, &best, lit.node(), lit.is_compl(), &mut memo, &mut nl);
        po_signals.push((name.clone(), s));
    }
    for (name, s) in po_signals {
        nl.add_output(name, s);
    }
    nl
}

/// Runs the cut DP for one AND node (or choice class) `n`: tries every
/// non-trivial cut in both phases, then relaxes through inverters.
///
/// # Panics
///
/// Panics when neither phase is mappable (library lacks 2-input coverage).
fn map_and_node(
    n: u32,
    node_cuts: &[Cut],
    best: &mut [[Option<Best>; 2]],
    node_refs: f64,
    lib: &Library,
    mode: MapMode,
) {
    let inv = &lib.cells()[lib.inverter()];
    let inv_delay = inv.delay(EST_LOAD);
    for phase in 0..2usize {
        for cut in node_cuts {
            if cut.is_unit(n) {
                continue;
            }
            let tt = if phase == 1 {
                cut.tt.not()
            } else {
                cut.tt.clone()
            };
            let (support, reduced) = support_reduce(&tt);
            match support.len() {
                0 => {
                    // A live AND is never constant; skip defensively.
                    continue;
                }
                1 => {
                    let leaf = cut.leaves[support[0]];
                    let leaf_phase = reduced == 0b01; // f = !x
                    let Some(lb) = best[leaf as usize][leaf_phase as usize].as_ref() else {
                        continue;
                    };
                    let cand = Best {
                        arrival: lb.arrival,
                        area_flow: lb.area_flow,
                        choice: Choice::Alias { leaf, leaf_phase },
                    };
                    consider(&mut best[n as usize], phase, cand, mode);
                }
                m => {
                    for mi in lib.matches(m, reduced) {
                        let cell = &lib.cells()[mi.cell];
                        let mut arrival = 0.0f64;
                        let mut flow = cell.area;
                        let mut pins = Vec::with_capacity(cell.num_inputs);
                        let mut feasible = true;
                        for pin in 0..cell.num_inputs {
                            let leaf = cut.leaves[support[mi.pin_to_leaf[pin] as usize]];
                            let pin_phase = (mi.input_neg >> pin) & 1 == 1;
                            let Some(lb) = best[leaf as usize][pin_phase as usize].as_ref() else {
                                feasible = false;
                                break;
                            };
                            arrival = arrival.max(lb.arrival);
                            flow += lb.area_flow;
                            pins.push((leaf, pin_phase));
                        }
                        if !feasible {
                            continue;
                        }
                        let cand = Best {
                            arrival: arrival + cell.delay(EST_LOAD),
                            area_flow: flow / node_refs,
                            choice: Choice::Cell { m: *mi, pins },
                        };
                        consider(&mut best[n as usize], phase, cand, mode);
                    }
                }
            }
        }
    }
    // Inverter relaxation between the two phases (both directions).
    for phase in 0..2usize {
        let Some(other) = best[n as usize][1 - phase].as_ref() else {
            continue;
        };
        let cand = Best {
            arrival: other.arrival + inv_delay,
            area_flow: other.area_flow + inv.area / node_refs,
            choice: Choice::FromInv,
        };
        consider(&mut best[n as usize], phase, cand, mode);
    }
    assert!(
        best[n as usize][0].is_some() && best[n as usize][1].is_some(),
        "node {n} unmappable — library lacks 2-input coverage"
    );
}

/// Maps a [`ChoiceAig`] onto `lib` — choice-aware technology mapping, the
/// workspace's `&dch -f; &nf` substitute.
///
/// The cut DP runs over choice *classes* in topological order; every
/// class's cut set is the union of its members' cuts
/// ([`ChoiceAig::class_cuts`]), so the mapper freely mixes structures from
/// different synthesis variants per node. The cover realizes only what
/// the chosen cuts reference.
///
/// # Panics
///
/// Panics if the library cannot realise a 2-input AND in either polarity
/// (a [`Library`] always can, by construction).
pub fn map_choices(choice: &ChoiceAig, lib: &Library, mode: MapMode) -> Netlist {
    let aig = choice.aig();
    let cuts = choice.class_cuts(&CutConfig { k: 4, max_cuts: 8 });

    // Reference estimates per class, counted over the representatives'
    // structure only (one member per class). Counting every member would
    // inflate the estimates and make area flow under-charge shared logic
    // — measured as a 7-14 % area regression in the `ablation_choices`
    // bench before this was fixed.
    let mut refs = vec![0u32; aig.len()];
    for &r in choice.class_order() {
        if !aig.is_and(r) {
            continue;
        }
        let (a, b) = aig.fanins(r);
        refs[choice.repr_lit(a).node() as usize] += 1;
        refs[choice.repr_lit(b).node() as usize] += 1;
    }
    for (_, l) in aig.outputs() {
        refs[choice.repr_lit(*l).node() as usize] += 1;
    }

    // Two DP passes: the second recomputes reference estimates from the
    // cover the first pass actually chose (choices from other variants
    // shift the realized sharing away from the representative-structure
    // estimate; one refinement pass is ABC's area-recovery idea in
    // miniature and removes most of the area drift).
    let mut best = run_class_dp(choice, &cuts, &refs, lib, mode);
    let cover_refs = cover_reference_counts(choice, &best);
    best = run_class_dp(choice, &cuts, &cover_refs, lib, mode);

    // --- Cover extraction over classes. ---
    let mut nl = Netlist::new();
    for name in aig.pi_names() {
        nl.add_input(name.clone());
    }
    let mut memo: HashMap<(u32, bool), Signal> = HashMap::new();
    let mut po_signals = Vec::new();
    for (name, lit) in choice.output_reprs() {
        let s = realize(lib, &best, lit.node(), lit.is_compl(), &mut memo, &mut nl);
        po_signals.push((name, s));
    }
    for (name, s) in po_signals {
        nl.add_output(name, s);
    }
    nl
}

/// One full DP sweep over the choice classes with the given per-class
/// reference estimates.
fn run_class_dp(
    choice: &ChoiceAig,
    cuts: &[Vec<Cut>],
    refs: &[u32],
    lib: &Library,
    mode: MapMode,
) -> Vec<[Option<Best>; 2]> {
    let aig = choice.aig();
    let inv = &lib.cells()[lib.inverter()];
    let inv_delay = inv.delay(EST_LOAD);
    let mut best: Vec<[Option<Best>; 2]> = vec![[None, None]; aig.len()];
    best[0] = [
        Some(Best {
            arrival: 0.0,
            area_flow: 0.0,
            choice: Choice::Const(false),
        }),
        Some(Best {
            arrival: 0.0,
            area_flow: 0.0,
            choice: Choice::Const(true),
        }),
    ];
    for &r in choice.class_order() {
        if r == 0 {
            continue; // constant class pre-seeded above
        }
        if aig.is_pi(r) {
            best[r as usize][0] = Some(Best {
                arrival: 0.0,
                area_flow: 0.0,
                choice: Choice::Pi(r - 1),
            });
            best[r as usize][1] = Some(Best {
                arrival: inv_delay,
                area_flow: inv.area,
                choice: Choice::FromInv,
            });
            continue;
        }
        let node_refs = refs[r as usize].max(1) as f64;
        map_and_node(r, &cuts[r as usize], &mut best, node_refs, lib, mode);
    }
    best
}

/// Counts, per class, how many consumers the cover chosen in `best`
/// actually has (cut-leaf pins, phase-bridging inverters, primary
/// outputs).
fn cover_reference_counts(choice: &ChoiceAig, best: &[[Option<Best>; 2]]) -> Vec<u32> {
    let aig = choice.aig();
    let mut refs = vec![0u32; aig.len()];
    let mut seen: HashMap<(u32, bool), ()> = HashMap::new();
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for (_, l) in choice.output_reprs() {
        refs[l.node() as usize] += 1;
        stack.push((l.node(), l.is_compl()));
    }
    while let Some((c, p)) = stack.pop() {
        if seen.insert((c, p), ()).is_some() {
            continue;
        }
        let Some(b) = best[c as usize][p as usize].as_ref() else {
            continue;
        };
        match &b.choice {
            Choice::Const(_) | Choice::Pi(_) => {}
            Choice::FromInv => {
                refs[c as usize] += 1;
                stack.push((c, !p));
            }
            Choice::Alias { leaf, leaf_phase } => {
                refs[*leaf as usize] += 1;
                stack.push((*leaf, *leaf_phase));
            }
            Choice::Cell { pins, .. } => {
                for &(leaf, lphase) in pins {
                    refs[leaf as usize] += 1;
                    stack.push((leaf, lphase));
                }
            }
        }
    }
    refs
}

fn consider(slot: &mut [Option<Best>; 2], phase: usize, cand: Best, mode: MapMode) {
    let better = match &slot[phase] {
        None => true,
        Some(cur) => match mode {
            MapMode::Delay => (cand.arrival, cand.area_flow) < (cur.arrival, cur.area_flow),
            MapMode::Area => (cand.area_flow, cand.arrival) < (cur.area_flow, cur.arrival),
        },
    };
    if better {
        slot[phase] = Some(cand);
    }
}

fn realize(
    lib: &Library,
    best: &[[Option<Best>; 2]],
    node: u32,
    phase: bool,
    memo: &mut HashMap<(u32, bool), Signal>,
    nl: &mut Netlist,
) -> Signal {
    if let Some(&s) = memo.get(&(node, phase)) {
        return s;
    }
    let b = best[node as usize][phase as usize]
        .as_ref()
        .expect("mapped phase must exist");
    let sig = match &b.choice {
        Choice::Const(v) => Signal::Const(*v),
        Choice::Pi(i) => Signal::Pi(*i),
        Choice::FromInv => {
            let base = realize(lib, best, node, !phase, memo, nl);
            match base {
                Signal::Const(v) => Signal::Const(!v),
                _ => nl.add_gate(lib.inverter(), vec![base]),
            }
        }
        Choice::Alias { leaf, leaf_phase } => realize(lib, best, *leaf, *leaf_phase, memo, nl),
        Choice::Cell { m, pins } => {
            let inputs: Vec<Signal> = pins
                .iter()
                .map(|&(leaf, lphase)| realize(lib, best, leaf, lphase, memo, nl))
                .collect();
            nl.add_gate(m.cell, inputs)
        }
    };
    memo.insert((node, phase), sig);
    sig
}

/// Nodes reachable from the primary outputs.
fn live_mask(aig: &Aig) -> Vec<bool> {
    let mut live = vec![false; aig.len()];
    let mut stack: Vec<u32> = aig.outputs().iter().map(|(_, l)| l.node()).collect();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut live[n as usize], true) {
            continue;
        }
        if aig.is_and(n) {
            let (a, b) = aig.fanins(n);
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    live
}

/// Live fanout counts used as reference estimates for area flow.
fn fanout_estimates(aig: &Aig) -> Vec<u32> {
    let mut refs = vec![0u32; aig.len()];
    for n in 0..aig.len() as u32 {
        if aig.is_and(n) {
            let (a, b) = aig.fanins(n);
            refs[a.node() as usize] += 1;
            refs[b.node() as usize] += 1;
        }
    }
    for (_, l) in aig.outputs() {
        refs[l.node() as usize] += 1;
    }
    refs
}

/// Restricts `tt` to its support variables; returns the support positions
/// (indices into the cut leaf list) and the reduced table packed in a u16.
fn support_reduce(tt: &TruthTable) -> (Vec<usize>, u16) {
    let k = tt.num_vars();
    let support: Vec<usize> = (0..k).filter(|&v| tt.depends_on(v)).collect();
    let m = support.len();
    let mut reduced = 0u16;
    for idx in 0..(1usize << m) {
        let mut full = 0usize;
        for (i, &v) in support.iter().enumerate() {
            if (idx >> i) & 1 == 1 {
                full |= 1 << v;
            }
        }
        if tt.bit(full) {
            reduced |= 1 << idx;
        }
    }
    (support, reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::MapMode;
    use esyn_eqn::parse_eqn;

    fn equivalence_check(aig: &Aig, nl: &Netlist, lib: &Library) {
        let n = aig.num_pis();
        assert!(n <= 12);
        let total = 1usize << n;
        let mut idx = 0;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1u64 << chunk) - 1
            };
            let ra = aig.simulate(&words);
            let rb = nl.simulate(lib, &words);
            for (o, (x, y)) in ra.iter().zip(&rb).enumerate() {
                assert_eq!(x & mask, y & mask, "output {o} base {idx}");
            }
            idx += chunk;
        }
    }

    #[test]
    fn maps_simple_and_or() {
        let net = parse_eqn("INORDER = a b c d;\nOUTORDER = f;\nf = a*b + c*d;\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        for mode in [MapMode::Delay, MapMode::Area] {
            let nl = map_aig(&aig, &lib, mode);
            equivalence_check(&aig, &nl, &lib);
            assert!(nl.num_gates() >= 1);
        }
    }

    #[test]
    fn maps_with_minimal_library() {
        let net =
            parse_eqn("INORDER = a b c;\nOUTORDER = f g;\nf = (a*b) + !c;\ng = !(a + (b*c));\n")
                .unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::nand_inv();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        equivalence_check(&aig, &nl, &lib);
        // every gate must be NAND2 or INV
        for g in nl.gates() {
            let fam = &lib.cells()[g.cell].family;
            assert!(fam == "NAND2" || fam == "INV");
        }
    }

    #[test]
    fn xor_maps_to_xor_cell_in_rich_library() {
        let net = parse_eqn("INORDER = a b;\nOUTORDER = f;\nf = (a*!b) + (!a*b);\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        equivalence_check(&aig, &nl, &lib);
        // area-mode mapping of an XOR over 3 AIG nodes should collapse to
        // one XOR2 cell
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(lib.cells()[nl.gates()[0].cell].family, "XOR2");
    }

    #[test]
    fn constant_outputs_map_to_const_signals() {
        let net = parse_eqn("INORDER = a;\nOUTORDER = f g;\nf = a * !a;\ng = a + !a;\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, MapMode::Delay);
        assert_eq!(nl.outputs()[0].1, Signal::Const(false));
        assert_eq!(nl.outputs()[1].1, Signal::Const(true));
        assert_eq!(nl.num_gates(), 0);
    }

    #[test]
    fn inverted_pi_output_uses_one_inverter() {
        let net = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = !a;\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(lib.cells()[nl.gates()[0].cell].family, "INV");
    }

    #[test]
    fn delay_mode_is_no_slower_than_area_mode() {
        let net = parse_eqn(
            "INORDER = a b c d e f g h;\nOUTORDER = o;\n\
             o = ((a*b) + (c*d)) * ((e + f) * (g + h)) + (a * h);\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::asap7_like();
        let nl_d = map_aig(&aig, &lib, MapMode::Delay);
        let nl_a = map_aig(&aig, &lib, MapMode::Area);
        equivalence_check(&aig, &nl_d, &lib);
        equivalence_check(&aig, &nl_a, &lib);
        let t_d = crate::sta::sta(&nl_d, &lib, 1.2).delay;
        let t_a = crate::sta::sta(&nl_a, &lib, 1.2).delay;
        let area_d = nl_d.area(&lib);
        let area_a = nl_a.area(&lib);
        assert!(t_d <= t_a + 1e-9, "delay mode slower: {t_d} vs {t_a}");
        assert!(
            area_a <= area_d + 1e-9,
            "area mode bigger: {area_a} vs {area_d}"
        );
    }

    #[test]
    fn choice_mapping_preserves_function() {
        let net = parse_eqn(
            "INORDER = a b c d e;\nOUTORDER = f g;\n\
             f = (((a*b)*c)*d)*e;\n\
             g = (a*b) + (c*d) + (a*e);\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let choice = esyn_aig::ChoiceAig::build(&aig, 17);
        let lib = Library::asap7_like();
        for mode in [MapMode::Delay, MapMode::Area] {
            let nl = map_choices(&choice, &lib, mode);
            equivalence_check(&aig, &nl, &lib);
        }
    }

    #[test]
    fn choice_mapping_beats_unbalanced_structure_on_delay() {
        // A deep left-leaning AND chain: the balanced variant in the choice
        // AIG lets the mapper cut the depth, which mapping the raw
        // structure cannot.
        let mut src = String::from("INORDER =");
        for i in 0..12 {
            src.push_str(&format!(" x{i}"));
        }
        src.push_str(";\nOUTORDER = f;\nf = x0");
        for i in 1..12 {
            src.push_str(&format!("*x{i}"));
        }
        src.push_str(";\n");
        let aig = Aig::from_network(&parse_eqn(&src).unwrap());
        let lib = Library::asap7_like();
        let plain = map_aig(&aig, &lib, MapMode::Delay);
        let choice = esyn_aig::ChoiceAig::build(&aig, 23);
        assert!(choice.num_choices() > 0);
        let chosen = map_choices(&choice, &lib, MapMode::Delay);
        equivalence_check(&aig, &chosen, &lib);
        let t_plain = crate::sta::sta(&plain, &lib, 1.2).delay;
        let t_choice = crate::sta::sta(&chosen, &lib, 1.2).delay;
        assert!(
            t_choice < t_plain - 1e-9,
            "choices must shorten the chain: {t_plain} vs {t_choice}"
        );
    }

    #[test]
    fn choice_mapping_with_minimal_library() {
        let net = parse_eqn("INORDER = a b c d;\nOUTORDER = f;\nf = ((a*b)*c)*d + (a+b)*(c+d);\n")
            .unwrap();
        let aig = Aig::from_network(&net);
        let choice = esyn_aig::ChoiceAig::build(&aig, 5);
        let lib = Library::nand_inv();
        let nl = map_choices(&choice, &lib, MapMode::Area);
        equivalence_check(&aig, &nl, &lib);
        for g in nl.gates() {
            let fam = &lib.cells()[g.cell].family;
            assert!(fam == "NAND2" || fam == "INV");
        }
    }

    #[test]
    fn support_reduction() {
        // f = x1 (ignores x0, x2): support = [1], reduced = 0b10
        let x1 = TruthTable::var(3, 1);
        let (support, reduced) = support_reduce(&x1);
        assert_eq!(support, vec![1]);
        assert_eq!(reduced, 0b10);
        let (s2, r2) = support_reduce(&x1.not());
        assert_eq!(s2, vec![1]);
        assert_eq!(r2, 0b01);
    }

    #[test]
    fn shared_logic_is_reused_in_cover() {
        // two outputs share a*b: the cover must not duplicate the AND gate
        let net =
            parse_eqn("INORDER = a b c;\nOUTORDER = f g;\nf = (a*b)*c;\ng = (a*b)*!c;\n").unwrap();
        let aig = Aig::from_network(&net);
        let lib = Library::nand_inv();
        let nl = map_aig(&aig, &lib, MapMode::Area);
        equivalence_check(&aig, &nl, &lib);
    }
}
