//! The full mapping flow: `map; topo; [buffer;] upsize; dnsize; stime`.

use crate::buffer::{buffer, BufferConfig};
use crate::library::Library;
use crate::mapper::map_aig;
use crate::netlist::Netlist;
use crate::sizing::{dnsize, upsize};
use crate::sta::{sta, PO_CAP};
use esyn_aig::Aig;

/// Mapping objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapMode {
    /// Minimize worst-case delay (area is the tie-breaker).
    Delay,
    /// Minimize area flow (delay is the tie-breaker).
    Area,
}

/// Post-mapping quality of results — the `stime` report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QorReport {
    /// Total cell area (µm²).
    pub area: f64,
    /// Worst input-to-output delay (ps).
    pub delay: f64,
    /// Number of gates.
    pub gates: usize,
    /// Logic depth in gates.
    pub levels: usize,
}

/// Maps `aig` onto `lib` and sizes the result, mirroring the paper's
/// evaluation backend `map; topo; upsize; dnsize; stime`:
///
/// * **Delay mode**: map for delay, upsize toward `target_delay` (or until
///   no single swap helps), then recover area with delay-preserving
///   downsizing.
/// * **Area mode**: map for area; only fix timing up to `target_delay` if
///   one is given, then downsize within that budget.
pub fn map_and_size(
    aig: &Aig,
    lib: &Library,
    mode: MapMode,
    target_delay: Option<f64>,
) -> (Netlist, QorReport) {
    map_with(aig, lib, mode, target_delay, None)
}

/// Like [`map_and_size`] with a fanout-buffering step between mapping and
/// sizing, mirroring the `buffer; upsize; dnsize` tail of the paper's §4.3
/// baseline script. Buffering is kept out of [`map_and_size`] so existing
/// calibrated comparisons are unchanged; both flows under comparison must
/// use the same backend either way.
pub fn map_buffer_size(
    aig: &Aig,
    lib: &Library,
    mode: MapMode,
    target_delay: Option<f64>,
    buffering: &BufferConfig,
) -> (Netlist, QorReport) {
    map_with(aig, lib, mode, target_delay, Some(buffering))
}

/// Like [`map_and_size`] over a [`ChoiceAig`](esyn_aig::ChoiceAig):
/// choice-aware mapping (the `&dch -f; &nf` substitute) followed by the
/// same sizing tail as the single-structure flow.
pub fn map_choices_and_size(
    choice: &esyn_aig::ChoiceAig,
    lib: &Library,
    mode: MapMode,
    target_delay: Option<f64>,
) -> (Netlist, QorReport) {
    let nl = crate::mapper::map_choices(choice, lib, mode);
    size_and_report(nl, lib, mode, target_delay)
}

fn map_with(
    aig: &Aig,
    lib: &Library,
    mode: MapMode,
    target_delay: Option<f64>,
    buffering: Option<&BufferConfig>,
) -> (Netlist, QorReport) {
    let mut nl = map_aig(aig, lib, mode);
    if let Some(cfg) = buffering {
        nl = buffer(&nl, lib, PO_CAP, cfg);
    }
    size_and_report(nl, lib, mode, target_delay)
}

/// The shared `upsize; dnsize; stime` tail of every mapping flow.
fn size_and_report(
    mut nl: Netlist,
    lib: &Library,
    mode: MapMode,
    target_delay: Option<f64>,
) -> (Netlist, QorReport) {
    match mode {
        MapMode::Delay => {
            let reached = upsize(&mut nl, lib, PO_CAP, target_delay, 400);
            let limit = target_delay.map_or(reached, |t| t.max(reached));
            let _ = dnsize(&mut nl, lib, PO_CAP, Some(limit));
        }
        MapMode::Area => {
            if let Some(t) = target_delay {
                let reached = upsize(&mut nl, lib, PO_CAP, Some(t), 400);
                let _ = dnsize(&mut nl, lib, PO_CAP, Some(t.max(reached)));
            } else {
                let _ = dnsize(&mut nl, lib, PO_CAP, None);
            }
        }
    }
    let report = qor(&nl, lib);
    (nl, report)
}

/// Computes the QoR report of a netlist (the `stime` step).
pub fn qor(nl: &Netlist, lib: &Library) -> QorReport {
    let t = sta(nl, lib, PO_CAP);
    QorReport {
        area: nl.area(lib),
        delay: t.delay,
        gates: nl.num_gates(),
        levels: nl.levels(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    fn sample() -> Aig {
        let net = parse_eqn(
            "INORDER = a b c d e f;\nOUTORDER = x y;\n\
             x = ((a*b) + (c*d)) * (e + f);\n\
             y = (a + b) * !(c * (d + (e*f)));\n",
        )
        .unwrap();
        Aig::from_network(&net)
    }

    #[test]
    fn delay_flow_beats_area_flow_on_delay() {
        let lib = Library::asap7_like();
        let aig = sample();
        let (_, qd) = map_and_size(&aig, &lib, MapMode::Delay, None);
        let (_, qa) = map_and_size(&aig, &lib, MapMode::Area, None);
        assert!(qd.delay <= qa.delay + 1e-9, "{} vs {}", qd.delay, qa.delay);
        assert!(qa.area <= qd.area + 1e-9, "{} vs {}", qa.area, qd.area);
    }

    #[test]
    fn report_fields_consistent() {
        let lib = Library::asap7_like();
        let aig = sample();
        let (nl, q) = map_and_size(&aig, &lib, MapMode::Delay, None);
        assert_eq!(q.gates, nl.num_gates());
        assert_eq!(q.levels, nl.levels());
        assert!((q.area - nl.area(&lib)).abs() < 1e-9);
        assert!(q.delay > 0.0);
    }

    #[test]
    fn target_delay_trades_area() {
        let lib = Library::asap7_like();
        let aig = sample();
        let (_, tight) = map_and_size(&aig, &lib, MapMode::Delay, Some(0.0));
        let (_, loose) = map_and_size(&aig, &lib, MapMode::Delay, Some(1e9));
        // an unreachable target forces maximal upsizing; a huge target
        // allows aggressive downsizing
        assert!(loose.area <= tight.area + 1e-9);
        assert!(tight.delay <= loose.delay + 1e-9);
    }

    #[test]
    fn flow_preserves_function() {
        let lib = Library::asap7_like();
        let aig = sample();
        for mode in [MapMode::Delay, MapMode::Area] {
            let (nl, _) = map_and_size(&aig, &lib, mode, None);
            let words: Vec<u64> = (0..6u64)
                .map(|i| i.wrapping_mul(0xDEAD_BEEF_1234))
                .collect();
            assert_eq!(aig.simulate(&words), nl.simulate(&lib, &words));
        }
    }
}
