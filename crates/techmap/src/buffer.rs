//! Fanout buffering — the `buffer` step of the paper's §4.3 baseline flow.
//!
//! The linear delay model charges every driver `resistance × load`; a net
//! with dozens of sinks therefore dominates the critical path no matter
//! how the driver is sized. `buffer` rebuilds the netlist with buffer
//! trees on nets whose fanout count or capacitive load exceeds the
//! configured limits, exactly like ABC's `buffer` command runs between
//! mapping and sizing. Inserted buffers start at the smallest drive; the
//! subsequent `upsize` pass resizes them like any other gate.
//!
//! Buffering never changes logic function: trees are built from the
//! library's BUF cell, or from inverter pairs when the library has no
//! non-inverting buffer.

use crate::library::Library;
use crate::netlist::{Netlist, Signal};
use std::collections::HashMap;

/// Limits that trigger buffer insertion on a net.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BufferConfig {
    /// Maximum number of sink pins a single driver may feed.
    pub max_fanout: usize,
    /// Maximum capacitive load on a single driver (`None` = unlimited).
    pub max_load: Option<f64>,
    /// Also buffer primary-input nets. Off by default: the STA models PIs
    /// as ideal (zero-resistance) drivers, so splitting their fanout can
    /// only add buffer delay — the same reason ABC leaves PI nets alone
    /// unless an input drive is specified.
    pub buffer_inputs: bool,
}

impl Default for BufferConfig {
    /// Fanout limit 8, no load limit, gate-output nets only — comparable
    /// to ABC's default fanout-driven buffering.
    fn default() -> Self {
        BufferConfig {
            max_fanout: 8,
            max_load: None,
            buffer_inputs: false,
        }
    }
}

/// A sink pin fed by some net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SinkRef {
    /// Input `pin` of gate `gate` (old-netlist indices).
    Pin { gate: u32, pin: u32 },
    /// Primary output `index`.
    Po(u32),
}

/// An element a driver must feed while a tree is being balanced: either a
/// real sink or a planned buffer subtree.
enum Item {
    Sink(SinkRef, f64),
    Buf(Vec<Item>),
}

impl Item {
    fn cap(&self, buf_in_cap: f64) -> f64 {
        match self {
            Item::Sink(_, c) => *c,
            Item::Buf(_) => buf_in_cap,
        }
    }
}

/// Rebuilds `nl` with buffer trees on every gate-output net exceeding
/// `cfg`'s limits (primary-input nets too, when `cfg.buffer_inputs` is
/// set) and returns the buffered netlist.
///
/// The result computes the same function; only fanout topology changes.
/// Nets already within limits are untouched, so a netlist that needs no
/// buffering round-trips with an identical gate count.
pub fn buffer(nl: &Netlist, lib: &Library, po_cap: f64, cfg: &BufferConfig) -> Netlist {
    let buf_cell = lib.buffer();
    let buf_is_real = {
        let c = &lib.cells()[buf_cell];
        c.num_inputs == 1 && c.eval(0b1) && !c.eval(0b0)
    };
    let inv_cell = lib.inverter();
    let buf_in_cap = if buf_is_real {
        lib.cells()[buf_cell].input_cap
    } else {
        lib.cells()[inv_cell].input_cap
    };

    // Collect the sinks of every PI and gate net in the original netlist.
    let mut pi_sinks: Vec<Vec<(SinkRef, f64)>> = vec![Vec::new(); nl.input_names().len()];
    let mut gate_sinks: Vec<Vec<(SinkRef, f64)>> = vec![Vec::new(); nl.num_gates()];
    for (i, g) in nl.gates().iter().enumerate() {
        for (p, s) in g.inputs.iter().enumerate() {
            let sink = SinkRef::Pin {
                gate: i as u32,
                pin: p as u32,
            };
            let cap = lib.cells()[g.cell].input_cap;
            match s {
                Signal::Pi(k) => pi_sinks[*k as usize].push((sink, cap)),
                Signal::Gate(j) => gate_sinks[*j as usize].push((sink, cap)),
                Signal::Const(_) => {}
            }
        }
    }
    for (k, (_, s)) in nl.outputs().iter().enumerate() {
        let sink = (SinkRef::Po(k as u32), po_cap);
        match s {
            Signal::Pi(i) => pi_sinks[*i as usize].push(sink),
            Signal::Gate(j) => gate_sinks[*j as usize].push(sink),
            Signal::Const(_) => {}
        }
    }

    let mut out = Netlist::new();
    // Which signal each (old-netlist) sink reads after buffering.
    let mut assign: HashMap<SinkRef, Signal> = HashMap::new();

    let emit_buffer = |out: &mut Netlist, input: Signal| -> Signal {
        if buf_is_real {
            out.add_gate(buf_cell, vec![input])
        } else {
            let n = out.add_gate(inv_cell, vec![input]);
            out.add_gate(inv_cell, vec![n])
        }
    };

    // Builds a buffer tree over `sinks` driven by `driver`, recording the
    // final driving signal of every sink in `assign`.
    let attach = |out: &mut Netlist,
                  assign: &mut HashMap<SinkRef, Signal>,
                  driver: Signal,
                  sinks: &[(SinkRef, f64)]| {
        let fits = |items: &[Item]| {
            items.len() <= cfg.max_fanout
                && cfg.max_load.is_none_or(|ml| {
                    items.iter().map(|i| i.cap(buf_in_cap)).sum::<f64>() <= ml + 1e-12
                })
        };
        let mut items: Vec<Item> = sinks.iter().map(|&(r, c)| Item::Sink(r, c)).collect();
        while !fits(&items) {
            // Greedy packing into groups that each satisfy the limits (a
            // single over-weight item forms its own group and is attached
            // as-is — it cannot be split).
            let mut groups: Vec<Vec<Item>> = Vec::new();
            let mut cur: Vec<Item> = Vec::new();
            let mut cur_cap = 0.0;
            for it in items {
                let c = it.cap(buf_in_cap);
                let over_count = cur.len() + 1 > cfg.max_fanout;
                let over_load = cfg
                    .max_load
                    .is_some_and(|ml| !cur.is_empty() && cur_cap + c > ml + 1e-12);
                if over_count || over_load {
                    groups.push(std::mem::take(&mut cur));
                    cur_cap = 0.0;
                }
                cur_cap += c;
                cur.push(it);
            }
            if !cur.is_empty() {
                groups.push(cur);
            }
            if groups.len() <= 1 {
                items = groups.pop().unwrap_or_default();
                break;
            }
            items = groups.into_iter().map(Item::Buf).collect();
        }
        // Emit top-down: the driver feeds the top-level items; each Buf
        // materializes one buffer and recursively feeds its children.
        let mut stack: Vec<(Signal, Item)> = items.into_iter().map(|i| (driver, i)).collect();
        while let Some((sig, item)) = stack.pop() {
            match item {
                Item::Sink(r, _) => {
                    assign.insert(r, sig);
                }
                Item::Buf(children) => {
                    let b = emit_buffer(out, sig);
                    for ch in children {
                        stack.push((b, ch));
                    }
                }
            }
        }
    };

    // PIs keep their indices; buffer their nets first when requested,
    // otherwise wire every PI sink straight through.
    for (k, name) in nl.input_names().iter().enumerate() {
        let pi = out.add_input(name.clone());
        debug_assert_eq!(pi, Signal::Pi(k as u32));
        if cfg.buffer_inputs {
            attach(&mut out, &mut assign, pi, &pi_sinks[k]);
        } else {
            for &(r, _) in &pi_sinks[k] {
                assign.insert(r, pi);
            }
        }
    }

    // Emit gates in the original topological order, resolving each input
    // through the assignment table, then buffer the fresh net.
    for (i, g) in nl.gates().iter().enumerate() {
        let inputs: Vec<Signal> = g
            .inputs
            .iter()
            .enumerate()
            .map(|(p, s)| match s {
                Signal::Const(b) => Signal::Const(*b),
                _ => {
                    assign[&SinkRef::Pin {
                        gate: i as u32,
                        pin: p as u32,
                    }]
                }
            })
            .collect();
        let new_sig = out.add_gate(g.cell, inputs);
        attach(&mut out, &mut assign, new_sig, &gate_sinks[i]);
    }

    for (k, (name, s)) in nl.outputs().iter().enumerate() {
        let sig = match s {
            Signal::Const(b) => Signal::Const(*b),
            _ => assign[&SinkRef::Po(k as u32)],
        };
        out.add_output(name.clone(), sig);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::MapMode;
    use crate::library::Library;
    use crate::mapper::map_aig;
    use crate::sizing::{dnsize, upsize};
    use crate::sta::sta;
    use esyn_aig::Aig;
    use esyn_eqn::parse_eqn;

    /// a*b fanning out to `n` output functions.
    fn high_fanout_aig(n: usize) -> Aig {
        let mut text = String::from("INORDER = a b");
        for i in 0..n {
            text.push_str(&format!(" c{i}"));
        }
        text.push_str(";\nOUTORDER =");
        for i in 0..n {
            text.push_str(&format!(" f{i}"));
        }
        text.push_str(";\n");
        for i in 0..n {
            text.push_str(&format!("f{i} = (a*b) * c{i};\n"));
        }
        Aig::from_network(&parse_eqn(&text).unwrap())
    }

    fn fanout_counts(nl: &Netlist) -> Vec<usize> {
        let mut counts = vec![0usize; nl.num_gates()];
        for g in nl.gates() {
            for s in &g.inputs {
                if let Signal::Gate(j) = s {
                    counts[*j as usize] += 1;
                }
            }
        }
        for (_, s) in nl.outputs() {
            if let Signal::Gate(j) = s {
                counts[*j as usize] += 1;
            }
        }
        counts
    }

    #[test]
    fn respects_fanout_limit() {
        let lib = Library::asap7_like();
        let aig = high_fanout_aig(40);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let cfg = BufferConfig {
            max_fanout: 6,
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        assert!(
            buffered.num_gates() > nl.num_gates(),
            "buffers were inserted"
        );
        for (g, &n) in fanout_counts(&buffered).iter().enumerate() {
            assert!(n <= 6, "gate {g} has fanout {n} > 6");
        }
    }

    #[test]
    fn preserves_function() {
        let lib = Library::asap7_like();
        let aig = high_fanout_aig(24);
        let nl = map_aig(&aig, &lib, MapMode::Delay);
        let cfg = BufferConfig {
            max_fanout: 4,
            max_load: Some(3.0),
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        let words: Vec<u64> = (0..26u64)
            .map(|i| (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(nl.simulate(&lib, &words), buffered.simulate(&lib, &words));
    }

    #[test]
    fn no_op_when_within_limits() {
        let lib = Library::asap7_like();
        let aig = high_fanout_aig(3);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let buffered = buffer(&nl, &lib, 1.2, &BufferConfig::default());
        assert_eq!(buffered.num_gates(), nl.num_gates());
        assert_eq!(buffered.levels(), nl.levels());
    }

    #[test]
    fn reduces_delay_on_heavily_loaded_net() {
        let lib = Library::asap7_like();
        let aig = high_fanout_aig(48);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let before = sta(&nl, &lib, 1.2).delay;
        let cfg = BufferConfig {
            max_fanout: 8,
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        let after = sta(&buffered, &lib, 1.2).delay;
        assert!(
            after < before,
            "buffering a 48-sink net must cut delay: {before} -> {after}"
        );
    }

    #[test]
    fn buffers_primary_input_nets() {
        let lib = Library::asap7_like();
        // `a` feeds every function directly.
        let mut text = String::from("INORDER = a");
        for i in 0..20 {
            text.push_str(&format!(" c{i}"));
        }
        text.push_str(";\nOUTORDER =");
        for i in 0..20 {
            text.push_str(&format!(" f{i}"));
        }
        text.push_str(";\n");
        for i in 0..20 {
            text.push_str(&format!("f{i} = a * c{i};\n"));
        }
        let aig = Aig::from_network(&parse_eqn(&text).unwrap());
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let pi_fanout = |nl: &Netlist| {
            nl.gates()
                .iter()
                .flat_map(|g| &g.inputs)
                .filter(|s| matches!(s, Signal::Pi(0)))
                .count()
        };
        assert!(pi_fanout(&nl) > 8);
        // By default PI nets are left alone (PIs are ideal drivers)...
        let untouched = buffer(&nl, &lib, 1.2, &BufferConfig::default());
        assert_eq!(pi_fanout(&untouched), pi_fanout(&nl));
        // ...and buffered when explicitly requested.
        let cfg = BufferConfig {
            max_fanout: 8,
            buffer_inputs: true,
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        assert!(pi_fanout(&buffered) <= 8);
        let words: Vec<u64> = (0..21u64)
            .map(|i| i.wrapping_mul(0xABCD_EF01_2345))
            .collect();
        assert_eq!(nl.simulate(&lib, &words), buffered.simulate(&lib, &words));
    }

    #[test]
    fn inverter_pair_fallback_preserves_polarity() {
        // nand_inv has no BUF cell; buffering must use INV pairs.
        let lib = Library::nand_inv();
        let net = parse_eqn(
            "INORDER = a b c d;\nOUTORDER = w x y z;\n\
             w = (a*b)*c;\nx = (a*b)*d;\ny = (a*b)+c;\nz = (a*b)+d;\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let cfg = BufferConfig {
            max_fanout: 2,
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        let words: Vec<u64> = (0..4u64)
            .map(|i| (i + 7).wrapping_mul(0x1357_9BDF))
            .collect();
        assert_eq!(nl.simulate(&lib, &words), buffered.simulate(&lib, &words));
        // every cell in nand_inv is NAND2 or INV, so buffers are INV pairs
        assert!(buffered.num_gates() > nl.num_gates());
    }

    #[test]
    fn buffered_netlist_sizes_cleanly() {
        let lib = Library::asap7_like();
        let aig = high_fanout_aig(32);
        let mut nl = map_aig(&aig, &lib, MapMode::Delay);
        let cfg = BufferConfig {
            max_fanout: 8,
            ..BufferConfig::default()
        };
        nl = buffer(&nl, &lib, 1.2, &cfg);
        let before = sta(&nl, &lib, 1.2).delay;
        let after = upsize(&mut nl, &lib, 1.2, None, 100);
        let _ = dnsize(&mut nl, &lib, 1.2, None);
        assert!(after <= before + 1e-9);
        let words: Vec<u64> = (0..34u64)
            .map(|i| i.wrapping_mul(0x0F1E_2D3C_4B5A))
            .collect();
        let aig_out = aig.simulate(&words);
        assert_eq!(aig_out, nl.simulate(&lib, &words));
    }

    #[test]
    fn load_limit_splits_heavy_nets() {
        let lib = Library::asap7_like();
        let aig = high_fanout_aig(30);
        let nl = map_aig(&aig, &lib, MapMode::Area);
        let cfg = BufferConfig {
            max_fanout: usize::MAX,
            max_load: Some(2.5),
            ..BufferConfig::default()
        };
        let buffered = buffer(&nl, &lib, 1.2, &cfg);
        let loads = buffered.loads(&lib, 1.2);
        for (g, &l) in loads.iter().enumerate() {
            assert!(l <= 2.5 + 1e-9, "gate {g} load {l} exceeds limit");
        }
        assert!(buffered.num_gates() > nl.num_gates());
    }
}
