//! Bus helpers for building and simulating multi-bit circuits.

use esyn_eqn::{Network, NodeId};

/// Declares an `n`-bit input bus `name[0] .. name[n-1]` (LSB first).
pub fn input_bus(net: &mut Network, name: &str, n: usize) -> Vec<NodeId> {
    (0..n).map(|i| net.input(format!("{name}[{i}]"))).collect()
}

/// Declares outputs `name[0] .. name[n-1]` for the given bits (LSB first).
pub fn output_bus(net: &mut Network, name: &str, bits: &[NodeId]) {
    for (i, &b) in bits.iter().enumerate() {
        net.output(format!("{name}[{i}]"), b);
    }
}

/// Builds one 64-pattern stimulus: `values[p]` is the integer driven onto
/// the bus in pattern `p` (up to 64 patterns). Returns one word per bus
/// bit, LSB-first, matching [`input_bus`] order.
///
/// # Panics
///
/// Panics if more than 64 values are supplied.
pub fn stimulus_for(width: usize, values: &[u64]) -> Vec<u64> {
    assert!(values.len() <= 64, "at most 64 patterns per word");
    (0..width)
        .map(|bit| {
            let mut w = 0u64;
            for (p, &v) in values.iter().enumerate() {
                if (v >> bit) & 1 == 1 {
                    w |= 1 << p;
                }
            }
            w
        })
        .collect()
}

/// Decodes a simulated response back into per-pattern integers: `words`
/// holds one response word per bus bit (LSB first); returns the integer
/// observed in each of `num_patterns` patterns.
pub fn read_bus_response(words: &[u64], num_patterns: usize) -> Vec<u64> {
    (0..num_patterns)
        .map(|p| {
            words
                .iter()
                .enumerate()
                .map(|(bit, w)| ((w >> p) & 1) << bit)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimulus_roundtrip() {
        let values = [5u64, 0, 7, 2, 63];
        let words = stimulus_for(6, &values);
        let back = read_bus_response(&words, values.len());
        assert_eq!(back, values);
    }

    #[test]
    fn buses_declare_named_ports() {
        let mut net = Network::new();
        let a = input_bus(&mut net, "a", 3);
        output_bus(&mut net, "y", &a);
        assert_eq!(net.input_names(), &["a[0]", "a[1]", "a[2]"]);
        assert_eq!(net.outputs()[2].0, "y[2]");
    }
}
