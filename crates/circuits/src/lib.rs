//! Deterministic generators for the benchmark circuits used by the E-Syn
//! paper's evaluation (§4.1): EPFL, LGSynth, ISCAS85, ITC99, genmul and
//! OpenCores designs.
//!
//! The original benchmark files are not redistributable in this offline
//! reproduction, so every named circuit is replaced by a deterministic
//! generator of the same *kind* of logic at laptop-friendly scale (see
//! DESIGN.md, substitution notes): `adder` is a ripple-carry adder (deep,
//! small — matching its paper profile of tiny area but dominant delay),
//! `bar` is a logarithmic barrel shifter, `3_3`/`5_5` are genmul-style
//! array multipliers, `qdiv` is a restoring divider, the ISCAS/LGSynth
//! entries are structured arithmetic/control blocks or seeded random
//! control logic of comparable role. Relative QoR comparisons across
//! flows — the subject of every figure and table — are preserved.
//!
//! # Example
//!
//! ```
//! let net = esyn_circuits::by_name("adder").expect("known benchmark");
//! assert!(net.num_inputs() > 0);
//! let all = esyn_circuits::table2_benchmarks();
//! assert_eq!(all.len(), 14);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arith;
mod buses;
mod control;
mod rand_logic;
mod registry;

pub use arith::{array_multiplier, carry_lookahead_adder, restoring_divider, ripple_adder};
pub use buses::{input_bus, output_bus, read_bus_response, stimulus_for};
pub use control::{alu, barrel_shifter, max_unit, parity_tree, priority_encoder};
pub use rand_logic::random_control;
pub use registry::{all_benchmarks, by_name, fig4_benchmarks, table2_benchmarks, Benchmark};
