//! Seeded random control logic — stand-in for the LGSynth/ITC random
//! control benchmarks (`cavlc`, `i7`, `frg2`, `b12`, `pair`) whose exact
//! netlists are not redistributable here.
//!
//! Each output is a sum of random product terms over the inputs plus a
//! sprinkling of shared XOR "state" signals, which gives the mix of
//! unate SOP logic and reconvergent XOR structure typical of those
//! benchmark families.

use crate::buses::input_bus;
use esyn_eqn::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random control block with `num_inputs` inputs and
/// `num_outputs` outputs; each output ORs about `cubes_per_output`
/// products of 2–5 literals. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `num_inputs < 5` (cube sampling needs room) or either count
/// is zero.
pub fn random_control(
    num_inputs: usize,
    num_outputs: usize,
    cubes_per_output: usize,
    seed: u64,
) -> Network {
    assert!(num_inputs >= 5, "need at least 5 inputs");
    assert!(num_outputs > 0 && cubes_per_output > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let x = input_bus(&mut net, "x", num_inputs);

    // Shared reconvergent signals: a few XOR pairs reused across outputs.
    let num_shared = (num_inputs / 3).max(2);
    let shared: Vec<NodeId> = (0..num_shared)
        .map(|_| {
            let a = x[rng.gen_range(0..num_inputs)];
            let b = x[rng.gen_range(0..num_inputs)];
            net.xor(a, b)
        })
        .collect();

    for o in 0..num_outputs {
        let mut cubes = Vec::with_capacity(cubes_per_output);
        for _ in 0..cubes_per_output {
            let len = rng.gen_range(2..=5usize);
            let mut lits = Vec::with_capacity(len);
            for _ in 0..len {
                // 1-in-4 literals come from the shared XOR signals
                let base = if rng.gen_range(0..4) == 0 {
                    shared[rng.gen_range(0..shared.len())]
                } else {
                    x[rng.gen_range(0..num_inputs)]
                };
                let lit = if rng.gen_bool(0.5) {
                    net.not(base)
                } else {
                    base
                };
                lits.push(lit);
            }
            cubes.push(net.and_many(&lits));
        }
        let f = net.or_many(&cubes);
        net.output(format!("f{o}"), f);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = random_control(12, 6, 10, 7);
        let b = random_control(12, 6, 10, 7);
        let words: Vec<u64> = (0..12u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        assert_eq!(a.simulate(&words), b.simulate(&words));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_control(12, 6, 10, 7);
        let b = random_control(12, 6, 10, 8);
        let words: Vec<u64> = (0..12u64).map(|i| i.wrapping_mul(0x1234_5677)).collect();
        assert_ne!(a.simulate(&words), b.simulate(&words));
    }

    #[test]
    fn interface_matches_request() {
        let net = random_control(20, 9, 12, 3);
        assert_eq!(net.num_inputs(), 20);
        assert_eq!(net.num_outputs(), 9);
        assert!(net.stats().gates() > 50, "non-trivial logic expected");
    }

    #[test]
    fn outputs_are_not_constant() {
        // with enough cubes each output should toggle for random stimulus
        let net = random_control(14, 8, 12, 42);
        let w1: Vec<u64> = (0..14u64).map(|i| i.wrapping_mul(0xDEAD_BEEF_77)).collect();
        let r = net.simulate(&w1);
        let toggling = r.iter().filter(|&&w| w != 0 && w != u64::MAX).count();
        assert!(toggling >= 6, "{toggling} of 8 outputs toggle");
    }
}
