//! Control and datapath-selection blocks: shifters, comparators, ALUs,
//! priority logic, parity trees.

use crate::buses::{input_bus, output_bus};
use esyn_eqn::{Network, NodeId};

/// Logarithmic barrel shifter (left-rotate by `shift`), the EPFL `bar`
/// profile: wide, shallow mux tree. `width` must be `2^log2_width`.
pub fn barrel_shifter(log2_width: usize) -> Network {
    let width = 1usize << log2_width;
    let mut net = Network::new();
    let data = input_bus(&mut net, "x", width);
    let shift = input_bus(&mut net, "s", log2_width);
    let mut cur = data;
    for (stage, &s) in shift.iter().enumerate() {
        let amount = 1usize << stage;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let rotated = cur[(i + width - amount) % width];
            next.push(net.mux(s, rotated, cur[i]));
        }
        cur = next;
    }
    output_bus(&mut net, "y", &cur);
    net
}

/// Maximum of `count` unsigned `bits`-wide inputs (the EPFL `max`
/// profile: comparator tree plus selection muxes).
pub fn max_unit(bits: usize, count: usize) -> Network {
    assert!(count >= 2, "need at least two operands");
    let mut net = Network::new();
    let buses: Vec<Vec<NodeId>> = (0..count)
        .map(|i| input_bus(&mut net, &format!("v{i}"), bits))
        .collect();
    let mut best = buses[0].clone();
    for bus in &buses[1..] {
        let gt = greater_than(&mut net, bus, &best);
        best = (0..bits).map(|k| net.mux(gt, bus[k], best[k])).collect();
    }
    output_bus(&mut net, "max", &best);
    net
}

/// Unsigned `a > b` comparator over equal-width buses.
pub(crate) fn greater_than(net: &mut Network, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len());
    // gt = OR over i of (a[i] & !b[i] & AND_{j>i} (a[j] == b[j]))
    let mut gt = net.constant(false);
    let mut all_eq_above = net.constant(true);
    for i in (0..a.len()).rev() {
        let nb = net.not(b[i]);
        let here = net.and(a[i], nb);
        let term = net.and(here, all_eq_above);
        gt = net.or(gt, term);
        let eq = net.xnor(a[i], b[i]);
        all_eq_above = net.and(all_eq_above, eq);
    }
    gt
}

/// Priority encoder with acknowledge outputs — the C432-style interrupt
/// controller profile: `req[i]` wins when no higher-priority (lower index)
/// request is raised and its channel is enabled.
pub fn priority_encoder(channels: usize) -> Network {
    let mut net = Network::new();
    let req = input_bus(&mut net, "req", channels);
    let en = input_bus(&mut net, "en", channels);
    let mut blocked = net.constant(false);
    let mut grants = Vec::with_capacity(channels);
    for i in 0..channels {
        let active = net.and(req[i], en[i]);
        let nb = net.not(blocked);
        grants.push(net.and(active, nb));
        blocked = net.or(blocked, active);
    }
    output_bus(&mut net, "grant", &grants);
    // encoded index (OR of grant lines per bit) + "any" flag
    let idx_bits = channels.next_power_of_two().trailing_zeros() as usize;
    let mut encoded = Vec::with_capacity(idx_bits);
    for bit in 0..idx_bits {
        let terms: Vec<NodeId> = (0..channels)
            .filter(|i| (i >> bit) & 1 == 1)
            .map(|i| grants[i])
            .collect();
        encoded.push(net.or_many(&terms));
    }
    output_bus(&mut net, "idx", &encoded);
    net.output("any", blocked);
    net
}

/// `bits`-wide ALU with four operations selected by `op[1:0]`:
/// `00 → a + b`, `01 → a & b`, `10 → a | b`, `11 → a ^ b`; plus a
/// zero flag. The MCNC `alu4` / ISCAS-ALU profile.
pub fn alu(bits: usize) -> Network {
    let mut net = Network::new();
    let a = input_bus(&mut net, "a", bits);
    let b = input_bus(&mut net, "b", bits);
    let op = input_bus(&mut net, "op", 2);

    // adder
    let mut carry = net.constant(false);
    let mut add = Vec::with_capacity(bits);
    for i in 0..bits {
        let (s, c) = crate::arith::full_adder(&mut net, a[i], b[i], carry);
        add.push(s);
        carry = c;
    }
    let ands: Vec<NodeId> = (0..bits).map(|i| net.and(a[i], b[i])).collect();
    let ors: Vec<NodeId> = (0..bits).map(|i| net.or(a[i], b[i])).collect();
    let xors: Vec<NodeId> = (0..bits).map(|i| net.xor(a[i], b[i])).collect();

    let mut out = Vec::with_capacity(bits);
    for i in 0..bits {
        let lo = net.mux(op[0], ands[i], add[i]); // op1=0: 00 add, 01 and
        let hi = net.mux(op[0], xors[i], ors[i]); // op1=1: 10 or, 11 xor
        out.push(net.mux(op[1], hi, lo));
    }
    let any = {
        let mut acc = net.constant(false);
        for &o in &out {
            acc = net.or(acc, o);
        }
        acc
    };
    let zero = net.not(any);
    output_bus(&mut net, "y", &out);
    net.output("zf", zero);
    net
}

/// Parity (XOR) tree over `bits` inputs — the parity-checker component of
/// the ISCAS `c2670`/`c7552` profiles.
pub fn parity_tree(bits: usize) -> Network {
    let mut net = Network::new();
    let x = input_bus(&mut net, "x", bits);
    let mut level = x;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(net.xor(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    net.output("parity", level[0]);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buses::{read_bus_response, stimulus_for};

    #[test]
    fn barrel_shifter_rotates() {
        let net = barrel_shifter(3); // 8-bit
        let xv = [0b0000_0001u64, 0b1000_0000, 0b1011_0010, 0xFF];
        let sv = [1u64, 1, 3, 7];
        let mut words = stimulus_for(8, &xv);
        words.extend(stimulus_for(3, &sv));
        let res = net.simulate(&words);
        let ys = read_bus_response(&res, xv.len());
        for i in 0..xv.len() {
            let expect = ((xv[i] << sv[i]) | (xv[i] >> (8 - sv[i]))) & 0xFF;
            assert_eq!(ys[i], expect, "pattern {i}");
        }
    }

    #[test]
    fn max_unit_selects_max() {
        let net = max_unit(6, 4);
        let vs: [[u64; 4]; 5] = [
            [1, 2, 3, 4],
            [63, 0, 0, 0],
            [10, 10, 10, 10],
            [5, 60, 2, 59],
            [0, 0, 0, 1],
        ];
        let mut words = Vec::new();
        for k in 0..4 {
            let col: Vec<u64> = vs.iter().map(|row| row[k]).collect();
            words.extend(stimulus_for(6, &col));
        }
        let res = net.simulate(&words);
        let got = read_bus_response(&res, vs.len());
        for (i, row) in vs.iter().enumerate() {
            assert_eq!(got[i], *row.iter().max().unwrap(), "pattern {i}");
        }
    }

    #[test]
    fn priority_encoder_grants_highest_priority() {
        let net = priority_encoder(8);
        // pattern: req = 0b0010_0100, all enabled → channel 2 wins
        let reqv = [0b0010_0100u64, 0b0000_0000, 0b1000_0000];
        let env = [0xFFu64, 0xFF, 0xFF];
        let mut words = stimulus_for(8, &reqv);
        words.extend(stimulus_for(8, &env));
        let res = net.simulate(&words);
        let grants = read_bus_response(&res[..8], reqv.len());
        assert_eq!(grants[0], 0b0000_0100);
        assert_eq!(grants[1], 0);
        assert_eq!(grants[2], 0b1000_0000);
        let idx = read_bus_response(&res[8..11], reqv.len());
        assert_eq!(idx[0], 2);
        assert_eq!(idx[2], 7);
        let any = read_bus_response(&res[11..12], reqv.len());
        assert_eq!(any, vec![1, 0, 1]);
    }

    #[test]
    fn priority_encoder_respects_enables() {
        let net = priority_encoder(4);
        let reqv = [0b0011u64];
        let env = [0b0010u64]; // channel 0 disabled
        let mut words = stimulus_for(4, &reqv);
        words.extend(stimulus_for(4, &env));
        let res = net.simulate(&words);
        let grants = read_bus_response(&res[..4], 1);
        assert_eq!(grants[0], 0b0010);
    }

    #[test]
    fn alu_computes_all_ops() {
        let bits = 5;
        let net = alu(bits);
        let av = [7u64, 31, 12, 25];
        let bv = [9u64, 1, 12, 6];
        for (opcode, f) in [
            (0u64, (|a: u64, b: u64| (a + b) & 31) as fn(u64, u64) -> u64),
            (1, |a, b| a & b),
            (2, |a, b| a | b),
            (3, |a, b| a ^ b),
        ] {
            let mut words = stimulus_for(bits, &av);
            words.extend(stimulus_for(bits, &bv));
            words.extend(stimulus_for(2, &[opcode; 4]));
            let res = net.simulate(&words);
            let ys = read_bus_response(&res[..bits], av.len());
            let zf = read_bus_response(&res[bits..bits + 1], av.len());
            for i in 0..av.len() {
                let expect = f(av[i], bv[i]);
                assert_eq!(ys[i], expect, "op {opcode} pattern {i}");
                assert_eq!(zf[i], u64::from(expect == 0), "zf op {opcode} pattern {i}");
            }
        }
    }

    #[test]
    fn parity_tree_is_xor() {
        let net = parity_tree(9);
        let xv = [0u64, 1, 0b101, 0x1FF, 0b110110011];
        let words = stimulus_for(9, &xv);
        let res = net.simulate(&words);
        let p = read_bus_response(&res, xv.len());
        for i in 0..xv.len() {
            assert_eq!(p[i], (xv[i].count_ones() % 2) as u64, "pattern {i}");
        }
    }

    #[test]
    fn greater_than_comparator() {
        let mut net = Network::new();
        let a = input_bus(&mut net, "a", 4);
        let b = input_bus(&mut net, "b", 4);
        let gt = greater_than(&mut net, &a, &b);
        net.output("gt", gt);
        let av = [5u64, 3, 9, 15, 0, 8];
        let bv = [3u64, 5, 9, 0, 0, 7];
        let mut words = stimulus_for(4, &av);
        words.extend(stimulus_for(4, &bv));
        let res = net.simulate(&words);
        let got = read_bus_response(&res, av.len());
        for i in 0..av.len() {
            assert_eq!(got[i], u64::from(av[i] > bv[i]), "pattern {i}");
        }
    }
}
