//! The named benchmark registry: every circuit the paper's evaluation
//! mentions, in its Table 2 / Figure 4 groupings.

use crate::arith::{array_multiplier, carry_lookahead_adder, restoring_divider, ripple_adder};
use crate::buses::{input_bus, output_bus};
use crate::control::{alu, barrel_shifter, greater_than, max_unit, priority_encoder};
use crate::rand_logic::random_control;
use esyn_eqn::{Network, NodeId};

/// A named benchmark circuit.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Name as used in the paper's tables (e.g. `adder`, `3_3`, `C5315`).
    pub name: &'static str,
    /// Originating suite as cited by the paper.
    pub suite: &'static str,
    /// The generated network.
    pub network: Network,
}

fn bench(name: &'static str, suite: &'static str, network: Network) -> Benchmark {
    Benchmark {
        name,
        suite,
        network,
    }
}

/// The 14 circuits of Table 2, in the paper's row order.
pub fn table2_benchmarks() -> Vec<Benchmark> {
    vec![
        bench("adder", "EPFL", ripple_adder(32)),
        bench("bar", "EPFL", barrel_shifter(4)),
        bench("max", "EPFL", max_unit(8, 4)),
        bench("cavlc", "EPFL", random_control(10, 11, 14, 0xCA71C)),
        bench("3_3", "genmul", array_multiplier(3, 3)),
        bench("5_5", "genmul", array_multiplier(5, 5)),
        bench("qdiv", "opencore", restoring_divider(8)),
        bench("C5315", "LGSynth91", c5315_like()),
        bench("i7", "LGSynth91", random_control(26, 16, 12, 0x17_0007)),
        bench("c7552", "ISCAS85", c7552_like()),
        bench("c2670", "ISCAS85", c2670_like()),
        bench("frg2", "LGSynth89", random_control(24, 20, 14, 0xF262)),
        bench("C432", "LGSynth89", priority_encoder(18)),
        bench("b12", "ITC99", random_control(15, 12, 10, 0xB12)),
    ]
}

/// The three circuits of Figure 4 (sampling-size sweep): `alu4`, `pair`,
/// `qadd`.
pub fn fig4_benchmarks() -> Vec<Benchmark> {
    vec![
        bench("alu4", "MCNC", alu(4)),
        bench("pair", "MCNC", random_control(18, 12, 14, 0x9A12)),
        bench("qadd", "opencore", carry_lookahead_adder(8)),
    ]
}

/// All named benchmarks (Table 2 ∪ Figure 4).
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = table2_benchmarks();
    v.extend(fig4_benchmarks());
    v
}

/// Looks up a benchmark circuit by its paper name.
pub fn by_name(name: &str) -> Option<Network> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| b.network)
}

/// `C5315`-style block: an ALU-plus-selector datapath (the original is a
/// 9-bit ALU and selector). Combines an 8-bit ALU slice, an operand
/// selector and a magnitude comparator.
fn c5315_like() -> Network {
    let mut net = Network::new();
    let bits = 8;
    let a = input_bus(&mut net, "a", bits);
    let b = input_bus(&mut net, "b", bits);
    let c = input_bus(&mut net, "c", bits);
    let op = input_bus(&mut net, "op", 2);
    let sel = net.input("sel");

    // ALU slice (same op encoding as control::alu)
    let mut carry = net.constant(false);
    let mut add = Vec::with_capacity(bits);
    for i in 0..bits {
        let (s, cy) = crate::arith::full_adder(&mut net, a[i], b[i], carry);
        add.push(s);
        carry = cy;
    }
    let mut y = Vec::with_capacity(bits);
    for i in 0..bits {
        let and_i = net.and(a[i], b[i]);
        let or_i = net.or(a[i], b[i]);
        let xor_i = net.xor(a[i], b[i]);
        let lo = net.mux(op[0], and_i, add[i]);
        let hi = net.mux(op[0], xor_i, or_i);
        y.push(net.mux(op[1], hi, lo));
    }
    // selector: z = sel ? y : c
    let z: Vec<NodeId> = (0..bits).map(|i| net.mux(sel, y[i], c[i])).collect();
    let gt = greater_than(&mut net, &y, &c);
    output_bus(&mut net, "y", &y);
    output_bus(&mut net, "z", &z);
    net.output("gt", gt);
    net.output("cout", carry);
    net
}

/// `c7552`-style block: 16-bit adder/comparator with parity checking
/// (the original is a 34-bit adder-comparator with parity).
fn c7552_like() -> Network {
    let mut net = Network::new();
    let bits = 16;
    let a = input_bus(&mut net, "a", bits);
    let b = input_bus(&mut net, "b", bits);
    let mut carry = net.constant(false);
    let mut sum = Vec::with_capacity(bits);
    for i in 0..bits {
        let (s, c) = crate::arith::full_adder(&mut net, a[i], b[i], carry);
        sum.push(s);
        carry = c;
    }
    let gt = greater_than(&mut net, &a, &b);
    // equality via the xor bits
    let diffs: Vec<NodeId> = (0..bits).map(|i| net.xor(a[i], b[i])).collect();
    let any_diff = {
        let mut acc = net.constant(false);
        for &d in &diffs {
            acc = net.or(acc, d);
        }
        acc
    };
    let eq = net.not(any_diff);
    // parity over the sum
    let mut parity = net.constant(false);
    for &s in &sum {
        parity = net.xor(parity, s);
    }
    output_bus(&mut net, "sum", &sum);
    net.output("cout", carry);
    net.output("gt", gt);
    net.output("eq", eq);
    net.output("parity", parity);
    net
}

/// `c2670`-style block: 12-bit ALU slice with priority logic and parity
/// (the original is an ALU-and-controller with parity trees).
fn c2670_like() -> Network {
    let mut net = Network::new();
    let bits = 12;
    let a = input_bus(&mut net, "a", bits);
    let b = input_bus(&mut net, "b", bits);
    let en = input_bus(&mut net, "en", 4);
    // add and and planes
    let mut carry = net.constant(false);
    let mut sum = Vec::with_capacity(bits);
    for i in 0..bits {
        let (s, c) = crate::arith::full_adder(&mut net, a[i], b[i], carry);
        sum.push(s);
        carry = c;
    }
    // priority grant over 4 request groups (3 bits each, OR-reduced)
    let mut blocked = net.constant(false);
    let mut grants = Vec::with_capacity(4);
    for g in 0..4 {
        let group = net.or_many(&[a[3 * g], b[3 * g + 1], sum[3 * g + 2]]);
        let active = net.and(group, en[g]);
        let nb = net.not(blocked);
        grants.push(net.and(active, nb));
        blocked = net.or(blocked, active);
    }
    // parity over inputs
    let mut parity = net.constant(false);
    for &x in a.iter().chain(&b) {
        parity = net.xor(parity, x);
    }
    output_bus(&mut net, "sum", &sum);
    output_bus(&mut net, "grant", &grants);
    net.output("parity", parity);
    net.output("cout", carry);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buses::{read_bus_response, stimulus_for};

    #[test]
    fn table2_has_paper_rows() {
        let benches = table2_benchmarks();
        let names: Vec<&str> = benches.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "adder", "bar", "max", "cavlc", "3_3", "5_5", "qdiv", "C5315", "i7", "c7552",
                "c2670", "frg2", "C432", "b12"
            ]
        );
    }

    #[test]
    fn fig4_names() {
        let names: Vec<&str> = fig4_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["alu4", "pair", "qadd"]);
    }

    #[test]
    fn by_name_finds_every_benchmark() {
        for b in all_benchmarks() {
            assert!(by_name(b.name).is_some(), "{} must resolve", b.name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn all_benchmarks_are_nontrivial_and_deterministic() {
        for b in all_benchmarks() {
            let stats = b.network.stats();
            assert!(stats.gates() >= 20, "{} too small: {stats:?}", b.name);
            assert!(stats.inputs >= 5, "{}", b.name);
            assert!(stats.outputs >= 1, "{}", b.name);
            // regeneration must be identical
            let again = by_name(b.name).unwrap();
            assert_eq!(again.stats(), stats, "{}", b.name);
        }
    }

    #[test]
    fn c7552_like_adds_and_compares() {
        let net = c7552_like();
        let av = [100u64, 65535, 777, 0];
        let bv = [28u64, 1, 777, 0];
        let mut words = stimulus_for(16, &av);
        words.extend(stimulus_for(16, &bv));
        let res = net.simulate(&words);
        let sums = read_bus_response(&res[..16], av.len());
        let gt = read_bus_response(&res[17..18], av.len());
        let eq = read_bus_response(&res[18..19], av.len());
        for i in 0..av.len() {
            assert_eq!(sums[i], (av[i] + bv[i]) & 0xFFFF, "sum {i}");
            assert_eq!(gt[i], u64::from(av[i] > bv[i]), "gt {i}");
            assert_eq!(eq[i], u64::from(av[i] == bv[i]), "eq {i}");
        }
    }

    #[test]
    fn c5315_like_selector_behaviour() {
        let net = c5315_like();
        // op = 00 (add), sel = 1 → z = y = a + b
        let av = [12u64, 200];
        let bv = [30u64, 55];
        let cv = [99u64, 99];
        let mut words = stimulus_for(8, &av);
        words.extend(stimulus_for(8, &bv));
        words.extend(stimulus_for(8, &cv));
        words.extend(stimulus_for(2, &[0, 0]));
        words.extend(stimulus_for(1, &[1, 0]));
        let res = net.simulate(&words);
        let y = read_bus_response(&res[..8], av.len());
        let z = read_bus_response(&res[8..16], av.len());
        assert_eq!(y[0], (av[0] + bv[0]) & 0xFF);
        assert_eq!(z[0], y[0], "sel=1 selects the ALU result");
        assert_eq!(z[1], cv[1], "sel=0 selects the bypass operand");
    }

    #[test]
    fn c2670_like_has_expected_interface() {
        let net = c2670_like();
        assert_eq!(net.num_inputs(), 12 + 12 + 4);
        assert_eq!(net.num_outputs(), 12 + 4 + 2);
    }

    #[test]
    fn suites_match_paper_citations() {
        let benches = table2_benchmarks();
        let suite_of = |n: &str| {
            benches
                .iter()
                .find(|b| b.name == n)
                .map(|b| b.suite)
                .unwrap()
        };
        assert_eq!(suite_of("adder"), "EPFL");
        assert_eq!(suite_of("3_3"), "genmul");
        assert_eq!(suite_of("qdiv"), "opencore");
        assert_eq!(suite_of("c7552"), "ISCAS85");
        assert_eq!(suite_of("b12"), "ITC99");
    }
}
