//! Arithmetic blocks: adders, multipliers, dividers.

use crate::buses::{input_bus, output_bus};
use esyn_eqn::{Network, NodeId};

/// Ripple-carry adder: `sum = a + b` with carry-out. Deep and small — the
/// profile of the EPFL `adder` benchmark (large delay, modest area).
pub fn ripple_adder(bits: usize) -> Network {
    let mut net = Network::new();
    let a = input_bus(&mut net, "a", bits);
    let b = input_bus(&mut net, "b", bits);
    let mut carry = net.constant(false);
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let (s, c) = full_adder(&mut net, a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    output_bus(&mut net, "sum", &sums);
    net.output("cout", carry);
    net
}

/// Carry-lookahead adder (4-bit groups): the OpenCores-flavoured `qadd`
/// quick adder. Shallower but larger than the ripple design.
pub fn carry_lookahead_adder(bits: usize) -> Network {
    let mut net = Network::new();
    let a = input_bus(&mut net, "a", bits);
    let b = input_bus(&mut net, "b", bits);
    // generate/propagate per bit
    let g: Vec<NodeId> = (0..bits).map(|i| net.and(a[i], b[i])).collect();
    let p: Vec<NodeId> = (0..bits).map(|i| net.xor(a[i], b[i])).collect();
    // carries: c[i+1] = g[i] + p[i] c[i], expanded per 4-bit group
    let mut c = vec![net.constant(false)];
    for i in 0..bits {
        if i % 4 == 0 {
            // group boundary: expand the lookahead expression fully from
            // the group carry-in
            let cin = *c.last().expect("carry chain non-empty");
            let hi = (i + 4).min(bits);
            for j in i..hi {
                // c[j+1] = g[j] + p[j]g[j-1] + ... + p[j..i] cin
                let mut terms: Vec<NodeId> = Vec::new();
                for k in (i..=j).rev() {
                    let mut t = g[k];
                    for m in (k + 1)..=j {
                        t = net.and(t, p[m]);
                    }
                    terms.push(t);
                }
                let mut tail = cin;
                for m in i..=j {
                    tail = net.and(tail, p[m]);
                }
                terms.push(tail);
                let cj = net.or_many(&terms);
                c.push(cj);
            }
        }
    }
    let sums: Vec<NodeId> = (0..bits).map(|i| net.xor(p[i], c[i])).collect();
    output_bus(&mut net, "sum", &sums);
    net.output("cout", c[bits]);
    net
}

/// genmul-style unsigned array multiplier: `prod = a * b`, with `wa`- and
/// `wb`-bit operands (the paper's `3_3` and `5_5` circuits).
pub fn array_multiplier(wa: usize, wb: usize) -> Network {
    let mut net = Network::new();
    let a = input_bus(&mut net, "a", wa);
    let b = input_bus(&mut net, "b", wb);
    let width = wa + wb;
    let zero = net.constant(false);
    let mut acc: Vec<NodeId> = vec![zero; width];
    for (j, &bj) in b.iter().enumerate() {
        // partial product row j
        let row: Vec<NodeId> = a.iter().map(|&ai| net.and(ai, bj)).collect();
        // add row << j into acc (ripple)
        let mut carry = zero;
        for k in 0..width - j {
            let addend = if k < wa { row[k] } else { zero };
            let (s, c) = full_adder(&mut net, acc[j + k], addend, carry);
            acc[j + k] = s;
            carry = c;
        }
    }
    output_bus(&mut net, "prod", &acc);
    net
}

/// Restoring divider: `quot = n / d`, `rem = n % d` for `bits`-bit
/// operands (the OpenCores `qdiv` fixed-point divider, combinational).
/// Division by zero yields all-ones quotient and `rem = n`, matching the
/// usual restoring-array convention.
pub fn restoring_divider(bits: usize) -> Network {
    let mut net = Network::new();
    let n = input_bus(&mut net, "n", bits);
    let d = input_bus(&mut net, "d", bits);
    let zero = net.constant(false);

    // d == 0 detector
    let d_any = {
        let mut acc = zero;
        for &b in &d {
            acc = net.or(acc, b);
        }
        acc
    };
    let d_is_zero = net.not(d_any);

    // Remainder register, one restoring step per quotient bit (MSB first).
    let mut rem: Vec<NodeId> = vec![zero; bits];
    let mut quot: Vec<NodeId> = vec![zero; bits];
    for step in (0..bits).rev() {
        // shift remainder left, bring in n[step]
        let mut shifted = Vec::with_capacity(bits);
        shifted.push(n[step]);
        for k in 0..bits - 1 {
            shifted.push(rem[k]);
        }
        // trial subtract: shifted - d
        let mut borrow = zero;
        let mut diff = Vec::with_capacity(bits);
        for k in 0..bits {
            let (dk, bk) = full_subtractor(&mut net, shifted[k], d[k], borrow);
            diff.push(dk);
            borrow = bk;
        }
        // if no borrow, subtraction fits: take diff, quotient bit 1
        let fits = net.not(borrow);
        quot[step] = fits;
        for k in 0..bits {
            rem[k] = net.mux(fits, diff[k], shifted[k]);
        }
    }
    // div-by-zero convention
    let ones = net.constant(true);
    for q in &mut quot {
        *q = net.mux(d_is_zero, ones, *q);
    }
    for (k, r) in rem.iter_mut().enumerate() {
        *r = net.mux(d_is_zero, n[k], *r);
    }
    output_bus(&mut net, "quot", &quot);
    output_bus(&mut net, "rem", &rem);
    net
}

/// One-bit full adder; returns (sum, carry).
pub(crate) fn full_adder(net: &mut Network, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = net.xor(a, b);
    let s = net.xor(axb, cin);
    let g = net.and(a, b);
    let p = net.and(axb, cin);
    let c = net.or(g, p);
    (s, c)
}

/// One-bit full subtractor computing `a - b - bin`; returns (diff, borrow).
fn full_subtractor(net: &mut Network, a: NodeId, b: NodeId, bin: NodeId) -> (NodeId, NodeId) {
    let axb = net.xor(a, b);
    let d = net.xor(axb, bin);
    let na = net.not(a);
    let t1 = net.and(na, b);
    let naxb = net.not(axb);
    let t2 = net.and(naxb, bin);
    let borrow = net.or(t1, t2);
    (d, borrow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buses::{read_bus_response, stimulus_for};

    fn drive_two_buses(net: &Network, wa: usize, wb: usize, av: &[u64], bv: &[u64]) -> Vec<u64> {
        let mut words = stimulus_for(wa, av);
        words.extend(stimulus_for(wb, bv));
        net.simulate(&words)
    }

    #[test]
    fn ripple_adder_adds() {
        let bits = 8;
        let net = ripple_adder(bits);
        let av = [0u64, 1, 37, 200, 255, 128, 99, 250];
        let bv = [0u64, 1, 91, 60, 255, 128, 1, 250];
        let res = drive_two_buses(&net, bits, bits, &av, &bv);
        let sums = read_bus_response(&res[..bits], av.len());
        let couts = read_bus_response(&res[bits..], av.len());
        for i in 0..av.len() {
            let expect = av[i] + bv[i];
            assert_eq!(sums[i], expect & 0xFF, "pattern {i}");
            assert_eq!(couts[i], expect >> 8, "carry {i}");
        }
    }

    #[test]
    fn cla_matches_ripple() {
        let bits = 12;
        let r = ripple_adder(bits);
        let c = carry_lookahead_adder(bits);
        let av = [5u64, 4095, 1024, 777, 2048, 4000];
        let bv = [9u64, 4095, 3071, 333, 2048, 95];
        let rr = drive_two_buses(&r, bits, bits, &av, &bv);
        let cc = drive_two_buses(&c, bits, bits, &av, &bv);
        let mask = (1u64 << av.len()) - 1;
        for (x, y) in rr.iter().zip(&cc) {
            assert_eq!(x & mask, y & mask);
        }
        // CLA must be shallower
        assert!(c.stats().depth < r.stats().depth);
    }

    #[test]
    fn multiplier_multiplies() {
        for (wa, wb) in [(3, 3), (5, 5), (4, 6)] {
            let net = array_multiplier(wa, wb);
            let max_a = (1u64 << wa) - 1;
            let max_b = (1u64 << wb) - 1;
            let av: Vec<u64> = (0..40).map(|i| (i * 7 + 3) & max_a).collect();
            let bv: Vec<u64> = (0..40).map(|i| (i * 13 + 1) & max_b).collect();
            let res = drive_two_buses(&net, wa, wb, &av, &bv);
            let prods = read_bus_response(&res, av.len());
            for i in 0..av.len() {
                assert_eq!(prods[i], av[i] * bv[i], "{}x{} pattern {i}", wa, wb);
            }
        }
    }

    #[test]
    fn divider_divides() {
        let bits = 6;
        let net = restoring_divider(bits);
        let nv: Vec<u64> = (0..50).map(|i| (i * 11 + 5) % 64).collect();
        let dv: Vec<u64> = (0..50).map(|i| (i * 3 + 1) % 64).collect();
        let res = drive_two_buses(&net, bits, bits, &nv, &dv);
        let quots = read_bus_response(&res[..bits], nv.len());
        let rems = read_bus_response(&res[bits..], nv.len());
        for i in 0..nv.len() {
            if dv[i] == 0 {
                assert_eq!(quots[i], 63, "div-by-zero quotient, pattern {i}");
                assert_eq!(rems[i], nv[i], "div-by-zero remainder, pattern {i}");
            } else {
                assert_eq!(quots[i], nv[i] / dv[i], "q pattern {i}");
                assert_eq!(rems[i], nv[i] % dv[i], "r pattern {i}");
            }
        }
    }

    #[test]
    fn divider_handles_zero_divisor_patterns() {
        let bits = 4;
        let net = restoring_divider(bits);
        let nv = [7u64, 15, 0, 9];
        let dv = [0u64, 0, 0, 3];
        let res = drive_two_buses(&net, bits, bits, &nv, &dv);
        let quots = read_bus_response(&res[..bits], nv.len());
        assert_eq!(quots[0], 15);
        assert_eq!(quots[1], 15);
        assert_eq!(quots[3], 3);
    }
}
