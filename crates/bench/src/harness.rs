//! A minimal, dependency-free stand-in for the parts of `criterion` the
//! micro-bench uses: [`Criterion`] with `bench_function`, plus
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: warm up for `warm_up_time`, size each sample so the
//! whole run fits in roughly `measurement_time`, then report the min /
//! median / max nanoseconds per iteration over `sample_size` samples.
//!
//! Set `ESYN_BENCH_FAST=1` to collapse every benchmark to a single
//! iteration — used by CI to smoke-run bench binaries without paying
//! measurement time.

use std::time::{Duration, Instant};

/// Benchmark driver configuration and result sink (criterion-compatible
/// subset).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time run before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    fn fast_mode() -> bool {
        std::env::var_os("ESYN_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty())
    }

    /// Runs one named benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly once with the workload.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            cfg: if Self::fast_mode() {
                Criterion {
                    sample_size: 1,
                    measurement_time: Duration::ZERO,
                    warm_up_time: Duration::ZERO,
                }
            } else {
                self.clone()
            },
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(r) => println!(
                "{name:<40} {:>12} ns/iter  (min {}, max {}; {} samples x {} iters)",
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.samples,
                r.iters_per_sample,
            ),
            None => println!("{name:<40} <no measurement: Bencher::iter never called>"),
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

struct Report {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Times a single workload closure; handed to `bench_function` callbacks.
pub struct Bencher {
    cfg: Criterion,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `f`, recording per-iteration wall time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up, which doubles as the per-iteration cost estimate.
        let warm_start = Instant::now();
        std::hint::black_box(f());
        let mut warm_iters = 1u32;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / f64::from(warm_iters);

        let samples = self.cfg.sample_size;
        let target_sample_secs = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = if per_iter > 0.0 {
            ((target_sample_secs / per_iter) as u64).clamp(1, 1_000_000)
        } else {
            1
        };

        let mut ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            ns.push(t0.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        self.report = Some(Report {
            median_ns: ns[ns.len() / 2],
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
            samples,
            iters_per_sample,
        });
    }
}

/// Declares a bench group function (criterion-compatible named form):
/// builds the configured [`Criterion`] and runs each target with it.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `fn main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs_workload() {
        std::env::set_var("ESYN_BENCH_FAST", "1");
        let mut hits = 0u64;
        Criterion::default().bench_function("harness/self-test", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0, "workload closure never ran");
    }
}
