//! Shared infrastructure for the experiment benches: cached cost models,
//! the common saturation budget, candidate measurement with memoisation,
//! and table-formatting helpers.
//!
//! Every `cargo bench -p esyn-bench --bench <name>` target regenerates one
//! table or figure of the paper; see DESIGN.md's experiment index.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub use harness::{Bencher, Criterion};

use esyn_core::{
    extract_pool_with, lang::network_to_recexpr, rules::all_rules, saturate, train_cost_models,
    BoolLang, CostModels, Objective, PoolConfig, SaturationLimits, TrainConfig,
};
use esyn_egraph::RecExpr;
use esyn_eqn::Network;
use esyn_techmap::{Library, QorReport};
use std::collections::HashMap;
use std::path::PathBuf;

/// The saturation budget used by all experiment benches (scaled from the
/// paper's 300 s / 2.5 M nodes to laptop-bench size).
pub fn bench_limits() -> SaturationLimits {
    SaturationLimits {
        iter_limit: 12,
        node_limit: 20_000,
        time_limit: std::time::Duration::from_secs(10),
    }
}

/// Directory where trained models are cached between bench runs.
pub fn model_cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/esyn-bench-models")
}

/// Loads the shared cost models, training and caching them on first use
/// (300 circuits, paper hyper-parameters).
pub fn shared_models(lib: &Library) -> CostModels {
    let dir = model_cache_dir();
    if let Some(models) = CostModels::load(&dir) {
        return models;
    }
    eprintln!(
        "[bench] training cost models (cached under {})...",
        dir.display()
    );
    let models = train_cost_models(&TrainConfig::default(), lib);
    if let Err(e) = models.save(&dir) {
        eprintln!("[bench] model cache write failed: {e}");
    }
    models
}

/// A network saturated once, ready for repeated pool extraction. Reusing
/// one saturation across pool sizes keeps sample streams prefix-closed
/// (the e-graph is identical), which Figure 4's sweep relies on.
pub struct SaturatedCircuit {
    runner: esyn_egraph::Runner<BoolLang, esyn_core::ConstFold>,
    expr: RecExpr<BoolLang>,
    names: Vec<String>,
}

impl SaturatedCircuit {
    /// Saturates `net` under [`bench_limits`].
    pub fn new(net: &Network) -> Self {
        let expr = network_to_recexpr(net);
        let runner = saturate(&expr, &all_rules(), &bench_limits());
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        SaturatedCircuit {
            runner,
            expr,
            names,
        }
    }

    /// Extracts a pool of the given size (original form included).
    pub fn pool(&self, samples: usize, seed: u64) -> Vec<RecExpr<BoolLang>> {
        extract_pool_with(
            &self.runner.egraph,
            self.runner.roots[0],
            Some(&self.expr),
            &PoolConfig::with_samples(samples, seed),
        )
    }

    /// Output names for materialising candidates.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Saturates a network once and extracts a pool, returning both the pool
/// and the output names needed to materialise candidates.
pub fn saturate_and_pool(
    net: &Network,
    samples: usize,
    seed: u64,
) -> (Vec<RecExpr<BoolLang>>, Vec<String>) {
    let sat = SaturatedCircuit::new(net);
    let pool = sat.pool(samples, seed);
    (pool, sat.names().to_vec())
}

/// Measures candidates through the shared backend, memoising by candidate
/// identity so prefix sweeps (Figure 4) pay for each form once.
#[derive(Default)]
pub struct QorCache {
    map: HashMap<RecExpr<BoolLang>, QorReport>,
}

impl QorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns QoR for every candidate, measuring only unseen ones.
    pub fn measure(
        &mut self,
        pool: &[RecExpr<BoolLang>],
        names: &[String],
        lib: &Library,
        objective: Objective,
    ) -> Vec<QorReport> {
        let missing: Vec<RecExpr<BoolLang>> = pool
            .iter()
            .filter(|c| !self.map.contains_key(*c))
            .cloned()
            .collect();
        if !missing.is_empty() {
            let qors = esyn_core::flow::measure_pool(&missing, names, lib, objective, None);
            for (cand, q) in missing.into_iter().zip(qors) {
                self.map.insert(cand, q);
            }
        }
        pool.iter().map(|c| self.map[c]).collect()
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or when no entry is positive.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    assert!(!logs.is_empty(), "geomean needs positive values");
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Prints a horizontal rule sized for the experiment tables.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn qor_cache_dedups() {
        let lib = Library::asap7_like();
        let net = esyn_eqn::parse_eqn("INORDER = a b;\nOUTORDER = f;\nf = a*b;\n").unwrap();
        let (pool, names) = saturate_and_pool(&net, 4, 1);
        let mut cache = QorCache::new();
        let q1 = cache.measure(&pool, &names, &lib, Objective::Delay);
        let q2 = cache.measure(&pool, &names, &lib, Objective::Delay);
        assert_eq!(q1.len(), q2.len());
        for (a, b) in q1.iter().zip(&q2) {
            assert_eq!(a.delay, b.delay);
        }
    }
}
