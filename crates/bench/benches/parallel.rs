//! Serial-vs-parallel wall-clock for the `esyn-par` hot paths: pool
//! extraction on the `adder` generator and CEC on the `5_5` multiplier
//! (against its dc2-resynthesised form), swept over 1/2/4/8 worker
//! threads. Alongside each timing the bench re-checks the determinism
//! contract — every thread count must produce the identical pool and the
//! identical verdict.
//!
//! Record results in EXPERIMENTS.md (§ "Parallel subsystem"). Speedups
//! are only meaningful when the host grants multiple hardware threads;
//! the bench prints the live count so records stay honest.

use esyn_bench::bench_limits;
use esyn_cec::{check_equivalence_par, EquivResult, DEFAULT_SIM_SEED};
use esyn_core::{
    extract_pool_with, lang::network_to_recexpr, rules::all_rules, saturate, Parallelism,
    PoolConfig,
};
use std::time::{Duration, Instant};

/// Minimum wall-clock over `reps` runs of `f`.
fn time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    let fast = std::env::var_os("ESYN_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty());
    let reps = if fast { 1 } else { 3 };
    let threads: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4, 8] };
    println!(
        "parallel: host hardware threads = {}, reps = {reps}",
        esyn_par::hardware_threads()
    );

    // --- extract_pool on the adder generator ---
    let net = esyn_circuits::by_name("adder").expect("adder generator");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &bench_limits());
    println!(
        "adder saturated: {} e-nodes / {} classes",
        runner.egraph.total_nodes(),
        runner.egraph.num_classes()
    );
    let samples = if fast { 16 } else { 100 };
    let pool_at = |t: usize| {
        let cfg = PoolConfig {
            parallelism: Parallelism::Fixed(t),
            ..PoolConfig::with_samples(samples, 0xE5F1)
        };
        extract_pool_with(&runner.egraph, runner.roots[0], Some(&expr), &cfg)
    };
    let reference = pool_at(1);
    let mut serial_ns = 0.0f64;
    for &t in threads {
        assert_eq!(pool_at(t), reference, "pool differs at {t} threads");
        let d = time(reps, || {
            std::hint::black_box(pool_at(t).len());
        });
        let ns = d.as_nanos() as f64;
        if t == 1 {
            serial_ns = ns;
        }
        println!(
            "extract_pool/adder/{samples} samples/{t} threads: {:>10.3} ms  (speedup x{:.2})",
            ns / 1e6,
            serial_ns / ns
        );
    }

    // --- CEC: multiplier vs its dc2 form ---
    let mul = esyn_circuits::by_name("5_5").expect("5_5 multiplier generator");
    let opt = esyn_aig::scripts::dc2(&esyn_aig::Aig::from_network(&mul)).to_network();
    let mut serial_ns = 0.0f64;
    for &t in threads {
        let verdict = check_equivalence_par(&mul, &opt, DEFAULT_SIM_SEED, Parallelism::Fixed(t));
        assert_eq!(verdict, EquivResult::Equivalent, "CEC broke at {t} threads");
        let d = time(reps, || {
            std::hint::black_box(check_equivalence_par(
                &mul,
                &opt,
                DEFAULT_SIM_SEED,
                Parallelism::Fixed(t),
            ));
        });
        let ns = d.as_nanos() as f64;
        if t == 1 {
            serial_ns = ns;
        }
        println!(
            "cec/5_5 vs dc2/{t} threads:           {:>10.3} ms  (speedup x{:.2})",
            ns / 1e6,
            serial_ns / ns
        );
    }
}
