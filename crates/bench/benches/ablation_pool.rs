//! **Ablation**: pool-extraction design choices (DESIGN.md §"ablation").
//!
//! Sweeps the paper's fixed parameters — sub-optimal exploration
//! probability `p = 0.2` and strategy ratio `1:3` — and reports the best
//! measured delay/area in the resulting pools, plus the pool diversity
//! (distinct candidates).
//!
//! ```text
//! cargo bench -p esyn-bench --bench ablation_pool
//! ```

use esyn_bench::{bench_limits, hr, QorCache};
use esyn_core::{
    extract_pool, lang::network_to_recexpr, rules::all_rules, saturate, Objective, PoolConfig,
};
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    let circuits = ["alu4", "3_3", "cavlc"];

    println!();
    println!("Ablation: pool composition (p = sub-optimal probability, a:b = strategy ratio)");
    hr(92);
    println!(
        "{:<8} {:>6} {:>6} {:>8} {:>12} {:>12}",
        "circuit", "p", "a:b", "pool", "min delay", "min area"
    );
    hr(92);

    for name in circuits {
        let net = esyn_circuits::by_name(name).expect("ablation circuit");
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let expr = network_to_recexpr(&net);
        let runner = saturate(&expr, &all_rules(), &bench_limits());
        let mut cache = QorCache::new();

        let variants: [(f64, (u32, u32)); 6] = [
            (0.0, (1, 0)), // only strategy (a): no sub-optimal exploration
            (0.0, (1, 3)), // paper ratio but p = 0 (b degenerates to a)
            (0.2, (1, 3)), // the paper's setting
            (0.2, (0, 1)), // only strategy (b)
            (0.5, (1, 3)), // aggressive exploration
            (0.9, (1, 3)), // near-random choices
        ];
        for (p, ratio) in variants {
            let cfg = PoolConfig {
                num_samples: 60,
                p_suboptimal: p,
                ratio,
                seed: 0xAB1A7E,
                ..Default::default()
            };
            let pool = extract_pool(&runner.egraph, runner.roots[0], &cfg);
            let qors = cache.measure(&pool, &names, &lib, Objective::Delay);
            let best_d = qors.iter().map(|q| q.delay).fold(f64::INFINITY, f64::min);
            let best_a = qors.iter().map(|q| q.area).fold(f64::INFINITY, f64::min);
            println!(
                "{name:<8} {p:>6.1} {:>6} {:>8} {best_d:>12.2} {best_a:>12.2}",
                format!("{}:{}", ratio.0, ratio.1),
                pool.len()
            );
        }
        hr(92);
    }
    println!("expected shape: moderate exploration (the paper's p=0.2, 1:3) finds pools at");
    println!("least as good as pure-greedy sampling, with more distinct candidates");
}
