//! **Table 2**: QoR of E-Syn and the ABC synthesis flow under
//! delay-oriented, area-oriented and balanced constraints, over the 14
//! benchmark circuits, with GEOMEAN and improvement rows.
//!
//! Paper reference values: 15.29 % delay improvement (delay-oriented),
//! 6.42 % area improvement (area-oriented), 4.26 % / 6.71 % (balanced).
//!
//! ```text
//! cargo bench -p esyn-bench --bench table2_qor
//! ```

use esyn_bench::{bench_limits, geomean, hr, shared_models};
use esyn_core::{abc_baseline, esyn_optimize, EsynConfig, Objective, PoolConfig};
use esyn_techmap::{Library, QorReport};

fn main() {
    let lib = Library::asap7_like();
    let models = shared_models(&lib);
    let benches = esyn_circuits::table2_benchmarks();

    let objectives = [
        ("delay-oriented", Objective::Delay),
        ("area-oriented", Objective::Area),
        ("balanced", Objective::Balanced),
    ];

    // rows[circuit][objective] = (abc, esyn)
    let mut rows: Vec<(String, Vec<(QorReport, QorReport)>)> = Vec::new();
    for b in &benches {
        eprintln!("[table2] {} ({})...", b.name, b.suite);
        let mut per_obj = Vec::new();
        for &(_, obj) in &objectives {
            let abc = abc_baseline(&b.network, &lib, obj, None);
            let cfg = EsynConfig {
                limits: bench_limits(),
                pool: PoolConfig::with_samples(60, 0x7AB1E2),
                verify: true,
                target_delay: None,
                use_choices: false,
                parallelism: esyn_core::Parallelism::Auto,
            };
            let esyn = esyn_optimize(&b.network, &models, &lib, obj, &cfg);
            per_obj.push((abc, esyn.qor));
        }
        rows.push((format!("{} ({})", b.name, b.suite), per_obj));
    }

    // ---- print the table in the paper's layout ----
    println!();
    println!("Table 2: QoR of E-Syn and ABC synthesis flow under different constraints");
    hr(150);
    println!(
        "{:<18} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "Circuit",
        "ABC-D a", "ABC-D d",
        "ESyn-D a", "ESyn-D d",
        "ABC-A a", "ABC-A d",
        "ESyn-A a", "ESyn-A d",
        "ABC-B a", "ABC-B d",
        "ESyn-B a", "ESyn-B d",
    );
    hr(150);
    for (name, per_obj) in &rows {
        print!("{name:<18}");
        for (abc, esyn) in per_obj {
            print!(
                " | {:10.1} {:10.2} | {:10.1} {:10.2}",
                abc.area, abc.delay, esyn.area, esyn.delay
            );
            // interleaved layout: ABC then ESyn per objective
        }
        println!();
    }
    hr(150);

    // GEOMEAN + improvements, per objective
    let mut summary = Vec::new();
    for (oi, (oname, _)) in objectives.iter().enumerate() {
        let abc_area: Vec<f64> = rows.iter().map(|(_, r)| r[oi].0.area).collect();
        let abc_delay: Vec<f64> = rows.iter().map(|(_, r)| r[oi].0.delay).collect();
        let es_area: Vec<f64> = rows.iter().map(|(_, r)| r[oi].1.area).collect();
        let es_delay: Vec<f64> = rows.iter().map(|(_, r)| r[oi].1.delay).collect();
        let ga = geomean(&abc_area);
        let gd = geomean(&abc_delay);
        let ea = geomean(&es_area);
        let ed = geomean(&es_delay);
        println!(
            "GEOMEAN {oname:<16}: ABC area {ga:10.2} delay {gd:10.2} | E-Syn area {ea:10.2} delay {ed:10.2}"
        );
        summary.push((oname, ga, gd, ea, ed));
    }
    hr(150);
    let (_, ga, gd, ea, ed) = summary[0];
    println!(
        "Improvement (delay-oriented, delay): {:+.2}%   [paper: 15.29%]",
        100.0 * (gd - ed) / gd
    );
    let _ = (ga, ea);
    let (_, ga, _gd, ea, _ed) = summary[1];
    println!(
        "Improvement (area-oriented, area):   {:+.2}%   [paper: 6.42%]",
        100.0 * (ga - ea) / ga
    );
    let (_, ga, gd, ea, ed) = summary[2];
    println!(
        "Improvement (balanced, area):        {:+.2}%   [paper: 4.26%]",
        100.0 * (ga - ea) / ga
    );
    println!(
        "Improvement (balanced, delay):       {:+.2}%   [paper: 6.71%]",
        100.0 * (gd - ed) / gd
    );
}
