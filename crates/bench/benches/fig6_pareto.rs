//! **Figure 6**: design-space scatter and Pareto frontiers of the baseline
//! ABC flow (delay-target sweep) vs. all E-Syn pool candidates, for `frg2`
//! and `max`.
//!
//! Paper reference: "the design points from E-Syn span a wider range in
//! the delay-area plane. In both designs, the frontier of E-Syn completely
//! dominates."
//!
//! ```text
//! cargo bench -p esyn-bench --bench fig6_pareto
//! ```

use esyn_bench::{hr, saturate_and_pool, QorCache};
use esyn_core::pareto::{frontier_dominates, pareto_front};
use esyn_core::{abc_baseline, Objective};
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    for name in ["frg2", "max"] {
        let net = esyn_circuits::by_name(name).expect("figure 6 circuit");
        println!();
        println!("Figure 6 — {name}: delay vs area with Pareto frontiers");
        hr(64);

        // Baseline: sweep the delay target around the unconstrained result.
        let reference = abc_baseline(&net, &lib, Objective::Delay, None);
        let mut abc_points: Vec<(f64, f64)> = Vec::new();
        for k in 0..10 {
            let target = reference.delay * (0.80 + 0.12 * k as f64);
            for obj in [Objective::Delay, Objective::Area] {
                let q = abc_baseline(&net, &lib, obj, Some(target));
                abc_points.push((q.delay, q.area));
            }
        }
        for &(d, a) in &abc_points {
            println!("abc-point   delay {d:9.2}  area {a:9.2}");
        }

        // E-Syn: every pool candidate.
        let (pool, names) = saturate_and_pool(&net, 60, 0xF16_6);
        let mut cache = QorCache::new();
        let qors = cache.measure(&pool, &names, &lib, Objective::Delay);
        let esyn_points: Vec<(f64, f64)> = qors.iter().map(|q| (q.delay, q.area)).collect();
        for &(d, a) in &esyn_points {
            println!("esyn-point  delay {d:9.2}  area {a:9.2}");
        }

        let abc_front = pareto_front(&abc_points);
        let esyn_front = pareto_front(&esyn_points);
        println!(
            "abc-frontier  ({} points): {:?}",
            abc_front.len(),
            abc_front
        );
        println!(
            "esyn-frontier ({} points): {:?}",
            esyn_front.len(),
            esyn_front
        );

        let spread = |pts: &[(f64, f64)]| {
            let dmin = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let dmax = pts.iter().map(|p| p.0).fold(0.0f64, f64::max);
            let amin = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let amax = pts.iter().map(|p| p.1).fold(0.0f64, f64::max);
            (dmax - dmin, amax - amin)
        };
        let (abc_ds, abc_as) = spread(&abc_points);
        let (es_ds, es_as) = spread(&esyn_points);
        println!(
            "span: abc delay {abc_ds:.2} area {abc_as:.2} | esyn delay {es_ds:.2} area {es_as:.2}"
        );
        if frontier_dominates(&esyn_front, &abc_front) {
            println!("verdict: E-Syn frontier dominates   [paper: dominates on both]");
        } else if frontier_dominates(&abc_front, &esyn_front) {
            println!("verdict: baseline frontier dominates");
        } else {
            println!("verdict: frontiers cross");
        }
    }
}
