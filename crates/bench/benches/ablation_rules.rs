//! **Ablation**: contribution of each Table 1 rule class. Saturates with
//! one class removed at a time and reports e-graph growth plus the best
//! post-mapping delay/area found in a fixed-size pool.
//!
//! ```text
//! cargo bench -p esyn-bench --bench ablation_rules
//! ```

use esyn_bench::{bench_limits, hr, QorCache};
use esyn_core::BoolLang;
use esyn_core::{extract_pool, lang::network_to_recexpr, rules, saturate, Objective, PoolConfig};
use esyn_egraph::Rewrite;
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    let circuits = ["alu4", "3_3"];

    println!();
    println!("Ablation: Table 1 rule classes (saturate without one class at a time)");
    hr(104);
    println!(
        "{:<8} {:<18} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "circuit", "rules", "e-nodes", "classes", "pool", "min delay", "min area"
    );
    hr(104);

    for name in circuits {
        let net = esyn_circuits::by_name(name).expect("ablation circuit");
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let expr = network_to_recexpr(&net);
        let mut cache = QorCache::new();

        let mut variants: Vec<(String, Vec<Rewrite<BoolLang>>)> =
            vec![("all".to_owned(), rules::all_rules())];
        for class in rules::ALL_CLASSES {
            variants.push((format!("-{class:?}"), rules::rules_without(class)));
        }

        for (label, ruleset) in variants {
            let runner = saturate(&expr, &ruleset, &bench_limits());
            let pool = extract_pool(
                &runner.egraph,
                runner.roots[0],
                &PoolConfig::with_samples(40, 0xAB1A7E),
            );
            let qors = cache.measure(&pool, &names, &lib, Objective::Delay);
            let best_d = qors.iter().map(|q| q.delay).fold(f64::INFINITY, f64::min);
            let best_a = qors.iter().map(|q| q.area).fold(f64::INFINITY, f64::min);
            println!(
                "{name:<8} {label:<18} {:>10} {:>10} {:>8} {best_d:>12.2} {best_a:>12.2}",
                runner.egraph.total_nodes(),
                runner.egraph.num_classes(),
                pool.len()
            );
        }
        hr(104);
    }
    println!("expected shape: removing high-leverage classes (distributivity, De Morgan,");
    println!("associativity) shrinks the explored space and worsens the best pool QoR");
}
