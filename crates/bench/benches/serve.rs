//! Load test for the `esyn serve` batch service: concurrent TCP clients
//! against an in-process server, timing a cold pass (every job computes)
//! against a warm pass (every job replays cached bytes); a
//! saturated-e-graph-tier phase comparing warm-saturation against fully
//! cold runs (byte-identical payloads required); a byte-cap pressure
//! phase driving deterministic eviction under a tight byte budget; and
//! a backpressure phase that drives a deliberately tiny queue to
//! overflow.
//!
//! Record results in EXPERIMENTS.md (§ "Batch service"). The cold/warm
//! and warm-saturation ratios are the point of the two cache tiers; on
//! the 1-CPU CI container the absolute times are serialised upper
//! bounds, so record the ratios and the hit counts, not wall-clock
//! folklore.

use esyn_core::{train_cost_models, TrainConfig};
use esyn_serve::json::{self, Json};
use esyn_serve::{serve_tcp, Engine, ServeConfig};
use esyn_techmap::Library;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn submit_line(id: &str, circuit: &str, seed: u64) -> String {
    format!(
        r#"{{"op":"submit","id":"{id}","format":"name","circuit":"{circuit}","config":{{"iter_limit":3,"node_limit":2000,"samples":6,"seed":{seed}}}}}"#
    )
}

/// One client: connect, submit, block for the result. Returns the
/// reply's `cached` flag.
fn run_client(addr: SocketAddr, line: String) -> bool {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    writeln!(stream, "{line}").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    let v = json::parse(reply.trim_end()).expect("reply JSON");
    assert_eq!(
        v.get("reply").and_then(Json::as_str),
        Some("result"),
        "expected a result line: {reply}"
    );
    v.get("cached")
        .and_then(Json::as_bool)
        .expect("cached flag")
}

/// Fans `jobs` out over one thread per client and waits for every
/// result. Returns (wall-clock, cached-flag per job).
fn fan_out(addr: SocketAddr, jobs: &[(String, String, u64)]) -> (Duration, Vec<bool>) {
    let t0 = Instant::now();
    let clients: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|(id, circuit, seed)| {
            std::thread::spawn(move || run_client(addr, submit_line(&id, &circuit, seed)))
        })
        .collect();
    let cached: Vec<bool> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    (t0.elapsed(), cached)
}

fn main() {
    let fast = std::env::var_os("ESYN_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty());
    let circuits: &[&str] = if fast {
        &["3_3", "qadd"]
    } else {
        &["3_3", "qadd", "b12", "max"]
    };
    let clients = circuits.len() * 2; // two seeds per circuit
    println!(
        "serve: {clients} concurrent clients over {} registry circuits, host hardware threads = {}",
        circuits.len(),
        esyn_par::hardware_threads()
    );

    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);

    // --- cold vs warm: the content-addressed cache under load ---
    let engine = Engine::new(
        models.clone(),
        lib.clone(),
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_bytes: 8 << 20,
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let e = Arc::clone(&engine);
        std::thread::spawn(move || serve_tcp(e, listener))
    };

    let jobs: Vec<(String, String, u64)> = (0..clients)
        .map(|i| {
            (
                format!("c{i}"),
                circuits[i % circuits.len()].to_owned(),
                1 + (i / circuits.len()) as u64,
            )
        })
        .collect();

    let (cold, cold_cached) = fan_out(addr, &jobs);
    let cold_hits = cold_cached.iter().filter(|&&c| c).count();
    let (warm, warm_cached) = fan_out(addr, &jobs);
    let warm_hits = warm_cached.iter().filter(|&&c| c).count();
    assert_eq!(
        warm_hits, clients,
        "every warm job must be served from the cache (no saturation re-run)"
    );
    let s = engine.stats();
    println!(
        "cold: {:>8.1} ms  ({cold_hits}/{clients} cache hits)",
        cold.as_secs_f64() * 1e3
    );
    println!(
        "warm: {:>8.1} ms  ({warm_hits}/{clients} cache hits)  speedup {:.0}x",
        warm.as_secs_f64() * 1e3,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
    println!(
        "stats: submitted={} completed={} computed={} coalesced={} hits={} misses={} evictions={} cache_len={} cache_bytes={}",
        s.submitted,
        s.completed,
        s.computed,
        s.coalesced,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.cache_len,
        s.cache_bytes
    );

    // Shut the server down cleanly so the bench exits.
    {
        let stream = TcpStream::connect(addr).expect("connect for shutdown");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("read ack");
    }
    server.join().expect("acceptor").expect("serve_tcp");

    // --- saturated-e-graph tier: warm saturation vs fully cold ---
    // One worker, sequential submits: per circuit, the first seed
    // saturates and later seeds reuse the saturated e-graph (the result
    // tier never hits — every (circuit, seed) is a distinct key). The
    // control engine disables the tier, so every job saturates from
    // scratch; its payloads must match the warm engine's byte-for-byte.
    // This phase uses a heavier saturation budget and a lighter pool
    // than the load-test line: the tier can only save the saturation
    // share of a job, so the job shape here is the one it is built for
    // (exploration-heavy saturation reused across cheap extractions).
    let sat_submit_line = |id: &str, circuit: &str, seed: u64| -> String {
        format!(
            r#"{{"op":"submit","id":"{id}","format":"name","circuit":"{circuit}","config":{{"iter_limit":8,"node_limit":30000,"samples":2,"seed":{seed}}}}}"#
        )
    };
    let seeds: &[u64] = if fast { &[1, 2, 3] } else { &[1, 2, 3, 4] };
    let submit_collect = |engine: &Arc<Engine>, tag: &str| -> (Duration, Vec<String>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let t0 = Instant::now();
        let mut payloads = Vec::new();
        for circuit in circuits {
            for &seed in seeds {
                let id = format!("{tag}-{circuit}-{seed}");
                engine.handle_line(&sat_submit_line(&id, circuit, seed), &tx);
                let line = rx
                    .recv_timeout(Duration::from_secs(600))
                    .expect("reply within deadline");
                let v = json::parse(&line).expect("reply JSON");
                assert_eq!(
                    v.get("reply").and_then(Json::as_str),
                    Some("result"),
                    "expected a result line: {line}"
                );
                payloads.push(v.get("result").expect("result object").encode());
            }
        }
        (t0.elapsed(), payloads)
    };
    let warm_engine = Engine::new(
        models.clone(),
        lib.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let (t_sat_warm, warm_payloads) = submit_collect(&warm_engine, "w");
    let ws = warm_engine.stats();
    assert_eq!(
        ws.sat_misses as usize,
        circuits.len(),
        "exactly one saturation per circuit on the warm engine"
    );
    assert_eq!(
        ws.sat_hits as usize,
        circuits.len() * (seeds.len() - 1),
        "every later seed must reuse the saturated e-graph"
    );
    warm_engine.shutdown();
    let cold_engine = Engine::new(
        models.clone(),
        lib.clone(),
        ServeConfig {
            workers: 1,
            sat_cache_bytes: 0,
            ..ServeConfig::default()
        },
    );
    let (t_sat_cold, cold_payloads) = submit_collect(&cold_engine, "c");
    assert_eq!(cold_engine.stats().sat_hits, 0, "tier disabled");
    cold_engine.shutdown();
    assert_eq!(
        warm_payloads, cold_payloads,
        "saturated-tier reuse must be byte-identical to cold runs"
    );
    println!(
        "sat-tier: {} jobs ({} circuits x {} seeds) warm {:.1} ms vs cold {:.1} ms -> {:.2}x; sat_hits={} sat_misses={} sat_bytes={}",
        circuits.len() * seeds.len(),
        circuits.len(),
        seeds.len(),
        t_sat_warm.as_secs_f64() * 1e3,
        t_sat_cold.as_secs_f64() * 1e3,
        t_sat_cold.as_secs_f64() / t_sat_warm.as_secs_f64().max(1e-9),
        ws.sat_hits,
        ws.sat_misses,
        ws.sat_bytes,
    );

    // --- byte-cap pressure: deterministic eviction under a tight budget ---
    // Probe one entry's measured charge, then give the result tier room
    // for about three entries and push a dozen distinct jobs through:
    // memory must stay within the budget after every reply, and the
    // final counters must reproduce exactly on a rerun.
    let pressure_jobs: u64 = if fast { 8 } else { 12 };
    let probe = Engine::new(
        models.clone(),
        lib.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    {
        let (tx, rx) = std::sync::mpsc::channel();
        probe.handle_line(&submit_line("probe", circuits[0], 1), &tx);
        let _ = rx
            .recv_timeout(Duration::from_secs(600))
            .expect("probe reply");
    }
    let charge = probe.stats().cache_bytes;
    probe.shutdown();
    let budget = 3 * charge;
    let run_pressure = || -> (usize, usize, u64, u64, u64) {
        let engine = Engine::new(
            models.clone(),
            lib.clone(),
            ServeConfig {
                workers: 1,
                cache_bytes: budget,
                ..ServeConfig::default()
            },
        );
        let (tx, rx) = std::sync::mpsc::channel();
        for seed in 1..=pressure_jobs {
            engine.handle_line(&submit_line(&format!("p{seed}"), circuits[0], seed), &tx);
            let _ = rx
                .recv_timeout(Duration::from_secs(600))
                .expect("pressure reply");
            let s = engine.stats();
            assert!(
                s.cache_bytes <= s.cache_bytes_cap,
                "cache memory exceeded the byte budget: {} > {}",
                s.cache_bytes,
                s.cache_bytes_cap
            );
        }
        let s = engine.stats();
        engine.shutdown();
        (
            s.cache_len,
            s.cache_bytes,
            s.cache_evictions,
            s.cache_hits,
            s.cache_misses,
        )
    };
    let first = run_pressure();
    assert!(
        first.2 >= 1,
        "{pressure_jobs} distinct jobs against a ~3-entry budget must evict"
    );
    assert_eq!(
        run_pressure(),
        first,
        "eviction must be deterministic across reruns"
    );
    println!(
        "byte-cap pressure: budget={budget}B (~3 entries) x {pressure_jobs} distinct jobs -> len={} bytes={} evictions={} (identical across reruns)",
        first.0, first.1, first.2
    );

    // --- backpressure: a cap-2 queue under a deep flood ---
    let engine = Engine::new(
        models,
        lib,
        ServeConfig {
            workers: 1,
            queue_cap: 2,
            cache_bytes: 0,
            sat_cache_bytes: 0,
            ..ServeConfig::default()
        },
    );
    let flood = if fast { 8 } else { 16 };
    let (tx, rx) = std::sync::mpsc::channel();
    let t0 = Instant::now();
    for i in 0..flood {
        engine.handle_line(&submit_line(&format!("f{i}"), circuits[0], 1), &tx);
    }
    let mut results = 0usize;
    let mut busy = 0usize;
    for _ in 0..flood {
        let line = rx
            .recv_timeout(Duration::from_secs(600))
            .expect("reply within deadline");
        let v = json::parse(&line).expect("reply JSON");
        match v.get("reply").and_then(Json::as_str) {
            Some("result") => results += 1,
            Some("busy") => busy += 1,
            other => panic!("unexpected reply {other:?}: {line}"),
        }
    }
    assert!(
        busy >= 1,
        "a cap-2 queue under a {flood}-deep flood must reject"
    );
    println!(
        "backpressure: flood={flood} queue_cap=2 workers=1 -> {results} results, {busy} busy rejections in {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    engine.shutdown();
}
