//! Saturation-engine throughput: e-matching (the read-only search phase
//! over the full Table-1 rule set) and end-to-end equality saturation on
//! registry circuits, swept over worker-thread counts.
//!
//! This is the before/after yardstick for the indexed-matching work
//! (EXPERIMENTS.md § "Saturation engine"): `search-phase` times one full
//! pass of `Rewrite::search` for all 26 rules over a saturated e-graph —
//! the inner loop `Runner::run` repeats every iteration — and `saturate`
//! times the whole run. The thread sweep re-checks the determinism
//! contract: every thread count must produce identical iteration
//! statistics, stop reason and best extraction. Set `ESYN_BENCH_FAST=1`
//! for a smoke run.
//!
//! ```text
//! cargo bench -p esyn-bench --bench saturation
//! ```

use esyn_core::{
    lang::network_to_recexpr, rules::all_rules, saturate_par, Parallelism, SaturationLimits,
};
use esyn_egraph::AstSize;
use std::time::{Duration, Instant};

/// Minimum wall-clock over `reps` runs of `f`.
fn time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Committed golden for the fast-mode `3_3` run: the label-free
/// e-graph checksum and stop reason the engine must reproduce at every
/// thread count (CI runs this bench with the default thread resolution
/// and again with `ESYN_THREADS=1`). A mismatch means the saturation
/// semantics drifted — if the change is intentional (new rules, a
/// different scheduler default, an engine rework), rerun
/// `ESYN_BENCH_FAST=1 cargo bench -p esyn-bench --bench saturation`
/// and update the constant alongside the change that moved it.
const GOLDEN_3_3_FAST_CHECKSUM: u64 = 0x09f2_026c_b87d_05c8;

fn limits(fast: bool) -> SaturationLimits {
    if fast {
        SaturationLimits {
            iter_limit: 4,
            node_limit: 2_000,
            time_limit: Duration::from_secs(5),
        }
    } else {
        SaturationLimits {
            iter_limit: 12,
            node_limit: 20_000,
            time_limit: Duration::from_secs(30),
        }
    }
}

fn main() {
    let fast = std::env::var_os("ESYN_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty());
    let reps = if fast { 1 } else { 5 };
    let circuits: &[&str] = if fast {
        &["3_3"]
    } else {
        &["3_3", "qadd", "C432"]
    };
    let threads: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4] };
    let rules = all_rules();
    println!(
        "saturation: rules = {}, reps = {reps}, host hardware threads = {}",
        rules.len(),
        esyn_par::hardware_threads()
    );

    for name in circuits {
        let net = esyn_circuits::by_name(name).expect("registry circuit");
        let expr = network_to_recexpr(&net);
        let run_at = |t: usize| saturate_par(&expr, &rules, &limits(fast), Parallelism::Fixed(t));

        // End-to-end saturation (search + apply + rebuild per iteration),
        // across thread counts; outcomes must be bit-identical.
        let reference = run_at(1);
        let fingerprint = |r: &esyn_egraph::Runner<esyn_core::BoolLang, esyn_core::ConstFold>| {
            type IterRow = (usize, usize, usize, usize, usize, usize, usize);
            let stats: Vec<IterRow> = r
                .iterations
                .iter()
                .map(|i| {
                    (
                        i.nodes,
                        i.classes,
                        i.applied,
                        i.skipped_substs,
                        i.rebuilds,
                        i.active_rules,
                        i.dropped_rules,
                    )
                })
                .collect();
            let (cost, best) = r.extract_best(AstSize);
            (
                stats,
                r.stop_reason,
                cost,
                best.to_string(),
                r.egraph.checksum(),
            )
        };
        let expect = fingerprint(&reference);
        if fast && *name == "3_3" {
            assert_eq!(
                reference.egraph.checksum(),
                GOLDEN_3_3_FAST_CHECKSUM,
                "fast-mode 3_3 e-graph checksum drifted from the committed \
                 golden (stop {:?}) — see GOLDEN_3_3_FAST_CHECKSUM's docs",
                reference.stop_reason,
            );
            assert_eq!(
                reference.stop_reason,
                Some(esyn_egraph::StopReason::NodeLimit),
                "fast-mode 3_3 stop reason drifted from the committed golden",
            );
        }
        let mut serial_ns = 0.0f64;
        for &t in threads {
            let runner = run_at(t);
            assert_eq!(
                fingerprint(&runner),
                expect,
                "saturation differs at {t} threads"
            );
            let d = time(reps, || {
                std::hint::black_box(run_at(t).egraph.total_nodes());
            });
            let ns = d.as_nanos() as f64;
            if t == 1 {
                serial_ns = ns;
            }
            println!(
                "saturate/{name}/{t} threads: {:>10.3} ms  (speedup x{:.2}; {} e-nodes / {} classes, {} iters, stop {:?})",
                ns / 1e6,
                serial_ns / ns,
                runner.egraph.total_nodes(),
                runner.egraph.num_classes(),
                runner.iterations.len(),
                runner.stop_reason.expect("runner finished"),
            );
        }

        // The env-driven path: `Parallelism::Auto` is what resolves
        // `ESYN_THREADS` (CI's second smoke pass runs this bench with
        // ESYN_THREADS=1), and its outcome must match the Fixed sweep.
        let auto = saturate_par(&expr, &rules, &limits(fast), Parallelism::Auto);
        assert_eq!(
            fingerprint(&auto),
            expect,
            "saturation differs under Parallelism::Auto (ESYN_THREADS = {:?})",
            std::env::var("ESYN_THREADS").ok()
        );

        // Search phase only: all rules matched once over the final
        // e-graph — the loop the operator index + compiled machine speed
        // up, timed single-threaded so the win is purely algorithmic.
        let count_matches = || -> usize {
            rules
                .iter()
                .map(|r| {
                    r.search(&reference.egraph)
                        .iter()
                        .map(|m| m.substs.len())
                        .sum::<usize>()
                })
                .sum()
        };
        let matches = count_matches();
        let search = time(reps, || {
            std::hint::black_box(count_matches());
        });
        println!(
            "search-phase/{name}: {:>10.3} ms  ({matches} substitutions)",
            search.as_nanos() as f64 / 1e6,
        );
    }
}
