//! **The extraction gym**: race every `esyn-extract` engine on saturated
//! registry e-graphs and tabulate QoR (DAG cost under unit node costs)
//! against extraction time — the extraction-gym experiment shape, run on
//! the workspace's own circuits.
//!
//! ```text
//! cargo bench -p esyn-bench --bench gym
//! ```
//!
//! Set `ESYN_BENCH_FAST=1` for the CI smoke shape (two small circuits at
//! a reduced saturation budget). The `time(us)` column is wall-clock and
//! machine-dependent; costs and check verdicts are deterministic at any
//! thread count.

use esyn_bench::{bench_limits, hr};
use esyn_core::{lang::network_to_recexpr, rules::all_rules, saturate, SaturationLimits};
use esyn_extract::{gym, UnitCost, ENGINE_NAMES};
use esyn_par::Parallelism;
use std::time::Duration;

fn fast_mode() -> bool {
    std::env::var_os("ESYN_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty())
}

fn main() {
    let (circuits, limits): (&[&str], SaturationLimits) = if fast_mode() {
        (
            &["qadd", "cavlc"],
            SaturationLimits {
                iter_limit: 4,
                node_limit: 2_000,
                time_limit: Duration::from_secs(5),
            },
        )
    } else {
        (
            &[
                "adder", "bar", "max", "cavlc", "3_3", "5_5", "qadd", "qdiv", "alu4",
            ],
            bench_limits(),
        )
    };

    println!();
    println!("The extraction gym: DAG cost (unit node costs) vs extraction time");
    hr(78);

    let mut failures = 0usize;
    for name in circuits {
        let net = esyn_circuits::by_name(name).expect("gym circuit");
        let expr = network_to_recexpr(&net);
        let runner = saturate(&expr, &all_rules(), &limits);
        println!(
            "{name}: {} e-nodes / {} e-classes",
            runner.egraph.total_nodes(),
            runner.egraph.num_classes()
        );
        println!(
            "  {:<18} {:>10} {:>12} {:>10}  check",
            "engine", "dag-cost", "tree-cost", "time(us)"
        );
        let rows = gym::race(
            &runner.egraph,
            &runner.roots,
            &UnitCost,
            &ENGINE_NAMES,
            Parallelism::Auto,
        );
        for row in &rows {
            let check = match &row.check {
                Ok(()) => "ok",
                Err(_) => {
                    failures += 1;
                    "FAIL"
                }
            };
            println!(
                "  {:<18} {:>10.1} {:>12.1} {:>10}  {check}",
                row.engine, row.dag_cost, row.tree_cost, row.micros
            );
        }
        hr(78);
    }
    println!("expected shape: the bottom-up engines are fastest and weakest (tree-blind),");
    println!("the greedy-dag family trades time for sharing, global-greedy-dag and the");
    println!("budgeted exact engines close the remaining gap at the highest latency.");
    assert_eq!(failures, 0, "{failures} engine result(s) failed validation");
}
