//! Micro-benchmarks of the substrate crates: e-graph
//! saturation/matching/extraction, AIG passes, cut enumeration,
//! technology mapping, SAT solving and parser round-trips.
//!
//! Runs on the in-repo criterion-compatible harness
//! (`esyn_bench::harness`); set `ESYN_BENCH_FAST=1` for a smoke run.
//!
//! ```text
//! cargo bench -p esyn-bench --bench micro
//! ```

use esyn_aig::{Aig, ChoiceAig, CutConfig};
use esyn_bench::{criterion_group, criterion_main, Criterion};
use esyn_core::{
    extract_pool, lang::network_to_recexpr, rules::all_rules, saturate, ConstFold, PoolConfig,
    SaturationLimits,
};
use esyn_egraph::{AstSize, Extractor, Pattern, Runner};
use esyn_eqn::{parse_blif, parse_eqn, write_blif};
use esyn_extract::{extract_best, GreedyDag, UnitCost};
use esyn_sat::{Lit, Solver};
use esyn_techmap::{map_aig, map_choices, Library, MapMode};
use std::time::Duration;

fn limits() -> SaturationLimits {
    SaturationLimits {
        iter_limit: 8,
        node_limit: 8_000,
        time_limit: Duration::from_secs(5),
    }
}

fn bench_egraph(c: &mut Criterion) {
    let net = esyn_circuits::by_name("3_3").expect("benchmark");
    let expr = network_to_recexpr(&net);
    c.bench_function("egraph/saturate-3_3", |b| {
        b.iter(|| {
            let runner = saturate(&expr, &all_rules(), &limits());
            std::hint::black_box(runner.egraph.total_nodes())
        })
    });

    let runner = saturate(&expr, &all_rules(), &limits());
    let pat = Pattern::parse("(* ?a (+ ?b ?c))").expect("pattern");
    c.bench_function("egraph/ematch-3_3", |b| {
        b.iter(|| std::hint::black_box(pat.search(&runner.egraph).len()))
    });

    c.bench_function("egraph/extract-astsize-3_3", |b| {
        b.iter(|| {
            let ext = Extractor::new(&runner.egraph, AstSize);
            std::hint::black_box(ext.find_best(runner.roots[0]).map(|(c, _)| c))
        })
    });

    c.bench_function("egraph/pool-extract-20", |b| {
        b.iter(|| {
            let pool = extract_pool(
                &runner.egraph,
                runner.roots[0],
                &PoolConfig::with_samples(20, 9),
            );
            std::hint::black_box(pool.len())
        })
    });

    c.bench_function("egraph/extract-dagsize-3_3", |b| {
        b.iter(|| {
            let best = extract_best(&GreedyDag, &runner.egraph, runner.roots[0], &UnitCost);
            std::hint::black_box(best.map(|(c, _)| c))
        })
    });

    // rebuild throughput on a fresh graph
    c.bench_function("egraph/add-expr-rebuild", |b| {
        b.iter(|| {
            let mut runner = Runner::with_analysis(ConstFold).with_expr(&expr);
            runner.egraph.rebuild();
            std::hint::black_box(runner.egraph.num_classes())
        })
    });
}

fn bench_aig(c: &mut Criterion) {
    let net = esyn_circuits::by_name("5_5").expect("benchmark");
    let aig = Aig::from_network(&net);
    c.bench_function("aig/strash-5_5", |b| {
        b.iter(|| std::hint::black_box(Aig::from_network(&net).num_ands()))
    });
    c.bench_function("aig/rewrite-5_5", |b| {
        b.iter(|| std::hint::black_box(aig.rewrite(false).num_ands()))
    });
    c.bench_function("aig/balance-5_5", |b| {
        b.iter(|| std::hint::black_box(aig.balance().num_levels()))
    });
    c.bench_function("aig/refactor-5_5", |b| {
        b.iter(|| std::hint::black_box(aig.refactor(false, 8).num_ands()))
    });
    c.bench_function("aig/cuts-k4-5_5", |b| {
        b.iter(|| {
            let cuts = aig.k_cuts(&CutConfig::default());
            std::hint::black_box(cuts.iter().map(Vec::len).sum::<usize>())
        })
    });
    c.bench_function("aig/fraig-5_5", |b| {
        b.iter(|| std::hint::black_box(aig.fraig(7).num_ands()))
    });
    c.bench_function("aig/choices-5_5", |b| {
        b.iter(|| std::hint::black_box(ChoiceAig::build(&aig, 7).num_choices()))
    });
}

fn bench_techmap(c: &mut Criterion) {
    let lib = Library::asap7_like();
    let net = esyn_circuits::by_name("5_5").expect("benchmark");
    let aig = Aig::from_network(&net);
    c.bench_function("techmap/map-delay-5_5", |b| {
        b.iter(|| std::hint::black_box(map_aig(&aig, &lib, MapMode::Delay).num_gates()))
    });
    c.bench_function("techmap/map-area-5_5", |b| {
        b.iter(|| std::hint::black_box(map_aig(&aig, &lib, MapMode::Area).num_gates()))
    });
    let nl = map_aig(&aig, &lib, MapMode::Delay);
    c.bench_function("techmap/sta-5_5", |b| {
        b.iter(|| std::hint::black_box(esyn_techmap::sta(&nl, &lib, 1.2).delay))
    });
    let choice = ChoiceAig::build(&aig, 7);
    c.bench_function("techmap/map-choices-delay-5_5", |b| {
        b.iter(|| std::hint::black_box(map_choices(&choice, &lib, MapMode::Delay).num_gates()))
    });
    c.bench_function("techmap/buffer-5_5", |b| {
        let cfg = esyn_techmap::BufferConfig::default();
        b.iter(|| std::hint::black_box(esyn_techmap::buffer(&nl, &lib, 1.2, &cfg).num_gates()))
    });
}

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole-7-6", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let p: Vec<Vec<_>> = (0..7)
                .map(|_| (0..6).map(|_| s.new_var()).collect())
                .collect();
            for row in &p {
                let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
                s.add_clause(&lits);
            }
            for j in 0..6 {
                for i1 in 0..7 {
                    for i2 in (i1 + 1)..7 {
                        s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                    }
                }
            }
            std::hint::black_box(s.solve())
        })
    });
}

fn bench_parsers(c: &mut Criterion) {
    let net = esyn_circuits::by_name("c7552").expect("benchmark");
    let text = net.to_eqn();
    c.bench_function("eqn/parse-c7552", |b| {
        b.iter(|| std::hint::black_box(parse_eqn(&text).map(|n| n.len())))
    });
    c.bench_function("eqn/print-c7552", |b| {
        b.iter(|| std::hint::black_box(net.to_eqn().len()))
    });
    c.bench_function("eqn/simulate-c7552", |b| {
        let words: Vec<u64> = (0..net.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect();
        b.iter(|| std::hint::black_box(net.simulate(&words)))
    });
    let blif = write_blif(&net, "c7552");
    c.bench_function("eqn/write-blif-c7552", |b| {
        b.iter(|| std::hint::black_box(write_blif(&net, "c7552").len()))
    });
    c.bench_function("eqn/parse-blif-c7552", |b| {
        b.iter(|| std::hint::black_box(parse_blif(&blif).map(|n| n.len())))
    });
    let aig = Aig::from_network(&net);
    let aag = aig.to_aiger_ascii();
    c.bench_function("aig/parse-aiger-c7552", |b| {
        b.iter(|| std::hint::black_box(Aig::from_aiger_ascii(&aag).map(|a| a.num_ands())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_egraph, bench_aig, bench_techmap, bench_sat, bench_parsers
}
criterion_main!(benches);
