//! **Ablation**: structural choices in the mapping backend.
//!
//! DESIGN.md documents one substitution in the evaluation backend: the
//! paper's `&dch -f` (choice networks) is approximated by a `dc2` pass
//! because the original mapper had no choice support. The workspace now
//! has a faithful `dch` substitute ([`esyn_aig::ChoiceAig`] plus the
//! choice-aware mapper); this bench measures what the approximation costs
//! by running the baseline flow with and without choices.
//!
//! ```text
//! cargo bench -p esyn-bench --bench ablation_choices
//! ```

use esyn_aig::{Aig, ChoiceAig};
use esyn_bench::hr;
use esyn_core::{abc_baseline, abc_baseline_choices, Objective};
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    let circuits = ["3_3", "5_5", "cavlc", "frg2", "b12"];

    println!();
    println!("Ablation: single-structure mapping (dc2 approximation) vs structural choices (dch)");
    hr(104);
    println!(
        "{:<8} {:<9} {:>9} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "circuit", "objective", "#choices", "delay", "delay+ch", "Δ", "area", "area+ch", "Δ"
    );
    hr(104);

    for name in circuits {
        let net = esyn_circuits::by_name(name).expect("registry circuit");
        let num_choices = {
            let opt = esyn_aig::scripts::baseline_tech_indep(&Aig::from_network(&net), 0xABC);
            ChoiceAig::build(&opt, 0xD0C).num_choices()
        };
        for objective in [Objective::Delay, Objective::Area] {
            let plain = abc_baseline(&net, &lib, objective, None);
            let chosen = abc_baseline_choices(&net, &lib, objective, None);
            let dd = (chosen.delay - plain.delay) / plain.delay * 100.0;
            let da = (chosen.area - plain.area) / plain.area * 100.0;
            println!(
                "{name:<8} {:<9} {num_choices:>9} {:>12.2} {:>12.2} {:>7.1}% {:>12.2} {:>12.2} {:>7.1}%",
                format!("{objective:?}"),
                plain.delay,
                chosen.delay,
                dd,
                plain.area,
                chosen.area,
                da
            );
        }
        hr(104);
    }
    println!("expected shape (negative Δ = choice-aware backend wins): under the Delay");
    println!("objective choices match or shorten the critical path; under the Area objective");
    println!("they trade delay for a few percent of area — the direction each objective asks");
    println!("for. Rows with 0 choices isolate the mapper's area-flow refinement pass (the");
    println!("choice mapper always runs two DP sweeps). This bounds the error of the dc2");
    println!("approximation used in the calibrated experiments.");
}
