//! **Figure 1**: the motivating example — netlists after technology
//! mapping and gate sizing, starting from the original logic form or
//! after one of AIG rewriting (`rw`), fraig-style resubstitution (`rs`),
//! refactoring (`rf`), delay-oriented E-Syn, or area-oriented E-Syn.
//!
//! The paper's observation to reproduce: local AIG node-count reduction
//! does not imply post-mapping QoR improvement (its `rw` cut nodes from 20
//! to 17 yet *increased* area), while E-Syn targets post-mapping QoR
//! directly and wins delay at comparable area.
//!
//! ```text
//! cargo bench -p esyn-bench --bench fig1_motivating
//! ```

use esyn_aig::Aig;
use esyn_bench::{bench_limits, hr, shared_models};
use esyn_core::{esyn_optimize, EsynConfig, Objective, PoolConfig};
use esyn_eqn::parse_eqn;
use esyn_techmap::{map_and_size, Library, MapMode};

fn main() {
    // A 5-level mux/majority-flavoured block in the spirit of the paper's
    // 20-AND example: redundancy that local rewriting sees differently
    // from global restructuring.
    let net = parse_eqn(
        "INORDER = a b c d e f;\n\
         OUTORDER = y z;\n\
         y = ((a*b) + (!a*c)) * ((d*e) + (!d*f)) + ((a*b) + (!a*c)) * (e*f);\n\
         z = ((a*b)*(c+d)) + ((a*b)*(c+e)) + (!(a*b) * d * e);\n",
    )
    .expect("valid eqn");
    let lib = Library::asap7_like();
    let models = shared_models(&lib);

    let report = |label: &str, aig: &Aig| {
        let (_, q) = map_and_size(aig, &lib, MapMode::Delay, None);
        println!(
            "{label:<16} #and = {:>3}  #level = {:>2}  area = {:>8.2} um2  delay = {:>8.2} ps",
            aig.num_ands(),
            aig.num_levels(),
            q.area,
            q.delay
        );
    };

    println!();
    println!("Figure 1: the motivating example (post-mapping QoR after each optimisation)");
    hr(86);
    let original = Aig::from_network(&net);
    report("original", &original);
    report("rw", &original.rewrite(false));
    report("rs (fraig)", &original.fraig(0xF161));
    report("rf", &original.refactor(false, 8));

    let cfg = EsynConfig {
        limits: bench_limits(),
        pool: PoolConfig::with_samples(80, 0xF161),
        verify: true,
        target_delay: None,
        use_choices: false,
        parallelism: esyn_core::Parallelism::Auto,
    };
    let delay_opt = esyn_optimize(&net, &models, &lib, Objective::Delay, &cfg);
    let area_opt = esyn_optimize(&net, &models, &lib, Objective::Area, &cfg);
    report("E-Syn (delay)", &Aig::from_network(&delay_opt.network));
    report("E-Syn (area)", &Aig::from_network(&area_opt.network));
    hr(86);
    println!("paper's figure: rw reduced #and (20→17) but *increased* area; E-Syn kept");
    println!("#and at 20 yet cut delay from 30.78 ps to 21.91 ps (delay) / 22.14 ps (area)");
}
