//! **Figure 5**: e-graph optimisation with the vanilla (greedy) extractor
//! vs. pool extraction with the regression cost model, normalised by the
//! baseline ABC flow, for delay and area over the 14 circuits.
//!
//! Paper reference: pool extraction beats the vanilla extractor by 21 %
//! delay / 10 % area on average (up to 34 % / 25 %), and the baseline ABC
//! flow by 18 % / 6 %.
//!
//! ```text
//! cargo bench -p esyn-bench --bench fig5_extractors
//! ```

use esyn_bench::{bench_limits, geomean, hr, shared_models};
use esyn_core::{
    abc_baseline,
    flow::esyn_backend,
    lang::{network_to_recexpr, recexpr_to_network},
    pool::extract_pool_with,
    rules::all_rules,
    saturate, CandidateCost, Features, Objective, PoolConfig,
};
use esyn_egraph::{AstDepth, AstSize, Extractor};
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    let models = shared_models(&lib);
    // Figure 5's x-axis circuit order.
    let order = [
        "5_5", "cavlc", "C432", "3_3", "qdiv", "adder", "b12", "c7552", "C5315", "i7", "max",
        "frg2", "c2670", "bar",
    ];
    let benches = esyn_circuits::table2_benchmarks();

    println!();
    println!("Figure 5: vanilla extractor vs pool extraction (normalised by baseline ABC flow)");
    hr(108);
    println!(
        "{:<10} | {:>11} {:>11} {:>11} | {:>11} {:>11} {:>11}",
        "circuit", "abc-delay", "van-delay", "pool-delay", "abc-area", "van-area", "pool-area"
    );
    hr(108);

    let mut van_d_norm = Vec::new();
    let mut pool_d_norm = Vec::new();
    let mut van_a_norm = Vec::new();
    let mut pool_a_norm = Vec::new();

    for name in order {
        let b = benches
            .iter()
            .find(|b| b.name == name)
            .expect("figure 5 circuit exists");
        eprintln!("[fig5] {name}...");
        let names: Vec<String> = b.network.outputs().iter().map(|(n, _)| n.clone()).collect();

        // Baseline ABC flow.
        let abc_d = abc_baseline(&b.network, &lib, Objective::Delay, None);
        let abc_a = abc_baseline(&b.network, &lib, Objective::Area, None);

        // One shared saturation for both extractors.
        let expr = network_to_recexpr(&b.network);
        let runner = saturate(&expr, &all_rules(), &bench_limits());
        let root = runner.roots[0];

        // Vanilla extractor: AST depth for delay, AST size for area (§4.2).
        let (_, depth_best) = Extractor::new(&runner.egraph, AstDepth)
            .find_best(root)
            .expect("extractable");
        let (_, size_best) = Extractor::new(&runner.egraph, AstSize)
            .find_best(root)
            .expect("extractable");
        let van_d = esyn_backend(
            &recexpr_to_network(&depth_best, &names),
            &lib,
            Objective::Delay,
            None,
        )
        .1;
        let van_a = esyn_backend(
            &recexpr_to_network(&size_best, &names),
            &lib,
            Objective::Area,
            None,
        )
        .1;

        // Pool extraction with the regression models.
        let pool = extract_pool_with(
            &runner.egraph,
            root,
            Some(&expr),
            &PoolConfig::with_samples(60, 0xF16_5),
        );
        let pick = |is_delay: bool| {
            pool.iter()
                .min_by(|x, y| {
                    let fx = Features::from_expr(x);
                    let fy = Features::from_expr(y);
                    let (cx, cy) = if is_delay {
                        (models.delay.cost(&fx), models.delay.cost(&fy))
                    } else {
                        (models.area.cost(&fx), models.area.cost(&fy))
                    };
                    cx.partial_cmp(&cy).expect("finite")
                })
                .expect("pool non-empty")
        };
        let pool_d = esyn_backend(
            &recexpr_to_network(pick(true), &names),
            &lib,
            Objective::Delay,
            None,
        )
        .1;
        let pool_a = esyn_backend(
            &recexpr_to_network(pick(false), &names),
            &lib,
            Objective::Area,
            None,
        )
        .1;

        let vd = van_d.delay / abc_d.delay;
        let pd = pool_d.delay / abc_d.delay;
        let va = van_a.area / abc_a.area;
        let pa = pool_a.area / abc_a.area;
        println!(
            "{name:<10} | {:>11.3} {vd:>11.3} {pd:>11.3} | {:>11.3} {va:>11.3} {pa:>11.3}",
            1.0, 1.0
        );
        van_d_norm.push(vd);
        pool_d_norm.push(pd);
        van_a_norm.push(va);
        pool_a_norm.push(pa);
    }
    hr(108);
    let gvd = geomean(&van_d_norm);
    let gpd = geomean(&pool_d_norm);
    let gva = geomean(&van_a_norm);
    let gpa = geomean(&pool_a_norm);
    println!(
        "GEOMEAN    | {:>11.3} {gvd:>11.3} {gpd:>11.3} | {:>11.3} {gva:>11.3} {gpa:>11.3}",
        1.0, 1.0
    );
    println!();
    println!(
        "pool vs vanilla: delay {:+.1}% area {:+.1}%   [paper: avg 21% delay, 10% area]",
        100.0 * (gvd - gpd) / gvd,
        100.0 * (gva - gpa) / gva,
    );
    println!(
        "pool vs ABC:     delay {:+.1}% area {:+.1}%   [paper: 18% delay, 6% area]",
        100.0 * (1.0 - gpd),
        100.0 * (1.0 - gpa),
    );
}
