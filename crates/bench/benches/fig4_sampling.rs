//! **Figure 4**: sampling size vs. the best delay and area found in the
//! pool, for `alu4`, `pair` and `qadd`.
//!
//! The paper's observation to reproduce: diminishing returns with pool
//! size; "a pool size of over 100 would suffice in most cases".
//!
//! ```text
//! cargo bench -p esyn-bench --bench fig4_sampling
//! ```

use esyn_bench::{hr, QorCache, SaturatedCircuit};
use esyn_core::Objective;
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    let sizes = [10usize, 25, 50, 100, 200, 400, 700];
    let circuits = esyn_circuits::fig4_benchmarks();

    println!();
    println!("Figure 4: sampling size vs minimum delay / area in the pool");
    hr(78);
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>8}",
        "circuit", "size", "min delay", "min area", "pool"
    );
    hr(78);
    for b in &circuits {
        let mut cache = QorCache::new();
        // One saturation per circuit; pools of different sizes share the
        // same sample stream prefix, exactly as the paper's sweep.
        let sat = SaturatedCircuit::new(&b.network);
        let names = sat.names().to_vec();
        for &n in &sizes {
            let pool = sat.pool(n, 0xF16_4);
            let qors = cache.measure(&pool, &names, &lib, Objective::Delay);
            let best_delay = qors.iter().map(|q| q.delay).fold(f64::INFINITY, f64::min);
            let best_area = qors.iter().map(|q| q.area).fold(f64::INFINITY, f64::min);
            println!(
                "{:<8} {:>6} {:>10.2} {:>10.2} {:>8}",
                b.name,
                n,
                best_delay,
                best_area,
                pool.len()
            );
        }
        hr(78);
    }
    println!("expected shape: monotone non-increasing curves with diminishing returns");
    println!("(the paper picks a default pool size of ~100 from this experiment)");
}
