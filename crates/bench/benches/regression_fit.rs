//! **§3.2.1**: cost-model regression quality. The paper reports an
//! R-value of 0.78 for the delay model and 0.76 for the area model
//! (XGBoost, 200 estimators, depth 5, trained on 50 000 aigfuzz circuits).
//!
//! ```text
//! cargo bench -p esyn-bench --bench regression_fit
//! ```

use esyn_bench::hr;
use esyn_core::{train_cost_models, Features, TrainConfig};
use esyn_techmap::Library;

fn main() {
    let lib = Library::asap7_like();
    println!();
    println!("§3.2.1: technology-aware cost model fit (Pearson R on held-out split)");
    hr(72);
    println!(
        "{:>10} {:>12} {:>12}   (paper: 0.78 delay / 0.76 area)",
        "circuits", "R delay", "R area"
    );
    hr(72);
    for num_circuits in [30usize, 60, 120] {
        let cfg = TrainConfig {
            num_circuits,
            ..Default::default()
        };
        let models = train_cost_models(&cfg, &lib);
        println!(
            "{num_circuits:>10} {:>12.3} {:>12.3}",
            models.r_delay, models.r_area
        );
    }
    hr(72);

    let models = train_cost_models(
        &TrainConfig {
            num_circuits: 120,
            ..Default::default()
        },
        &lib,
    );
    let names = [
        "num_and",
        "num_or",
        "num_not",
        "num_nodes",
        "depth",
        "density",
        "edge_sum",
    ];
    assert_eq!(names.len(), Features::LEN);
    println!("feature importances at 120 circuits:");
    let imp_d = models.delay.model().feature_importance();
    let imp_a = models.area.model().feature_importance();
    println!("  {:>10} {:>8} {:>8}", "feature", "delay", "area");
    for (i, n) in names.iter().enumerate() {
        println!("  {:>10} {:8.3} {:8.3}", n, imp_d[i], imp_a[i]);
    }
}
