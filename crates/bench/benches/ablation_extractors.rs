//! **Ablation**: extraction engines (DESIGN.md §"ablation").
//!
//! Compares every extraction strategy available in the workspace on the
//! same saturated e-graphs, through the same mapping backend:
//!
//! * the vanilla greedy extractor with tree costs (AST size / AST depth)
//!   — the paper's "extractor (1)";
//! * greedy DAG-cost extraction (the gym's `greedy-dag` engine), which
//!   charges shared e-classes once;
//! * exact branch-and-bound DAG extraction (`extract_exact`) — the
//!   ILP-equivalent "extractor (2)" the paper cites as prior work, run at
//!   a reduced saturation budget because it does not scale (which is
//!   precisely the paper's argument for pool extraction);
//! * pool extraction, with and without the DAG-cost extreme candidate.
//!
//! ```text
//! cargo bench -p esyn-bench --bench ablation_extractors
//! ```

use esyn_bench::{bench_limits, hr, QorCache};
use esyn_core::{
    extract_pool_with, lang::network_to_recexpr, rules::all_rules, saturate, BoolLang, Objective,
    PoolConfig, SaturationLimits,
};
use esyn_egraph::{AstDepth, AstSize, Extractor, RecExpr};
use esyn_extract::{extract_best, extract_exact, GreedyDag, UnitCost};
use esyn_techmap::Library;
use std::time::Duration;

/// Steps allowed to the exact search before it reports `Budget`.
const EXACT_BUDGET: u64 = 3_000_000;

fn dag_nodes(expr: &RecExpr<BoolLang>) -> usize {
    expr.len()
}

fn main() {
    let lib = Library::asap7_like();

    // ---- Part 1: heuristic extractors at the shared bench budget -------
    println!();
    println!("Ablation: extraction engines (bench saturation budget)");
    hr(100);
    println!(
        "{:<8} {:<18} {:>10} {:>8} {:>12} {:>12}",
        "circuit", "extractor", "dag nodes", "depth", "delay (ps)", "area (um2)"
    );
    hr(100);

    for name in ["3_3", "cavlc", "qadd"] {
        let net = esyn_circuits::by_name(name).expect("ablation circuit");
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let expr = network_to_recexpr(&net);
        let runner = saturate(&expr, &all_rules(), &bench_limits());
        let (egraph, root) = (&runner.egraph, runner.roots[0]);
        let mut cache = QorCache::new();

        let mut row = |label: &str, cands: Vec<RecExpr<BoolLang>>| {
            let qors = cache.measure(&cands, &names, &lib, Objective::Delay);
            let (best_d, best_a) = qors
                .iter()
                .map(|q| (q.delay, q.area))
                .fold((f64::INFINITY, f64::INFINITY), |(d, a), (qd, qa)| {
                    (d.min(qd), a.min(qa))
                });
            let smallest = cands.iter().map(dag_nodes).min().unwrap_or(0);
            let depth = cands.iter().map(|c| c.depth()).min().unwrap_or(0);
            println!(
                "{name:<8} {label:<18} {smallest:>10} {depth:>8} {best_d:>12.2} {best_a:>12.2}"
            );
        };

        let (_, by_size) = Extractor::new(egraph, AstSize).find_best(root).unwrap();
        row("greedy ast-size", vec![by_size]);

        let (_, by_depth) = Extractor::new(egraph, AstDepth).find_best(root).unwrap();
        row("greedy ast-depth", vec![by_depth]);

        let (_, by_dag) = extract_best(&GreedyDag, egraph, root, &UnitCost).unwrap();
        row("greedy dag-size", vec![by_dag]);

        let pool = extract_pool_with(
            egraph,
            root,
            Some(&expr),
            &PoolConfig::with_samples(60, 0xE57),
        );
        row(&format!("pool({})", pool.len()), pool);

        let pool_dag = extract_pool_with(
            egraph,
            root,
            Some(&expr),
            &PoolConfig {
                include_dag_extreme: true,
                ..PoolConfig::with_samples(60, 0xE57)
            },
        );
        row(&format!("pool+dagx({})", pool_dag.len()), pool_dag);
        hr(100);
    }

    // ---- Part 2: exact (ILP-equivalent) vs greedy DAG at small budgets --
    println!();
    println!(
        "Exact branch-and-bound (ILP baseline) vs greedy DAG, reduced saturation \
         (budget {EXACT_BUDGET} steps)"
    );
    hr(100);
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14} {:>16}",
        "circuit", "e-nodes", "greedy dag", "exact dag", "gap", "exact status"
    );
    hr(100);

    // Tiny hand-written functions where the exact search can finish, plus
    // the named circuits where it hits the wall.
    let tiny: [(&str, &str); 3] = [
        (
            "factor",
            "INORDER = a b c d;\nOUTORDER = f;\nf = (a*b) + (a*c) + (a*d);\n",
        ),
        (
            "consensus",
            "INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + ((!a)*c) + (b*c);\n",
        ),
        (
            "mux_pair",
            "INORDER = s a b c;\nOUTORDER = f g;\nf = (s*a) + (!s*b);\ng = (s*b) + (!s*c);\n",
        ),
    ];
    let tiny_limits = SaturationLimits {
        iter_limit: 6,
        node_limit: 250,
        time_limit: Duration::from_secs(5),
    };
    let small_limits = SaturationLimits {
        iter_limit: 8,
        node_limit: 1_200,
        time_limit: Duration::from_secs(5),
    };
    let workloads: Vec<(String, RecExpr<BoolLang>, &SaturationLimits)> = tiny
        .iter()
        .map(|(n, src)| {
            let net = esyn_eqn::parse_eqn(src).expect("tiny circuit parses");
            ((*n).to_owned(), network_to_recexpr(&net), &tiny_limits)
        })
        .chain(["3_3", "cavlc", "qadd"].into_iter().map(|n| {
            let net = esyn_circuits::by_name(n).expect("ablation circuit");
            (n.to_owned(), network_to_recexpr(&net), &small_limits)
        }))
        .collect();
    for (name, expr, limits) in &workloads {
        let runner = saturate(expr, &all_rules(), limits);
        let (egraph, root) = (&runner.egraph, runner.roots[0]);

        let (greedy_cost, _) = extract_best(&GreedyDag, egraph, root, &UnitCost).unwrap();
        let (exact_str, gap_str, status) =
            match extract_exact(egraph, root, &UnitCost, EXACT_BUDGET) {
                Ok((exact_cost, _)) => {
                    let gap = (greedy_cost - exact_cost) / exact_cost.max(1.0) * 100.0;
                    (format!("{exact_cost:.0}"), format!("{gap:.1}%"), "optimal")
                }
                Err(_) => ("—".to_owned(), "—".to_owned(), "budget exhausted"),
            };
        println!(
            "{name:<10} {:>12} {greedy_cost:>14.0} {exact_str:>14} {gap_str:>14} {status:>16}",
            egraph.total_nodes()
        );
    }
    hr(100);
    println!("expected shape: the pool dominates every single-candidate extractor on measured");
    println!("QoR; exact matches or slightly beats greedy DAG extraction where it finishes and");
    println!("exhausts its budget as the e-graph grows — the scaling wall that motivates the");
    println!("paper's pool extraction (§3.2.2).");
}
