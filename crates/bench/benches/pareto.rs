//! **Multi-objective Pareto extraction**: race every `esyn-extract`
//! engine under the area × depth objective pair on saturated registry
//! e-graphs and tabulate the per-engine points plus the non-dominated
//! frontier — the `esyn pareto` experiment shape, run on the
//! workspace's own circuits.
//!
//! ```text
//! cargo bench -p esyn-bench --bench pareto
//! ```
//!
//! Set `ESYN_BENCH_FAST=1` for the CI smoke shape (two small circuits
//! at a reduced saturation budget). Points and frontiers carry no
//! wall-clock and are bit-identical at any thread count — the smoke
//! shape asserts this by re-racing at `Parallelism::Fixed` ∈ {1, 2, 4}
//! (the full shape races once per circuit and leaves the thread sweep
//! to `tests/parallel_determinism.rs`); every shape asserts the
//! frontier weakly dominates both single-objective corners.

use esyn_bench::{bench_limits, hr};
use esyn_core::pareto::frontier_dominates;
use esyn_core::{lang::network_to_recexpr, rules::all_rules, saturate, SaturationLimits};
use esyn_extract::ENGINE_NAMES;
use esyn_objective::{objective_by_name, pareto_race};
use esyn_par::Parallelism;
use std::time::Duration;

fn fast_mode() -> bool {
    std::env::var_os("ESYN_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty())
}

fn main() {
    let (circuits, limits): (&[&str], SaturationLimits) = if fast_mode() {
        (
            &["qadd", "cavlc"],
            SaturationLimits {
                iter_limit: 4,
                node_limit: 2_000,
                time_limit: Duration::from_secs(5),
            },
        )
    } else {
        (
            &[
                "adder", "bar", "max", "cavlc", "3_3", "5_5", "qadd", "qdiv", "alu4",
            ],
            bench_limits(),
        )
    };
    let x = objective_by_name("area").expect("registry objective");
    let y = objective_by_name("depth").expect("registry objective");

    println!();
    println!("Multi-objective Pareto extraction: engine points under area x depth");
    hr(70);

    for name in circuits {
        let net = esyn_circuits::by_name(name).expect("pareto circuit");
        let expr = network_to_recexpr(&net);
        let runner = saturate(&expr, &all_rules(), &limits);
        println!(
            "{name}: {} e-nodes / {} e-classes",
            runner.egraph.total_nodes(),
            runner.egraph.num_classes()
        );
        let race = pareto_race(
            &runner.egraph,
            &runner.roots,
            x,
            y,
            &ENGINE_NAMES,
            Parallelism::Auto,
        );
        println!(
            "  {:<18} {:<12} {:>10} {:>10}",
            "engine", "raced-under", race.x_name, race.y_name
        );
        for p in &race.points {
            println!(
                "  {:<18} {:<12} {:>10.1} {:>10.1}",
                p.engine, p.raced_under, p.x, p.y
            );
        }
        println!(
            "  frontier ({} of {} points): {:?}",
            race.frontier.len(),
            race.points.len(),
            race.frontier
        );

        // Correctness gates, not measurements: the frontier must cover
        // the single-objective corners, and (in the smoke shape, where
        // the extra races are cheap) the whole race must be
        // bit-identical at any pinned thread count.
        let all: Vec<(f64, f64)> = race.points.iter().map(|p| (p.x, p.y)).collect();
        assert!(
            frontier_dominates(&race.frontier, &all),
            "{name}: frontier fails to weakly dominate its own points"
        );
        if fast_mode() {
            let fingerprint = |r: &esyn_objective::ParetoRace| -> Vec<(u64, u64)> {
                r.points
                    .iter()
                    .map(|p| (p.x.to_bits(), p.y.to_bits()))
                    .collect()
            };
            let reference = fingerprint(&race);
            for par in [
                Parallelism::Fixed(1),
                Parallelism::Fixed(2),
                Parallelism::Fixed(4),
            ] {
                let rerun = pareto_race(&runner.egraph, &runner.roots, x, y, &ENGINE_NAMES, par);
                assert_eq!(
                    fingerprint(&rerun),
                    reference,
                    "{name}: pareto race differs under {par:?}"
                );
            }
        }
        hr(70);
    }
    println!("expected shape: greedy engines cluster at the high-area/low-depth corner,");
    println!("the exact engines pull the frontier toward minimum area; the frontier is");
    println!("the non-dominated hull over every (engine, driver) point.");
}
