//! Deterministic fork–join parallelism for the E-Syn workspace — the
//! zero-dependency `rayon` substitute (crates.io is unreachable here).
//!
//! Three primitives cover every hot loop in the pipeline:
//!
//! * [`par_map`] — order-preserving map over a slice: the result vector is
//!   `[f(0, &items[0]), f(1, &items[1]), …]` **regardless of how the work
//!   was scheduled**. Workers pull indices from a shared counter, so
//!   heterogeneous items (e.g. SAT miters of very different hardness)
//!   balance dynamically.
//! * [`par_chunks`] — the same, over contiguous chunks, for loops whose
//!   per-item cost is too small to schedule individually.
//! * [`scope`] — structured ad-hoc concurrency (re-exported from
//!   [`std::thread`]) for the rare shape the two maps do not fit.
//!
//! # Determinism contract
//!
//! Every caller passes a closure that is a **pure function of the index
//! and the item** — never of shared mutable state or of a shared RNG.
//! Under that contract the output of [`par_map`]/[`par_chunks`] is
//! bit-identical at *any* thread count, including the serial fallback:
//! parallelism changes wall-clock time, nothing else. RNG-consuming
//! callers pre-split one seed per item with `rand::split_seeds` (see
//! `esyn-rand`) instead of sharing a generator. The workspace-wide
//! invariant is proven by `crates/core/tests/determinism.rs` and
//! `tests/parallel_determinism.rs`.
//!
//! # Thread-count resolution
//!
//! How many workers actually run is decided by [`Parallelism`]:
//!
//! * [`Parallelism::Auto`] (the default) uses the `ESYN_THREADS`
//!   environment variable when set to a positive integer, otherwise
//!   [`std::thread::available_parallelism`]. `ESYN_THREADS=1` therefore
//!   drops every `Auto` call site onto the exact serial path — the
//!   bit-identical debugging mode CI exercises on every run.
//! * [`Parallelism::Serial`] always runs inline on the calling thread
//!   (no worker is spawned at all).
//! * [`Parallelism::Fixed`]`(n)` requests exactly `n` workers and
//!   deliberately ignores `ESYN_THREADS` — it is the programmatic knob
//!   the determinism sweeps use to compare thread counts inside one
//!   process, where mutating the environment would race.
//!
//! A map over `k` items never spawns more than `k` workers, and a
//! resolved count of 1 executes inline with zero scheduling overhead.
//!
//! # Example
//!
//! ```
//! use esyn_par::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::Fixed(4), &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // order preserved
//!
//! // Serial and parallel runs agree bit-for-bit.
//! let serial = par_map(Parallelism::Serial, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, serial);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicUsize, Ordering};

pub use std::thread::{scope, Scope, ScopedJoinHandle};

/// Name of the environment variable overriding [`Parallelism::Auto`].
pub const THREADS_ENV: &str = "ESYN_THREADS";

/// How many worker threads a parallel primitive may use.
///
/// See the [crate docs](crate) for the resolution rules; the key design
/// point is that the choice affects scheduling only — results are
/// identical for every variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// `ESYN_THREADS` when set, otherwise the hardware thread count.
    #[default]
    Auto,
    /// Run inline on the calling thread; never spawn.
    Serial,
    /// Exactly this many workers (clamped to ≥ 1); ignores `ESYN_THREADS`.
    Fixed(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count (≥ 1).
    ///
    /// ```
    /// use esyn_par::Parallelism;
    ///
    /// assert_eq!(Parallelism::Serial.threads(), 1);
    /// assert_eq!(Parallelism::Fixed(6).threads(), 6);
    /// assert_eq!(Parallelism::Fixed(0).threads(), 1); // clamped
    /// assert!(Parallelism::Auto.threads() >= 1);
    /// ```
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Auto => env_threads().unwrap_or_else(hardware_threads),
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n.max(1),
        }
    }

    /// True when this setting resolves to a single worker (the inline
    /// serial path).
    pub fn is_serial(self) -> bool {
        self.threads() == 1
    }

    /// This setting, demoted to [`Parallelism::Serial`] unless `cond`
    /// holds — the idiom for size-gating a hot loop:
    ///
    /// ```
    /// use esyn_par::Parallelism;
    ///
    /// let items = 3; // too little work to be worth scheduling
    /// let par = Parallelism::Fixed(8).when(items >= 64);
    /// assert_eq!(par.threads(), 1);
    /// ```
    pub fn when(self, cond: bool) -> Self {
        if cond {
            self
        } else {
            Parallelism::Serial
        }
    }
}

/// The `ESYN_THREADS` override, when set to a positive integer.
///
/// Unset, empty, zero or unparsable values all return `None` (falling
/// back to the hardware count keeps a typo from silently serialising a
/// production run).
pub fn env_threads() -> Option<usize> {
    let v = std::env::var(THREADS_ENV).ok()?;
    let n: usize = v.trim().parse().ok()?;
    (n > 0).then_some(n)
}

/// The hardware thread count ([`std::thread::available_parallelism`]),
/// defaulting to 1 when the platform cannot report it.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The worker count [`Parallelism::Auto`] resolves to right now.
pub fn num_threads() -> usize {
    Parallelism::Auto.threads()
}

/// Maps `f` over `items` on up to `par.threads()` workers, preserving
/// input order in the output.
///
/// `f` receives `(index, &item)` so callers can derive per-item state
/// (typically an RNG seed) from the index rather than sharing state
/// across items. Work is scheduled dynamically: each worker repeatedly
/// claims the next unprocessed index, so uneven per-item costs balance
/// without any static partitioning bias.
///
/// With a resolved thread count of 1 (or at most one item) this is a
/// plain inline loop — no thread is spawned, which is the exact serial
/// path `ESYN_THREADS=1` guarantees.
///
/// # Panics
///
/// Propagates the first observed worker panic after all workers have
/// stopped claiming new items.
///
/// # Example
///
/// ```
/// use esyn_par::{par_map, Parallelism};
///
/// let words = ["pool", "cec", "gbdt"];
/// let lengths = par_map(Parallelism::Auto, &words, |i, w| (i, w.len()));
/// assert_eq!(lengths, vec![(0, 4), (1, 3), (2, 4)]);
/// ```
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = par.threads().min(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for worker in per_worker {
        for (i, r) in worker {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed exactly once"))
        .collect()
}

/// Maps `f` over contiguous chunks of `items` (the last chunk may be
/// short), preserving chunk order in the output.
///
/// `f` receives `(start, &items[start..start + len])` where `start` is
/// the chunk's offset into `items` — enough to reconstruct global item
/// indices for per-item seed derivation. Use this instead of [`par_map`]
/// when individual items are too cheap to schedule one by one.
///
/// # Panics
///
/// Panics if `chunk_size` is zero; propagates worker panics like
/// [`par_map`].
///
/// # Example
///
/// ```
/// use esyn_par::{par_chunks, Parallelism};
///
/// let xs: Vec<u64> = (0..10).collect();
/// let sums = par_chunks(Parallelism::Fixed(3), &xs, 4, |start, chunk| {
///     (start, chunk.iter().sum::<u64>())
/// });
/// assert_eq!(sums, vec![(0, 6), (4, 22), (8, 17)]);
/// ```
pub fn par_chunks<T, R, F>(par: Parallelism, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(k, c)| (k * chunk_size, c))
        .collect();
    par_map(par, &chunks, |_, &(start, chunk)| f(start, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Fixed(2),
            Parallelism::Fixed(8),
            Parallelism::Fixed(64),
            Parallelism::Auto,
        ] {
            let got = par_map(par, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "order broken under {par:?}");
        }
    }

    #[test]
    fn par_map_passes_matching_indices() {
        let items: Vec<usize> = (100..200).collect();
        let got = par_map(Parallelism::Fixed(7), &items, |i, &x| (i, x));
        for (i, &(gi, gx)) in got.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(gx, items[i]);
        }
    }

    #[test]
    fn par_map_visits_each_item_exactly_once() {
        let n = 1000;
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..n).collect();
        let _ = par_map(Parallelism::Fixed(8), &items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(counter.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::Fixed(8), &empty, |_, &x| x).is_empty());
        assert_eq!(
            par_map(Parallelism::Fixed(8), &[41u32], |_, &x| x + 1),
            [42]
        );
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for chunk in [1usize, 2, 7, 50, 103, 500] {
            let parts = par_chunks(Parallelism::Fixed(4), &items, chunk, |start, c| {
                (start, c.to_vec())
            });
            let mut flat = Vec::new();
            let mut expect_start = 0;
            for (start, c) in parts {
                assert_eq!(start, expect_start);
                expect_start += c.len();
                flat.extend(c);
            }
            assert_eq!(flat, items, "chunk size {chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = par_chunks(Parallelism::Serial, &[1, 2, 3], 0, |_, c: &[i32]| c.len());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::Fixed(4), &items, |_, &x| {
                assert!(x != 13, "boom on 13");
                x
            })
        });
        assert!(result.is_err(), "panic in worker must reach the caller");
    }

    #[test]
    fn serial_never_spawns() {
        // The closure observes the executing thread; Serial must stay on
        // the caller's thread for every item.
        let caller = std::thread::current().id();
        let items = [1u8, 2, 3, 4];
        let ids = par_map(Parallelism::Serial, &items, |_, _| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn parallelism_resolution_rules() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
        assert!(Parallelism::Serial.is_serial());
        assert_eq!(Parallelism::Fixed(8).when(false), Parallelism::Serial);
        assert_eq!(Parallelism::Fixed(8).when(true), Parallelism::Fixed(8));
        assert_eq!(num_threads(), Parallelism::Auto.threads());
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn env_override_parsing() {
        // `env_threads` reads the live environment; only exercise the
        // parse contract indirectly to avoid racing other tests on env
        // mutation. The env-driven end-to-end path is covered by CI's
        // second `ESYN_THREADS=1` test run.
        match env_threads() {
            Some(n) => assert!(n > 0),
            None => {}
        }
    }

    #[test]
    fn results_identical_across_thread_counts_with_per_index_state() {
        // The canonical usage pattern: derive per-item state from the
        // index, never share it.
        let items: Vec<u64> = (0..500).collect();
        let run = |par: Parallelism| {
            par_map(par, &items, |i, &x| {
                // a little index-derived pseudo-random work
                let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64);
                for _ in 0..(i % 17) {
                    h = h.rotate_left(13).wrapping_mul(5);
                }
                h
            })
        };
        let serial = run(Parallelism::Serial);
        for t in [2, 3, 8, 32] {
            assert_eq!(run(Parallelism::Fixed(t)), serial, "threads = {t}");
        }
    }
}
