//! Choice AIGs — structural choices for technology mapping (ABC's `dch`).
//!
//! The paper's baseline flow runs `&dch -f`, which "combines different
//! networks seen during technology-independent synthesis into a single
//! network with choices" so the mapper can pick the best structure per
//! node. This module reproduces that: several synthesis variants of one
//! circuit are merged into a single AIG, functionally equivalent nodes are
//! grouped into SAT-proven *choice classes*, and cut enumeration unions
//! the cuts of every class member. The choice-aware mapper lives in
//! `esyn-techmap` ([`map_choices`](../esyn_techmap/fn.map_choices.html)).
//!
//! Choices that would make the class graph cyclic (a member of class A
//! feeding class B while a member of B feeds A — possible because
//! equivalence ignores structure) are dropped, exactly as ABC does, so
//! mapping can process classes in topological order.

use crate::aig::{Aig, AigLit, NodeKind};
use crate::cut::{expand_tt, unit_cut, Cut, CutConfig};
use crate::fraig::{canonical_signature, encode_live_cnf};
use crate::scripts;
use esyn_sat::{Lit, Solver};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Number of 64-bit random simulation words for the initial partition.
const SIM_WORDS: usize = 8;

/// Error from [`ChoiceAig::from_variants`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChoiceVariantError(String);

impl fmt::Display for ChoiceVariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "incompatible choice variants: {}", self.0)
    }
}

impl std::error::Error for ChoiceVariantError {}

/// An AIG with structural choices: one combined graph holding several
/// variants of the same circuit, plus SAT-proven equivalence classes.
///
/// Every node belongs to exactly one class, identified by its
/// *representative* (the class member with the smallest id). The class's
/// canonical function is the representative in positive polarity; each
/// member stores its phase relative to that.
#[derive(Clone, Debug)]
pub struct ChoiceAig {
    aig: Aig,
    /// `repr[n]` = (representative node, phase of `n` w.r.t. it).
    repr: Vec<AigLit>,
    /// Members per representative node id (ascending, repr included);
    /// empty for non-representatives.
    members: Vec<Vec<u32>>,
    /// Representative node ids, fanin-classes-first.
    class_order: Vec<u32>,
}

impl ChoiceAig {
    /// Builds a choice AIG from `base` and the workspace's standard
    /// variant scripts (the strashed original, `balance`, and `dc2`),
    /// mirroring ABC's `dch` defaults. `seed` drives the random
    /// simulation that partitions candidate classes.
    pub fn build(base: &Aig, seed: u64) -> ChoiceAig {
        let variants = [base.cleanup(), base.balance(), scripts::dc2(base)];
        ChoiceAig::from_variants(&variants, seed).expect("same-circuit variants are compatible")
    }

    /// Builds a choice AIG from caller-supplied variants. The first
    /// variant provides the primary outputs; all variants must agree on
    /// primary-input names (in order) and output count.
    ///
    /// # Errors
    ///
    /// Returns [`ChoiceVariantError`] when the variants disagree on the
    /// PI list or PO count, or when no variant is given.
    pub fn from_variants(variants: &[Aig], seed: u64) -> Result<ChoiceAig, ChoiceVariantError> {
        let Some(first) = variants.first() else {
            return Err(ChoiceVariantError("no variants given".into()));
        };
        for (i, v) in variants.iter().enumerate() {
            if v.pi_names() != first.pi_names() {
                return Err(ChoiceVariantError(format!(
                    "variant {i} has different primary inputs"
                )));
            }
            if v.num_pos() != first.num_pos() {
                return Err(ChoiceVariantError(format!(
                    "variant {i} has {} outputs, expected {}",
                    v.num_pos(),
                    first.num_pos()
                )));
            }
        }

        // --- Merge all variants into one structurally hashed AIG. -------
        let mut aig = Aig::new();
        for name in first.pi_names() {
            aig.add_pi(name.clone());
        }
        // Only the first variant contributes primary outputs, but every
        // variant's output cones must stay "live" for class detection —
        // they *are* the choices.
        let mut root_nodes: Vec<u32> = Vec::new();
        for (vi, v) in variants.iter().enumerate() {
            let mut map: Vec<AigLit> = vec![AigLit::FALSE; v.len()];
            for n in 0..v.len() as u32 {
                map[n as usize] = match v.nodes[n as usize] {
                    NodeKind::Const => AigLit::FALSE,
                    NodeKind::Pi(idx) => aig.pi_lit(idx as usize),
                    NodeKind::And(a, b) => {
                        let fa = map[a.node() as usize].xor_compl(a.is_compl());
                        let fb = map[b.node() as usize].xor_compl(b.is_compl());
                        aig.and(fa, fb)
                    }
                };
            }
            for (name, l) in v.outputs() {
                let lit = map[l.node() as usize].xor_compl(l.is_compl());
                root_nodes.push(lit.node());
                if vi == 0 {
                    aig.add_po(name.clone(), lit);
                }
            }
        }

        // --- Detect equivalence classes (simulation + SAT). -------------
        // Live = reachable from any variant's outputs, not just the POs.
        let mut live = vec![false; aig.len()];
        let mut stack = root_nodes;
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n as usize], true) {
                continue;
            }
            if aig.is_and(n) {
                let (a, b) = aig.fanins(n);
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        let mut solver = Solver::new();
        let sat_var = encode_live_cnf(&aig, &mut solver, &live);

        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); aig.len()];
        for _ in 0..SIM_WORDS {
            let words: Vec<u64> = (0..aig.num_pis()).map(|_| rng.gen()).collect();
            let vals = aig.simulate_nodes(&words);
            for n in 0..aig.len() {
                signatures[n].push(vals[n]);
            }
        }

        let mut repr: Vec<AigLit> = (0..aig.len() as u32)
            .map(|n| AigLit::new(n, false))
            .collect();
        // Class dependency edges (repr -> fanin reprs of its members).
        let mut deps: Vec<Vec<u32>> = vec![Vec::new(); aig.len()];
        let mut classes: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut extra_bits = 0usize;
        let mut extra_pi_words: Vec<u64> = vec![0; aig.num_pis()];

        for n in 0..aig.len() as u32 {
            if !live[n as usize] || !aig.is_and(n) {
                continue;
            }
            let (fa, fb) = aig.fanins(n);
            let dn = [
                repr[fa.node() as usize].node(),
                repr[fb.node() as usize].node(),
            ];
            loop {
                let (canon, inverted) = canonical_signature(&signatures[n as usize]);
                if canon.iter().all(|&w| w == 0) {
                    // Candidate constant.
                    let vn = sat_var[&n];
                    let assume = if inverted { Lit::neg(vn) } else { Lit::pos(vn) };
                    if !solver.solve_with_assumptions(&[assume]) {
                        // The constant class never contributes cuts, so it
                        // takes no dependency edges — they could only
                        // manufacture spurious cycles through class 0.
                        repr[n as usize] = AigLit::FALSE.xor_compl(inverted);
                        break;
                    }
                    aig.absorb_cex(
                        &solver,
                        &sat_var,
                        &mut signatures,
                        &mut extra_bits,
                        &mut extra_pi_words,
                        &mut classes,
                    );
                    continue;
                }
                match classes.get(&canon) {
                    None => {
                        classes.insert(canon, n);
                        deps[n as usize] = dn.to_vec();
                        break;
                    }
                    Some(&r) => {
                        let (_, r_inverted) = canonical_signature(&signatures[r as usize]);
                        let compl = inverted != r_inverted;
                        let vn = sat_var[&n];
                        let vr = sat_var[&r];
                        let q1 = [Lit::pos(vn), Lit::with_sign(vr, !compl)];
                        let q2 = [Lit::neg(vn), Lit::with_sign(vr, compl)];
                        if !solver.solve_with_assumptions(&q1)
                            && !solver.solve_with_assumptions(&q2)
                        {
                            // Proven equivalent. Join unless that would
                            // make the class graph cyclic.
                            if dn.iter().all(|&d| !reaches(&deps, d, r)) {
                                repr[n as usize] = AigLit::new(r, compl);
                                members_push(&mut deps, r, &dn);
                            } else {
                                deps[n as usize] = dn.to_vec();
                            }
                            break;
                        }
                        aig.absorb_cex(
                            &solver,
                            &sat_var,
                            &mut signatures,
                            &mut extra_bits,
                            &mut extra_pi_words,
                            &mut classes,
                        );
                    }
                }
            }
        }

        // --- Member lists and class topological order. -------------------
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); aig.len()];
        for n in 0..aig.len() as u32 {
            if live[n as usize] || aig.is_pi(n) || n == 0 {
                members[repr[n as usize].node() as usize].push(n);
            }
        }
        let class_order = topo_classes(&aig, &repr, &members, &deps);

        Ok(ChoiceAig {
            aig,
            repr,
            members,
            class_order,
        })
    }

    /// The combined AIG (all variants, shared structure).
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Canonical literal of `node`: its class representative, with the
    /// phase of `node` relative to the class function.
    pub fn repr(&self, node: u32) -> AigLit {
        self.repr[node as usize]
    }

    /// Canonical literal of `lit` (representative, phase-adjusted).
    pub fn repr_lit(&self, lit: AigLit) -> AigLit {
        self.repr[lit.node() as usize].xor_compl(lit.is_compl())
    }

    /// Member node ids of the class represented by `repr` (ascending;
    /// empty when `repr` is not a representative).
    pub fn members(&self, repr: u32) -> &[u32] {
        &self.members[repr as usize]
    }

    /// Representative node ids in fanin-classes-first order (the order the
    /// mapper must process them in).
    pub fn class_order(&self) -> &[u32] {
        &self.class_order
    }

    /// Number of nodes that joined a class with more than one member —
    /// the amount of structural choice available to the mapper.
    pub fn num_choices(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.len() > 1)
            .map(|m| m.len() - 1)
            .sum()
    }

    /// Primary outputs as canonical (representative) literals.
    pub fn output_reprs(&self) -> Vec<(String, AigLit)> {
        self.aig
            .outputs()
            .iter()
            .map(|(name, l)| (name.clone(), self.repr_lit(*l)))
            .collect()
    }

    /// Enumerates k-feasible cuts per *class* (indexed by representative
    /// node id; non-representatives get empty lists). A class's cut set is
    /// the union of its members' cuts, with leaves canonicalized to
    /// representative ids and truth tables expressed over the canonical
    /// class functions. Each AND class's list ends with its trivial cut.
    pub fn class_cuts(&self, cfg: &CutConfig) -> Vec<Vec<Cut>> {
        assert!(cfg.k >= 2 && cfg.k <= 8, "cut size must be in 2..=8");
        let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); self.aig.len()];
        for &r in &self.class_order {
            if r == 0 {
                continue; // constant class
            }
            if self.aig.is_pi(r) {
                cuts[r as usize] = vec![unit_cut(r)];
                continue;
            }
            let mut merged: Vec<Cut> = Vec::new();
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            for &m in &self.members[r as usize] {
                if !self.aig.is_and(m) {
                    continue;
                }
                let member_phase = self.repr[m as usize].is_compl();
                let (a, b) = self.aig.fanins(m);
                let ra = self.repr_lit(a);
                let rb = self.repr_lit(b);
                // SAT may have proven a fanin constant (its class is the
                // constant class, which has no cuts). A constant-true
                // fanin is neutral — the member reduces to its other
                // fanin; a constant-false fanin would make the member
                // constant, which contradicts r not being in the constant
                // class, so it is skipped defensively.
                let const_phase = |l: AigLit| (l.node() == 0).then_some(l.is_compl());
                let single = match (const_phase(ra), const_phase(rb)) {
                    (None, None) => None,
                    (Some(true), None) => Some(rb),
                    (None, Some(true)) => Some(ra),
                    _ => continue,
                };
                if let Some(rs) = single {
                    for cs in &cuts[rs.node() as usize] {
                        if !seen.insert(cs.leaves.clone()) {
                            continue;
                        }
                        let t = if rs.is_compl() ^ member_phase {
                            cs.tt.not()
                        } else {
                            cs.tt.clone()
                        };
                        merged.push(Cut {
                            leaves: cs.leaves.clone(),
                            tt: t,
                        });
                    }
                    continue;
                }
                for ca in &cuts[ra.node() as usize] {
                    for cb in &cuts[rb.node() as usize] {
                        let mut leaves: Vec<u32> =
                            ca.leaves.iter().chain(cb.leaves.iter()).copied().collect();
                        leaves.sort_unstable();
                        leaves.dedup();
                        if leaves.len() > cfg.k {
                            continue;
                        }
                        if !seen.insert(leaves.clone()) {
                            continue;
                        }
                        let ta = {
                            let t = expand_tt(&ca.tt, &ca.leaves, &leaves);
                            if ra.is_compl() {
                                t.not()
                            } else {
                                t
                            }
                        };
                        let tb = {
                            let t = expand_tt(&cb.tt, &cb.leaves, &leaves);
                            if rb.is_compl() {
                                t.not()
                            } else {
                                t
                            }
                        };
                        let tt_member = ta.and(&tb);
                        let tt = if member_phase {
                            tt_member.not()
                        } else {
                            tt_member
                        };
                        merged.push(Cut { leaves, tt });
                    }
                }
            }
            merged.sort_by_key(|c| c.leaves.len());
            merged.truncate(cfg.max_cuts);
            merged.push(unit_cut(r));
            cuts[r as usize] = merged;
        }
        cuts
    }
}

/// Appends `dn` to class `r`'s dependency list (deduplicated).
fn members_push(deps: &mut [Vec<u32>], r: u32, dn: &[u32]) {
    for &d in dn {
        if !deps[r as usize].contains(&d) {
            deps[r as usize].push(d);
        }
    }
}

/// Does class `from` (transitively) depend on class `target`?
fn reaches(deps: &[Vec<u32>], from: u32, target: u32) -> bool {
    if from == target {
        return true;
    }
    let mut stack = vec![from];
    let mut seen: HashSet<u32> = HashSet::new();
    while let Some(c) = stack.pop() {
        if c == target {
            return true;
        }
        if !seen.insert(c) {
            continue;
        }
        stack.extend_from_slice(&deps[c as usize]);
    }
    false
}

/// Topological order of classes, fanin classes first.
fn topo_classes(aig: &Aig, repr: &[AigLit], members: &[Vec<u32>], deps: &[Vec<u32>]) -> Vec<u32> {
    let n = aig.len();
    let mut order = Vec::new();
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut state = vec![0u8; n];
    for root in 0..n as u32 {
        if repr[root as usize].node() != root || members[root as usize].is_empty() {
            continue;
        }
        if state[root as usize] == 2 {
            continue;
        }
        // Iterative DFS.
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        state[root as usize] = 1;
        while let Some(&mut (c, ref mut di)) = stack.last_mut() {
            if *di < deps[c as usize].len() {
                let d = deps[c as usize][*di];
                *di += 1;
                match state[d as usize] {
                    0 => {
                        state[d as usize] = 1;
                        stack.push((d, 0));
                    }
                    1 => panic!("choice class graph must be acyclic (class {d})"),
                    _ => {}
                }
            } else {
                state[c as usize] = 2;
                order.push(c);
                stack.pop();
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    /// Exhaustively checks that every node equals its class function
    /// (repr xor phase) on all input patterns.
    fn assert_classes_sound(choice: &ChoiceAig) {
        let aig = choice.aig();
        let n = aig.num_pis();
        assert!(n <= 10, "test helper limited to 10 inputs");
        let total = 1usize << n;
        let mut idx = 0;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1u64 << chunk) - 1
            };
            let vals = aig.simulate_nodes(&words);
            for &r in choice.class_order() {
                for &node in choice.members(r) {
                    let rl = choice.repr(node);
                    assert_eq!(rl.node(), r);
                    let expect = if rl.is_compl() {
                        !vals[r as usize]
                    } else {
                        vals[r as usize]
                    };
                    assert_eq!(
                        vals[node as usize] & mask,
                        expect & mask,
                        "node {node} does not match its class {rl:?}"
                    );
                }
            }
            idx += chunk;
        }
    }

    fn sample() -> Aig {
        let net = parse_eqn(
            "INORDER = a b c d;\nOUTORDER = f g;\n\
             f = ((a*b)*c)*d;\n\
             g = (a*b) + (a*c) + (b*c);\n",
        )
        .unwrap();
        Aig::from_network(&net)
    }

    #[test]
    fn build_finds_choices_on_restructurable_logic() {
        let choice = ChoiceAig::build(&sample(), 42);
        assert_classes_sound(&choice);
        // balance restructures the AND chain, so at least one class must
        // hold more than one member.
        assert!(choice.num_choices() > 0, "no choices found");
    }

    #[test]
    fn outputs_preserved_through_combination() {
        let base = sample();
        let choice = ChoiceAig::build(&base, 7);
        assert_eq!(choice.aig().num_pos(), base.num_pos());
        // Combined AIG computes the same outputs as the base.
        let words: Vec<u64> = (0..4u64)
            .map(|i| (i + 1).wrapping_mul(0xA5A5_5A5A_1234))
            .collect();
        assert_eq!(base.simulate(&words), choice.aig().simulate(&words));
    }

    #[test]
    fn class_order_is_topological() {
        let choice = ChoiceAig::build(&sample(), 3);
        let pos: HashMap<u32, usize> = choice
            .class_order()
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        for &r in choice.class_order() {
            for &m in choice.members(r) {
                if !choice.aig().is_and(m) {
                    continue;
                }
                let (a, b) = choice.aig().fanins(m);
                for f in [a, b] {
                    let fr = choice.repr_lit(f).node();
                    if fr == 0 {
                        continue; // constant class is not ordered
                    }
                    assert!(
                        pos[&fr] < pos[&r],
                        "class {r} member {m} depends on later class {fr}"
                    );
                }
            }
        }
    }

    #[test]
    fn class_cuts_encode_canonical_functions() {
        let choice = ChoiceAig::build(&sample(), 11);
        let cuts = choice.class_cuts(&CutConfig::default());
        let aig = choice.aig();
        let n = aig.num_pis();
        let total = 1usize << n;
        // For every cut of every class: on all PI patterns, the tt applied
        // to the leaf values must equal the representative's value.
        let mut idx = 0;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let vals = aig.simulate_nodes(&words);
            for &r in choice.class_order() {
                if !aig.is_and(r) {
                    continue;
                }
                for cut in &cuts[r as usize] {
                    if cut.is_unit(r) {
                        continue;
                    }
                    for bit in 0..chunk {
                        let mut leaf_idx = 0usize;
                        for (i, &l) in cut.leaves.iter().enumerate() {
                            if (vals[l as usize] >> bit) & 1 == 1 {
                                leaf_idx |= 1 << i;
                            }
                        }
                        let expect = (vals[r as usize] >> bit) & 1 == 1;
                        assert_eq!(
                            cut.tt.bit(leaf_idx),
                            expect,
                            "class {r} cut {:?} wrong at pattern {}",
                            cut.leaves,
                            idx + bit
                        );
                    }
                }
            }
            idx += chunk;
        }
    }

    #[test]
    fn constant_fanins_fold_into_single_fanin_cuts() {
        // The inner disjunction is a tautology that only SAT can see
        // ((a*b) + !a + !b); its class is the constant class, which has no
        // cuts. The consuming class must still get usable cuts through
        // the surviving fanin (f reduces to x).
        let net =
            parse_eqn("INORDER = x a b;\nOUTORDER = f;\nf = x * ((a*b) + (!a + !b));\n").unwrap();
        let aig = Aig::from_network(&net);
        let choice = ChoiceAig::build(&aig, 9);
        assert_classes_sound(&choice);
        let out = choice.repr_lit(choice.aig().outputs()[0].1);
        if out.node() != 0 && choice.aig().is_and(out.node()) {
            let cuts = choice.class_cuts(&CutConfig::default());
            assert!(
                cuts[out.node() as usize]
                    .iter()
                    .any(|c| !c.is_unit(out.node())),
                "output class must keep real cuts despite the constant fanin"
            );
        }
    }

    #[test]
    fn from_variants_rejects_mismatched_interfaces() {
        let a = sample();
        let other =
            Aig::from_network(&parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y;\n").unwrap());
        let err = ChoiceAig::from_variants(&[a, other], 1).unwrap_err();
        assert!(err.to_string().contains("primary inputs"));
        assert!(ChoiceAig::from_variants(&[], 1).is_err());
    }

    #[test]
    fn single_variant_choice_aig_has_no_choices() {
        let base = sample();
        let choice = ChoiceAig::from_variants(&[base.cleanup()], 5).unwrap();
        assert_classes_sound(&choice);
        // A single strashed variant may still contain functionally equal
        // nodes, but the motivating chain/majority sample does not.
        assert_eq!(choice.num_choices(), 0);
    }
}
