//! Functional reduction (fraiging): simulation-guided equivalence-class
//! detection with SAT-verified merging.
//!
//! This pass stands in for ABC's `ifraig`/`scorr` steps in the paper's
//! baseline flow: random simulation partitions nodes into candidate
//! equivalence classes; a CDCL SAT solver proves or refutes each candidate
//! pair; refuted pairs contribute counterexample patterns that refine the
//! classes; proven pairs are merged in a copy-based reconstruction.

use crate::aig::{Aig, AigLit, NodeKind};
use esyn_sat::{Lit, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Number of 64-bit random simulation words used for the initial
/// partition.
const SIM_WORDS: usize = 8;

/// Tseitin-encodes the live cone of `aig` into `solver`, one variable per
/// live node (PIs always included). Shared by fraiging and choice-class
/// detection.
pub(crate) fn encode_live_cnf(aig: &Aig, solver: &mut Solver, live: &[bool]) -> HashMap<u32, Var> {
    let mut sat_var: HashMap<u32, Var> = HashMap::new();
    for n in 0..aig.len() as u32 {
        if !live[n as usize] && !matches!(aig.nodes[n as usize], NodeKind::Pi(_)) {
            continue;
        }
        let v = solver.new_var();
        sat_var.insert(n, v);
        match aig.nodes[n as usize] {
            NodeKind::Const => {
                // constant node is FALSE
                solver.add_clause(&[Lit::neg(v)]);
            }
            NodeKind::Pi(_) => {}
            NodeKind::And(a, b) => {
                let la = Lit::with_sign(sat_var[&a.node()], a.is_compl());
                let lb = Lit::with_sign(sat_var[&b.node()], b.is_compl());
                // v -> la, v -> lb, (la & lb) -> v
                solver.add_clause(&[Lit::neg(v), la]);
                solver.add_clause(&[Lit::neg(v), lb]);
                solver.add_clause(&[Lit::pos(v), !la, !lb]);
            }
        }
    }
    sat_var
}

impl Aig {
    /// SAT-verified functional reduction: merges all nodes that are
    /// provably equal (or complementary) as functions of the primary
    /// inputs. `seed` drives the random simulation.
    pub fn fraig(&self, seed: u64) -> Aig {
        let live = self.live_mask();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut solver = Solver::new();
        let sat_var = encode_live_cnf(self, &mut solver, &live);

        // --- Simulation signatures. ---
        let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); self.len()];
        for _ in 0..SIM_WORDS {
            let words: Vec<u64> = (0..self.num_pis()).map(|_| rng.gen()).collect();
            let vals = self.simulate_nodes(&words);
            for n in 0..self.len() {
                signatures[n].push(vals[n]);
            }
        }

        // Representative of each signature class (canonicalized by
        // complementing signatures whose first bit is 1).
        // map from canonical signature -> (repr node, repr sig inverted?)
        let mut merge_with: Vec<Option<AigLit>> = vec![None; self.len()];
        let mut classes: HashMap<Vec<u64>, u32> = HashMap::new();

        // Counterexample patterns are accumulated and applied immediately
        // as an extra signature word updated bit by bit.
        let mut extra_bits = 0usize;
        let mut extra_pi_words: Vec<u64> = vec![0; self.num_pis()];

        for n in 0..self.len() as u32 {
            if !live[n as usize] || !self.is_and(n) {
                continue;
            }
            loop {
                let (canon, inverted) = canonical_signature(&signatures[n as usize]);
                // Constant candidate: all-zero canonical signature.
                if canon.iter().all(|&w| w == 0) {
                    let vn = sat_var[&n];
                    let assume = if inverted { Lit::neg(vn) } else { Lit::pos(vn) };
                    if !solver.solve_with_assumptions(&[assume]) {
                        // n is constant (FALSE if not inverted).
                        merge_with[n as usize] = Some(AigLit::FALSE.xor_compl(inverted));
                        break;
                    }
                    // counterexample distinguishes n from the constant
                    self.absorb_cex(
                        &solver,
                        &sat_var,
                        &mut signatures,
                        &mut extra_bits,
                        &mut extra_pi_words,
                        &mut classes,
                    );
                    continue;
                }
                match classes.get(&canon) {
                    None => {
                        classes.insert(canon, n);
                        break;
                    }
                    Some(&r) => {
                        let (_, r_inverted) = canonical_signature(&signatures[r as usize]);
                        // Hypothesis: n == r ^ compl where compl accounts
                        // for both inversions.
                        let compl = inverted != r_inverted;
                        let vn = sat_var[&n];
                        let vr = sat_var[&r];
                        // check "v_n != v_r ^ compl" satisfiable: two queries
                        let q1 = [
                            Lit::pos(vn),
                            Lit::with_sign(vr, !compl), // v_r' = 0
                        ];
                        let q2 = [Lit::neg(vn), Lit::with_sign(vr, compl)];
                        if !solver.solve_with_assumptions(&q1) {
                            if !solver.solve_with_assumptions(&q2) {
                                merge_with[n as usize] = Some(AigLit::new(r, compl));
                                break;
                            }
                        }
                        // SAT: a model distinguishes them; refine classes.
                        self.absorb_cex(
                            &solver,
                            &sat_var,
                            &mut signatures,
                            &mut extra_bits,
                            &mut extra_pi_words,
                            &mut classes,
                        );
                    }
                }
            }
        }

        // --- Copy-based reconstruction with merges applied. ---
        let mut out = Aig::new();
        for name in self.pi_names() {
            out.add_pi(name.clone());
        }
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; self.len()];
        for n in 0..self.len() as u32 {
            match self.nodes[n as usize] {
                NodeKind::Const => map[n as usize] = AigLit::FALSE,
                NodeKind::Pi(idx) => map[n as usize] = out.pi_lit(idx as usize),
                NodeKind::And(a, b) => {
                    if !live[n as usize] {
                        continue;
                    }
                    map[n as usize] = match merge_with[n as usize] {
                        Some(target) => map[target.node() as usize].xor_compl(target.is_compl()),
                        None => {
                            let fa = map[a.node() as usize].xor_compl(a.is_compl());
                            let fb = map[b.node() as usize].xor_compl(b.is_compl());
                            out.and(fa, fb)
                        }
                    };
                }
            }
        }
        for (name, l) in self.outputs() {
            let lit = map[l.node() as usize].xor_compl(l.is_compl());
            out.add_po(name.clone(), lit);
        }
        out.cleanup()
    }

    /// Reads the SAT model as a counterexample input pattern and folds it
    /// into every node's signature (invalidating the class index, which is
    /// rebuilt lazily). Shared with choice-class detection.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn absorb_cex(
        &self,
        solver: &Solver,
        sat_var: &HashMap<u32, Var>,
        signatures: &mut [Vec<u64>],
        extra_bits: &mut usize,
        extra_pi_words: &mut [u64],
        classes: &mut HashMap<Vec<u64>, u32>,
    ) {
        let bit = *extra_bits % 64;
        if bit == 0 {
            // start a fresh extra word
            for w in extra_pi_words.iter_mut() {
                *w = 0;
            }
            for sig in signatures.iter_mut() {
                sig.push(0);
            }
        }
        for (pi_idx, word) in extra_pi_words.iter_mut().enumerate() {
            let pi_node = 1 + pi_idx as u32; // PIs follow the constant node
            let val = sat_var
                .get(&pi_node)
                .and_then(|&v| solver.value(v))
                .unwrap_or(false);
            if val {
                *word |= 1 << bit;
            }
        }
        *extra_bits += 1;
        let vals = self.simulate_nodes(extra_pi_words);
        for n in 0..self.len() {
            let last = signatures[n].len() - 1;
            signatures[n][last] = vals[n];
        }
        // Signatures changed: the class index keyed on old signatures is
        // stale. Rebuild it from scratch (classes are few; this is cheap
        // relative to SAT calls).
        let stale: Vec<Vec<u64>> = classes.keys().cloned().collect();
        let reps: Vec<u32> = stale.iter().map(|k| classes[k]).collect();
        classes.clear();
        for &r in &reps {
            let (canon, _) = canonical_signature(&signatures[r as usize]);
            classes.entry(canon).or_insert(r);
        }
    }
}

/// Canonicalizes a signature by complementing it when its first bit is 1,
/// so a node and its complement land in the same class.
pub(crate) fn canonical_signature(sig: &[u64]) -> (Vec<u64>, bool) {
    let inverted = sig.first().is_some_and(|w| w & 1 == 1);
    let canon = if inverted {
        sig.iter().map(|w| !w).collect()
    } else {
        sig.to_vec()
    };
    (canon, inverted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    fn assert_equiv(a: &Aig, b: &Aig) {
        assert_eq!(a.num_pis(), b.num_pis());
        let n = a.num_pis();
        assert!(n <= 12);
        let total = 1usize << n;
        let mut idx = 0;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1u64 << chunk) - 1
            };
            for (x, y) in a.simulate(&words).iter().zip(b.simulate(&words)) {
                assert_eq!(x & mask, y & mask);
            }
            idx += chunk;
        }
    }

    #[test]
    fn merges_structurally_different_equal_nodes() {
        // f = a*(b+c), g = a*b + a*c: same function, different structure.
        // strash alone cannot merge them; fraig must.
        let net =
            parse_eqn("INORDER = a b c;\nOUTORDER = f g;\nf = a*(b+c);\ng = a*b + a*c;\n").unwrap();
        let aig = Aig::from_network(&net);
        let fr = aig.fraig(7);
        assert_equiv(&aig, &fr);
        // Both outputs must share one node now.
        assert!(fr.num_ands() < aig.num_ands());
        let (f, g) = (fr.outputs()[0].1, fr.outputs()[1].1);
        assert_eq!(f, g);
    }

    #[test]
    fn detects_constant_nodes() {
        // f = (a & b) & (!a) is constant false but written so strash
        // cannot see it locally through one AND.
        let net = parse_eqn("INORDER = a b;\nOUTORDER = f;\nf = (a*b) * (!a + !b) ;\n").unwrap();
        let aig = Aig::from_network(&net);
        let fr = aig.fraig(3);
        assert_eq!(fr.num_ands(), 0, "constant must be proven");
        assert_eq!(fr.outputs()[0].1, AigLit::FALSE);
    }

    #[test]
    fn detects_complement_equivalence() {
        // g = !(a*b) written as !a + !b: g should merge with f = a*b
        // (complemented).
        let net = parse_eqn("INORDER = a b;\nOUTORDER = f g;\nf = a*b;\ng = !a + !b;\n").unwrap();
        let aig = Aig::from_network(&net);
        let fr = aig.fraig(11);
        assert_equiv(&aig, &fr);
        assert_eq!(fr.num_ands(), 1);
        let (f, g) = (fr.outputs()[0].1, fr.outputs()[1].1);
        assert_eq!(f, g.not());
    }

    #[test]
    fn fraig_on_xor_tree_is_stable() {
        let net = parse_eqn(
            "INORDER = a b c d;\nOUTORDER = p;\np = ((a*!b)+(!a*b)) * !((c*!d)+(!c*d)) + !((a*!b)+(!a*b)) * ((c*!d)+(!c*d));\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let fr = aig.fraig(5);
        assert_equiv(&aig, &fr);
        assert!(fr.num_ands() <= aig.num_ands());
    }
}
