//! Sum-of-products covers: irredundant SOP computation (Minato–Morreale
//! ISOP) from truth tables, and algebraic factoring into AND/OR trees.
//!
//! This is the resynthesis engine behind [`crate::Aig::rewrite`] and
//! [`crate::Aig::refactor`]: a cut's truth table is converted to an
//! irredundant cover, factored, and rebuilt as an AIG fragment.

use esyn_eqn::TruthTable;

/// A product term over up to 16 variables: bit `i` of `pos`/`neg` set means
/// variable `i` appears as a positive/negative literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Positive-literal mask.
    pub pos: u16,
    /// Negative-literal mask.
    pub neg: u16,
}

impl Cube {
    /// The cube containing no literals (the constant-true product).
    pub fn tautology() -> Self {
        Cube { pos: 0, neg: 0 }
    }

    /// True when the cube has no literals.
    pub fn is_tautology(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> usize {
        (self.pos.count_ones() + self.neg.count_ones()) as usize
    }

    /// Adds a positive (`negated = false`) or negative literal of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= 16` or if the opposite literal is already present.
    pub fn with_literal(mut self, var: usize, negated: bool) -> Self {
        assert!(var < 16, "cube supports at most 16 variables");
        let bit = 1u16 << var;
        if negated {
            assert_eq!(self.pos & bit, 0, "contradictory literal");
            self.neg |= bit;
        } else {
            assert_eq!(self.neg & bit, 0, "contradictory literal");
            self.pos |= bit;
        }
        self
    }

    /// Evaluates the cube under the assignment encoded by `index`.
    pub fn eval(&self, index: usize) -> bool {
        let idx = index as u16;
        (idx & self.pos) == self.pos && (idx & self.neg) == 0
    }

    /// The literals of this cube as `(var, negated)` pairs.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        (0..16usize).filter_map(move |v| {
            let bit = 1u16 << v;
            if self.pos & bit != 0 {
                Some((v, false))
            } else if self.neg & bit != 0 {
                Some((v, true))
            } else {
                None
            }
        })
    }
}

/// A sum-of-products cover.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
    num_vars: usize,
}

impl Sop {
    /// Computes an irredundant SOP of `f` with the Minato–Morreale ISOP
    /// algorithm (no don't-cares: lower bound = upper bound = `f`).
    ///
    /// # Panics
    ///
    /// Panics if `f` has more than 16 variables.
    pub fn isop(f: &TruthTable) -> Sop {
        assert!(f.num_vars() <= 16);
        let cubes = isop_rec(f, f);
        Sop {
            cubes,
            num_vars: f.num_vars(),
        }
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of variables the cover ranges over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total literal count (a classic cover-quality metric).
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Evaluates the cover back into a truth table (for verification).
    pub fn to_truth_table(&self) -> TruthTable {
        let mut tt = TruthTable::zeros(self.num_vars);
        for idx in 0..(1usize << self.num_vars) {
            if self.cubes.iter().any(|c| c.eval(idx)) {
                let mut words = tt.words().to_vec();
                words[idx / 64] |= 1u64 << (idx % 64);
                tt = TruthTable::from_words(self.num_vars, words);
            }
        }
        tt
    }

    /// Factors the cover into an AND/OR/literal tree using greedy
    /// most-common-literal division.
    pub fn factor(&self) -> FactorTree {
        factor_cubes(&self.cubes)
    }
}

/// An AND/OR/NOT-literal expression tree produced by factoring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactorTree {
    /// Constant false / true.
    Const(bool),
    /// A literal of variable `var`; `negated` selects the complement.
    Lit {
        /// Variable index.
        var: usize,
        /// Complemented literal when true.
        negated: bool,
    },
    /// Conjunction.
    And(Box<FactorTree>, Box<FactorTree>),
    /// Disjunction.
    Or(Box<FactorTree>, Box<FactorTree>),
}

impl FactorTree {
    /// Number of literal leaves in the tree.
    pub fn num_leaves(&self) -> usize {
        match self {
            FactorTree::Const(_) => 0,
            FactorTree::Lit { .. } => 1,
            FactorTree::And(a, b) | FactorTree::Or(a, b) => a.num_leaves() + b.num_leaves(),
        }
    }

    /// Evaluates the tree under the assignment encoded by `index`.
    pub fn eval(&self, index: usize) -> bool {
        match self {
            FactorTree::Const(v) => *v,
            FactorTree::Lit { var, negated } => ((index >> var) & 1 == 1) != *negated,
            FactorTree::And(a, b) => a.eval(index) && b.eval(index),
            FactorTree::Or(a, b) => a.eval(index) || b.eval(index),
        }
    }
}

fn isop_rec(l: &TruthTable, u: &TruthTable) -> Vec<Cube> {
    debug_assert!(l.and(&u.not()).is_zero(), "ISOP requires L <= U");
    if l.is_zero() {
        return Vec::new();
    }
    if u.is_ones() {
        return vec![Cube::tautology()];
    }
    let n = l.num_vars();
    let x = (0..n)
        .find(|&v| l.depends_on(v) || u.depends_on(v))
        .expect("non-constant bounds must depend on some variable");

    let l0 = l.cofactor(x, false);
    let l1 = l.cofactor(x, true);
    let u0 = u.cofactor(x, false);
    let u1 = u.cofactor(x, true);

    // Cubes that must carry !x: needed where f can be 1 only under x = 0.
    let c0 = isop_rec(&l0.and(&u1.not()), &u0);
    // Cubes that must carry x.
    let c1 = isop_rec(&l1.and(&u0.not()), &u1);

    let cover0 = cover_tt(&c0, n);
    let cover1 = cover_tt(&c1, n);
    let lnew = l0.and(&cover0.not()).or(&l1.and(&cover1.not()));
    // Cubes independent of x.
    let c2 = isop_rec(&lnew, &u0.and(&u1));

    let mut out = Vec::with_capacity(c0.len() + c1.len() + c2.len());
    out.extend(c0.into_iter().map(|c| c.with_literal(x, true)));
    out.extend(c1.into_iter().map(|c| c.with_literal(x, false)));
    out.extend(c2);
    out
}

fn cover_tt(cubes: &[Cube], num_vars: usize) -> TruthTable {
    let nwords = if num_vars <= 6 {
        1
    } else {
        1usize << (num_vars - 6)
    };
    let mut words = vec![0u64; nwords];
    for idx in 0..(1usize << num_vars) {
        if cubes.iter().any(|c| c.eval(idx)) {
            words[idx / 64] |= 1u64 << (idx % 64);
        }
    }
    TruthTable::from_words(num_vars, words)
}

fn factor_cubes(cubes: &[Cube]) -> FactorTree {
    if cubes.is_empty() {
        return FactorTree::Const(false);
    }
    if cubes.iter().any(Cube::is_tautology) {
        return FactorTree::Const(true);
    }
    if cubes.len() == 1 {
        return cube_tree(&cubes[0]);
    }
    // Most common literal across cubes.
    let mut counts: Vec<(usize, bool, usize)> = Vec::new(); // (var, neg, count)
    for c in cubes {
        for (var, neg) in c.literals() {
            match counts.iter_mut().find(|(v, n, _)| *v == var && *n == neg) {
                Some((_, _, k)) => *k += 1,
                None => counts.push((var, neg, 1)),
            }
        }
    }
    let &(var, neg, count) = counts
        .iter()
        .max_by_key(|&&(v, n, k)| (k, std::cmp::Reverse(v), n))
        .expect("non-empty cubes have literals");

    if count > 1 {
        let bit = 1u16 << var;
        let mut quotient = Vec::new();
        let mut remainder = Vec::new();
        for c in cubes {
            let has = if neg {
                c.neg & bit != 0
            } else {
                c.pos & bit != 0
            };
            if has {
                let mut q = *c;
                if neg {
                    q.neg &= !bit;
                } else {
                    q.pos &= !bit;
                }
                quotient.push(q);
            } else {
                remainder.push(*c);
            }
        }
        let lit = FactorTree::Lit { var, negated: neg };
        let q_tree = factor_cubes(&quotient);
        let branch = match q_tree {
            FactorTree::Const(true) => lit,
            q => FactorTree::And(Box::new(lit), Box::new(q)),
        };
        if remainder.is_empty() {
            branch
        } else {
            FactorTree::Or(Box::new(branch), Box::new(factor_cubes(&remainder)))
        }
    } else {
        // No shared literal: balanced OR over the cube trees.
        let mut trees: Vec<FactorTree> = cubes.iter().map(cube_tree).collect();
        while trees.len() > 1 {
            let mut next = Vec::with_capacity(trees.len().div_ceil(2));
            let mut it = trees.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(FactorTree::Or(Box::new(a), Box::new(b))),
                    None => next.push(a),
                }
            }
            trees = next;
        }
        trees.pop().expect("at least one cube")
    }
}

fn cube_tree(cube: &Cube) -> FactorTree {
    let mut lits: Vec<FactorTree> = cube
        .literals()
        .map(|(var, negated)| FactorTree::Lit { var, negated })
        .collect();
    if lits.is_empty() {
        return FactorTree::Const(true);
    }
    while lits.len() > 1 {
        let mut next = Vec::with_capacity(lits.len().div_ceil(2));
        let mut it = lits.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(FactorTree::And(Box::new(a), Box::new(b))),
                None => next.push(a),
            }
        }
        lits = next;
    }
    lits.pop().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt_of(num_vars: usize, f: impl Fn(usize) -> bool) -> TruthTable {
        let nwords = if num_vars <= 6 {
            1
        } else {
            1 << (num_vars - 6)
        };
        let mut words = vec![0u64; nwords];
        for idx in 0..(1usize << num_vars) {
            if f(idx) {
                words[idx / 64] |= 1 << (idx % 64);
            }
        }
        TruthTable::from_words(num_vars, words)
    }

    #[test]
    fn isop_covers_exactly() {
        // check dozens of functions: ISOP cover must equal the function
        for seed in 0..40u64 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut rnd = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let bits = rnd();
            let tt = tt_of(4, |idx| (bits >> idx) & 1 == 1);
            let sop = Sop::isop(&tt);
            assert_eq!(sop.to_truth_table(), tt, "seed {seed}");
        }
    }

    #[test]
    fn isop_constants() {
        let zero = TruthTable::zeros(3);
        assert!(Sop::isop(&zero).cubes().is_empty());
        let one = zero.not();
        let sop = Sop::isop(&one);
        assert_eq!(sop.cubes().len(), 1);
        assert!(sop.cubes()[0].is_tautology());
    }

    #[test]
    fn isop_single_variable() {
        let v = TruthTable::var(4, 2);
        let sop = Sop::isop(&v);
        assert_eq!(sop.cubes().len(), 1);
        assert_eq!(sop.num_literals(), 1);
        assert_eq!(sop.cubes()[0].pos, 1 << 2);
    }

    #[test]
    fn isop_is_irredundant_for_xor() {
        // XOR of 3 vars has exactly 4 minterms; minimal SOP = 4 cubes of
        // 3 literals.
        let tt = tt_of(3, |idx| (idx.count_ones() % 2) == 1);
        let sop = Sop::isop(&tt);
        assert_eq!(sop.cubes().len(), 4);
        assert_eq!(sop.num_literals(), 12);
        assert_eq!(sop.to_truth_table(), tt);
    }

    #[test]
    fn isop_eight_vars_multiword() {
        let tt = tt_of(8, |idx| (idx & 0b11) == 0b11 || (idx >> 6) == 0b10);
        let sop = Sop::isop(&tt);
        assert_eq!(sop.to_truth_table(), tt);
        assert!(sop.cubes().len() <= 3);
    }

    #[test]
    fn factor_preserves_function() {
        for seed in 0..40u64 {
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
            let mut rnd = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let bits = rnd();
            let tt = tt_of(4, |idx| (bits >> idx) & 1 == 1);
            let tree = Sop::isop(&tt).factor();
            for idx in 0..16 {
                assert_eq!(tree.eval(idx), tt.bit(idx), "seed {seed} idx {idx}");
            }
        }
    }

    #[test]
    fn factor_shares_common_literal() {
        // a*b + a*c should factor as a*(b+c): 3 leaves, not 4.
        let tt = tt_of(3, |idx| {
            let a = idx & 1 == 1;
            let b = (idx >> 1) & 1 == 1;
            let c = (idx >> 2) & 1 == 1;
            (a && b) || (a && c)
        });
        let tree = Sop::isop(&tt).factor();
        assert_eq!(tree.num_leaves(), 3, "{tree:?}");
    }

    #[test]
    fn factor_constants() {
        assert_eq!(factor_cubes(&[]), FactorTree::Const(false));
        assert_eq!(factor_cubes(&[Cube::tautology()]), FactorTree::Const(true));
    }

    #[test]
    fn cube_api() {
        let c = Cube::tautology()
            .with_literal(0, false)
            .with_literal(3, true);
        assert_eq!(c.num_literals(), 2);
        assert!(c.eval(0b0001));
        assert!(!c.eval(0b1001)); // var3 = 1 violates the negative literal
        assert!(!c.eval(0b0000)); // var0 = 0 violates the positive literal
        let lits: Vec<_> = c.literals().collect();
        assert_eq!(lits, vec![(0, false), (3, true)]);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn cube_rejects_contradiction() {
        let _ = Cube::tautology()
            .with_literal(1, false)
            .with_literal(1, true);
    }
}
