//! And-Inverter Graphs and technology-independent optimisation.
//!
//! This crate is the workspace's substitute for ABC's AIG core: it provides
//! the [`Aig`] structure with structural hashing and complemented edges,
//! conversion to/from the [`esyn_eqn::Network`] IR, and the classic
//! DAG-aware optimisation passes the paper compares against:
//!
//! * [`Aig::rewrite`] — cut-based rewriting (`rw` / `rwz`), resynthesizing
//!   4-feasible cuts via ISOP + algebraic factoring and accepting changes
//!   with positive (or zero) gain, measured MFFC-style;
//! * [`Aig::refactor`] — the same resynthesis over larger (up to 8-input)
//!   cuts (`rf` / `rfz`);
//! * [`Aig::balance`] — AND-tree balancing (`b`);
//! * [`Aig::fraig`] — simulation-guided, SAT-verified node merging, the
//!   fraig-style functional reduction that stands in for `ifraig`/`scorr`;
//! * [`ChoiceAig`] — structural choices (ABC's `dch`): several synthesis
//!   variants merged into one AIG with SAT-proven choice classes, consumed
//!   by the choice-aware mapper in `esyn-techmap`;
//! * [`scripts`] — composite sequences approximating `dc2`/`compress2`;
//! * [`fuzz`] — a random combinational AIG generator (aigfuzz substitute)
//!   used to produce cost-model training data.
//!
//! # Example
//!
//! ```
//! use esyn_eqn::parse_eqn;
//! use esyn_aig::Aig;
//!
//! let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + ((a*b)*c);\n")?;
//! let mut aig = Aig::from_network(&net);
//! let before = aig.num_ands();
//! aig = aig.rewrite(false);
//! assert!(aig.num_ands() <= before);
//! # Ok::<(), esyn_eqn::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod aig;
mod aiger;
mod balance;
mod choice;
mod cut;
mod fraig;
pub mod fuzz;
mod rewrite;
pub mod scripts;
mod sop;

pub use aig::{Aig, AigLit};
pub use aiger::AigerError;
pub use choice::{ChoiceAig, ChoiceVariantError};
pub use cut::{Cut, CutConfig};
pub use sop::{Cube, Sop};
