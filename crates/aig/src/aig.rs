//! The core And-Inverter Graph structure.

use esyn_eqn::{Network, Node as EqnNode, NodeId};
use std::collections::HashMap;

/// A literal: an AIG node index with a complement bit (`node << 1 | compl`).
///
/// Node 0 is the constant-FALSE node, so [`AigLit::FALSE`] is `0` and
/// [`AigLit::TRUE`] is `1`, matching the AIGER convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from a node index and complement flag.
    pub fn new(node: u32, compl: bool) -> Self {
        AigLit(node << 1 | compl as u32)
    }

    /// The node index this literal refers to.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// True when the literal is complemented.
    pub fn is_compl(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        AigLit(self.0 ^ 1)
    }

    /// Complements the literal iff `c` is true.
    pub fn xor_compl(self, c: bool) -> Self {
        AigLit(self.0 ^ c as u32)
    }

    /// True when this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl std::fmt::Debug for AigLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_compl() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// Kind of an AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NodeKind {
    Const,
    Pi(u32),
    And(AigLit, AigLit),
}

/// An And-Inverter Graph: two-input AND nodes with complemented edges,
/// structurally hashed.
///
/// Node 0 is constant false; primary inputs follow; AND nodes are appended
/// as they are built, so ascending node index is a topological order.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    pub(crate) nodes: Vec<NodeKind>,
    strash: HashMap<(AigLit, AigLit), u32>,
    pi_names: Vec<String>,
    pos: Vec<(String, AigLit)>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![NodeKind::Const],
            strash: HashMap::new(),
            pi_names: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Total nodes (constant + PIs + ANDs, live or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the constant node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.pi_names.len()
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Primary-input names, in declaration order.
    pub fn pi_names(&self) -> &[String] {
        &self.pi_names
    }

    /// Primary outputs (name, literal).
    pub fn outputs(&self) -> &[(String, AigLit)] {
        &self.pos
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if any AND node already exists: PIs must be declared first so
    /// that PI `i` always lives at node index `1 + i` (an invariant the
    /// simulation and CNF layers rely on).
    pub fn add_pi(&mut self, name: impl Into<String>) -> AigLit {
        assert_eq!(
            self.nodes.len(),
            1 + self.pi_names.len(),
            "primary inputs must be added before any AND node"
        );
        let idx = self.pi_names.len() as u32;
        self.pi_names.push(name.into());
        let node = self.nodes.len() as u32;
        self.nodes.push(NodeKind::Pi(idx));
        AigLit::new(node, false)
    }

    /// Declares a primary output.
    pub fn add_po(&mut self, name: impl Into<String>, lit: AigLit) {
        self.pos.push((name.into(), lit));
    }

    /// The literal of primary input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn pi_lit(&self, idx: usize) -> AigLit {
        assert!(idx < self.pi_names.len());
        AigLit::new(1 + idx as u32, false)
    }

    /// True when `node` is an AND node.
    pub fn is_and(&self, node: u32) -> bool {
        matches!(self.nodes[node as usize], NodeKind::And(..))
    }

    /// True when `node` is a primary input.
    pub fn is_pi(&self, node: u32) -> bool {
        matches!(self.nodes[node as usize], NodeKind::Pi(_))
    }

    /// Fanins of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an AND node.
    pub fn fanins(&self, node: u32) -> (AigLit, AigLit) {
        match self.nodes[node as usize] {
            NodeKind::And(a, b) => (a, b),
            _ => panic!("node {node} is not an AND"),
        }
    }

    /// Looks up an AND of `a` and `b` without creating it. Returns the
    /// result literal if it is structurally present or trivially known.
    pub fn lookup_and(&self, a: AigLit, b: AigLit) -> Option<AigLit> {
        match Self::normalize(a, b) {
            AndForm::Const(l) | AndForm::Alias(l) => Some(l),
            AndForm::Pair(x, y) => self.strash.get(&(x, y)).map(|&n| AigLit::new(n, false)),
        }
    }

    /// The AND of two literals, structurally hashed, with trivial-case
    /// simplification (`a&a = a`, `a&!a = 0`, constants).
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        match Self::normalize(a, b) {
            AndForm::Const(l) | AndForm::Alias(l) => l,
            AndForm::Pair(x, y) => {
                if let Some(&n) = self.strash.get(&(x, y)) {
                    return AigLit::new(n, false);
                }
                let n = self.nodes.len() as u32;
                self.nodes.push(NodeKind::And(x, y));
                self.strash.insert((x, y), n);
                AigLit::new(n, false)
            }
        }
    }

    /// Appends an AND node *verbatim* (no normalisation), for file loaders
    /// that must honour externally fixed node indices. The strash table is
    /// still updated so later [`Aig::and`] calls can reuse the node.
    pub(crate) fn push_raw_and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n = self.nodes.len() as u32;
        self.nodes.push(NodeKind::And(a, b));
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.strash.entry((x, y)).or_insert(n);
        AigLit::new(n, false)
    }

    /// Overwrites PI names where `names[i]` is `Some` (symbol tables).
    pub(crate) fn rename_pis(&mut self, names: &[Option<String>]) {
        for (i, n) in names.iter().enumerate() {
            if let Some(n) = n {
                self.pi_names[i] = n.clone();
            }
        }
    }

    fn normalize(a: AigLit, b: AigLit) -> AndForm {
        if a == AigLit::FALSE || b == AigLit::FALSE {
            return AndForm::Const(AigLit::FALSE);
        }
        if a == AigLit::TRUE {
            return AndForm::Alias(b);
        }
        if b == AigLit::TRUE {
            return AndForm::Alias(a);
        }
        if a == b {
            return AndForm::Alias(a);
        }
        if a == b.not() {
            return AndForm::Const(AigLit::FALSE);
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        AndForm::Pair(x, y)
    }

    /// `!(!a & !b)`.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.not(), b.not()).not()
    }

    /// Exclusive OR (two ANDs plus an OR, the standard 3-node form).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let x = self.and(a, b.not());
        let y = self.and(a.not(), b);
        self.or(x, y)
    }

    /// 2:1 multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let x = self.and(sel, t);
        let y = self.and(sel.not(), e);
        self.or(x, y)
    }

    /// Live AND-node count (reachable from the outputs). This is the
    /// "#and" metric of the paper's Figure 1.
    pub fn num_ands(&self) -> usize {
        let mut count = 0;
        self.for_each_live(|aig, n| {
            if aig.is_and(n) {
                count += 1;
            }
        });
        count
    }

    /// Logic depth: the maximum number of AND nodes on any input-to-output
    /// path (the "#level" metric of Figure 1).
    pub fn num_levels(&self) -> usize {
        let levels = self.levels();
        self.pos
            .iter()
            .map(|&(_, l)| levels[l.node() as usize] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Per-node level: PIs and the constant at 0, ANDs at
    /// `1 + max(fanin levels)`.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for n in 0..self.nodes.len() {
            if let NodeKind::And(a, b) = self.nodes[n] {
                levels[n] = 1 + levels[a.node() as usize].max(levels[b.node() as usize]);
            }
        }
        levels
    }

    /// Marks nodes reachable from the primary outputs.
    pub(crate) fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.pos.iter().map(|&(_, l)| l.node()).collect();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n as usize], true) {
                continue;
            }
            if let NodeKind::And(a, b) = self.nodes[n as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        live
    }

    fn for_each_live(&self, mut f: impl FnMut(&Aig, u32)) {
        let live = self.live_mask();
        for n in 0..self.nodes.len() as u32 {
            if live[n as usize] {
                f(self, n);
            }
        }
    }

    /// Fanout counts (restricted to live nodes; POs count as fanouts).
    pub(crate) fn fanout_counts(&self) -> Vec<u32> {
        let live = self.live_mask();
        let mut refs = vec![0u32; self.nodes.len()];
        for n in 0..self.nodes.len() {
            if !live[n] {
                continue;
            }
            if let NodeKind::And(a, b) = self.nodes[n] {
                refs[a.node() as usize] += 1;
                refs[b.node() as usize] += 1;
            }
        }
        for &(_, l) in &self.pos {
            refs[l.node() as usize] += 1;
        }
        refs
    }

    /// Rebuilds the AIG keeping only live logic; node ids are re-compacted
    /// but PI order, PO order and all functions are preserved.
    pub fn cleanup(&self) -> Aig {
        let mut out = Aig::new();
        for name in &self.pi_names {
            out.add_pi(name.clone());
        }
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; self.nodes.len()];
        let live = self.live_mask();
        for n in 0..self.nodes.len() {
            if !live[n] {
                continue;
            }
            map[n] = match self.nodes[n] {
                NodeKind::Const => AigLit::FALSE,
                NodeKind::Pi(idx) => out.pi_lit(idx as usize),
                NodeKind::And(a, b) => {
                    let fa = map[a.node() as usize].xor_compl(a.is_compl());
                    let fb = map[b.node() as usize].xor_compl(b.is_compl());
                    out.and(fa, fb)
                }
            };
        }
        for (name, l) in &self.pos {
            let ml = map[l.node() as usize].xor_compl(l.is_compl());
            out.add_po(name.clone(), ml);
        }
        out
    }

    /// Converts a Boolean [`Network`] into an AIG (`strash` in ABC terms):
    /// OR becomes a complemented AND via De Morgan, NOT becomes edge
    /// complementation.
    pub fn from_network(net: &Network) -> Aig {
        let mut aig = Aig::new();
        let mut map: HashMap<NodeId, AigLit> = HashMap::new();
        for name in net.input_names() {
            aig.add_pi(name.clone());
        }
        for id in net.topo_order() {
            let lit = match net.node(id) {
                EqnNode::Const(v) => {
                    if v {
                        AigLit::TRUE
                    } else {
                        AigLit::FALSE
                    }
                }
                EqnNode::Input(idx) => aig.pi_lit(idx as usize),
                EqnNode::Not(a) => map[&a].not(),
                EqnNode::And(a, b) => {
                    let (fa, fb) = (map[&a], map[&b]);
                    aig.and(fa, fb)
                }
                EqnNode::Or(a, b) => {
                    let (fa, fb) = (map[&a], map[&b]);
                    aig.or(fa, fb)
                }
            };
            map.insert(id, lit);
        }
        for (name, id) in net.outputs() {
            aig.add_po(name.clone(), map[id]);
        }
        aig
    }

    /// Converts back to the {AND, OR, NOT} network IR. Complemented edges
    /// become NOT nodes (shared via the network's hash-consing).
    pub fn to_network(&self) -> Network {
        let mut net = Network::new();
        for name in &self.pi_names {
            net.input(name.clone());
        }
        let mut map: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        let lit_of = |net: &mut Network, map: &[NodeId], l: AigLit| {
            let id = map[l.node() as usize];
            if l.is_compl() {
                net.not(id)
            } else {
                id
            }
        };
        for n in 0..self.nodes.len() {
            let id = match self.nodes[n] {
                NodeKind::Const => net.constant(false),
                NodeKind::Pi(idx) => {
                    let name = self.pi_names[idx as usize].clone();
                    net.input(name)
                }
                NodeKind::And(a, b) => {
                    let fa = lit_of(&mut net, &map, a);
                    let fb = lit_of(&mut net, &map, b);
                    net.and(fa, fb)
                }
            };
            map.push(id);
        }
        for (name, l) in &self.pos {
            let id = lit_of(&mut net, &map, *l);
            net.output(name.clone(), id);
        }
        net
    }

    /// Bit-parallel simulation: `pi_words[i]` carries 64 stimulus bits for
    /// PI `i`; returns one word per node (index = node id).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one word per PI is supplied.
    pub fn simulate_nodes(&self, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.num_pis(), "one word per PI");
        let mut vals = vec![0u64; self.nodes.len()];
        for n in 0..self.nodes.len() {
            vals[n] = match self.nodes[n] {
                NodeKind::Const => 0,
                NodeKind::Pi(idx) => pi_words[idx as usize],
                NodeKind::And(a, b) => {
                    let va = vals[a.node() as usize] ^ if a.is_compl() { u64::MAX } else { 0 };
                    let vb = vals[b.node() as usize] ^ if b.is_compl() { u64::MAX } else { 0 };
                    va & vb
                }
            };
        }
        vals
    }

    /// Simulates and returns one response word per output.
    pub fn simulate(&self, pi_words: &[u64]) -> Vec<u64> {
        let vals = self.simulate_nodes(pi_words);
        self.pos
            .iter()
            .map(|&(_, l)| vals[l.node() as usize] ^ if l.is_compl() { u64::MAX } else { 0 })
            .collect()
    }
}

enum AndForm {
    Const(AigLit),
    Alias(AigLit),
    Pair(AigLit, AigLit),
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    #[test]
    fn lit_encoding() {
        let l = AigLit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_compl());
        assert!(!l.not().is_compl());
        assert_eq!(l.xor_compl(true), l.not());
        assert_eq!(l.xor_compl(false), l);
        assert_eq!(AigLit::FALSE.not(), AigLit::TRUE);
        assert!(AigLit::TRUE.is_const());
    }

    #[test]
    fn and_simplifications() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), AigLit::FALSE);
        let ab = g.and(a, b);
        let ba = g.and(b, a);
        assert_eq!(ab, ba, "structural hashing is commutative");
        assert_eq!(g.len(), 4); // const + 2 PIs + 1 AND
    }

    #[test]
    fn lookup_and_does_not_create() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        assert_eq!(g.lookup_and(a, b), None);
        let ab = g.and(a, b);
        assert_eq!(g.lookup_and(b, a), Some(ab));
        assert_eq!(g.lookup_and(a, AigLit::TRUE), Some(a));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn or_xor_mux_functions() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let c = g.add_pi("c");
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        let mux = g.mux(a, b, c);
        g.add_po("or", or);
        g.add_po("xor", xor);
        g.add_po("mux", mux);
        let res = g.simulate(&[0b1100, 0b1010, 0b1111]);
        assert_eq!(res[0] & 0xF, 0b1110);
        assert_eq!(res[1] & 0xF, 0b0110);
        assert_eq!(res[2] & 0xF, 0b1011); // a ? b : c with c=1111
    }

    #[test]
    fn network_roundtrip_preserves_function() {
        let net = parse_eqn(
            "INORDER = a b c d;\nOUTORDER = f g;\nf = (a*b) + (!c*d);\ng = !(a + (b*!d));\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let back = aig.to_network();
        assert_eq!(net.truth_tables(), back.truth_tables());
        assert_eq!(back.input_names(), net.input_names());
        assert_eq!(back.outputs().len(), 2);
    }

    #[test]
    fn counts_and_levels() {
        // f = (a & b) | (c & d): 3 AND nodes, 2 levels.
        let net = parse_eqn("INORDER = a b c d;\nOUTORDER = f;\nf = a*b + c*d;\n").unwrap();
        let aig = Aig::from_network(&net);
        assert_eq!(aig.num_ands(), 3);
        assert_eq!(aig.num_levels(), 2);
    }

    #[test]
    fn cleanup_drops_dead_nodes() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let keep = g.and(a, b);
        let _dead = g.xor(a, b); // 3 nodes, never used
        g.add_po("f", keep.not());
        assert_eq!(g.num_ands(), 1);
        let cleaned = g.cleanup();
        assert_eq!(cleaned.len(), 4); // const + 2 PI + 1 AND
        assert_eq!(cleaned.num_ands(), 1);
        // function preserved
        let x = g.simulate(&[0b1100, 0b1010]);
        let y = cleaned.simulate(&[0b1100, 0b1010]);
        assert_eq!(x[0] & 0xF, y[0] & 0xF);
    }

    #[test]
    fn constant_output_network() {
        let net = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a * !a;\n").unwrap();
        let aig = Aig::from_network(&net);
        assert_eq!(aig.num_ands(), 0);
        assert_eq!(aig.outputs()[0].1, AigLit::FALSE);
        let back = aig.to_network();
        assert!(back.truth_tables()[0].is_zero());
    }

    #[test]
    fn fanout_counts_include_pos() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let ab = g.and(a, b);
        g.add_po("f", ab);
        g.add_po("g", ab.not());
        let refs = g.fanout_counts();
        assert_eq!(refs[ab.node() as usize], 2);
        assert_eq!(refs[a.node() as usize], 1);
    }
}
