//! DAG-aware cut rewriting (`rw`/`rwz`) and the shared resynthesis
//! machinery used by refactoring.
//!
//! The pass follows ABC's rewriting discipline adapted to a
//! copy-based implementation (which is cycle-safe by construction):
//!
//! 1. enumerate 4-feasible cuts with truth tables;
//! 2. for each node, resynthesize each cut function via ISOP + algebraic
//!    factoring (both polarities);
//! 3. estimate *gain* = MFFC size of the cut cone in the old graph minus
//!    the number of genuinely new AND nodes the candidate needs in the new
//!    graph (computed by a strash-aware dry run);
//! 4. keep the best candidate when gain is positive (or zero for the
//!    zero-cost variants `rwz`/`rfz`), otherwise copy the node unchanged.

use crate::aig::{Aig, AigLit, NodeKind};
use crate::cut::{enumerate_cuts, Cut, CutConfig};
use crate::sop::{FactorTree, Sop};
use esyn_eqn::TruthTable;
use std::collections::HashMap;

impl Aig {
    /// Cut-based DAG-aware rewriting (ABC `rewrite`). With
    /// `zero_cost = true` also applies gain-0 replacements (`rwz`),
    /// which unlocks further optimisation in later passes.
    pub fn rewrite(&self, zero_cost: bool) -> Aig {
        self.resynth_pass(zero_cost, ResynthMode::Cuts(CutConfig::default()))
    }

    /// Refactoring with one reconvergence-driven cut of up to `k` (≤ 8)
    /// leaves per node (ABC `refactor` / `rfz`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `3..=8`.
    pub fn refactor(&self, zero_cost: bool, k: usize) -> Aig {
        assert!((3..=8).contains(&k), "refactor cut size must be 3..=8");
        self.resynth_pass(zero_cost, ResynthMode::Reconv(k))
    }

    fn resynth_pass(&self, zero_cost: bool, mode: ResynthMode) -> Aig {
        let cuts = match mode {
            ResynthMode::Cuts(cfg) => Some(enumerate_cuts(self, &cfg)),
            ResynthMode::Reconv(_) => None,
        };
        let live = self.live_mask();
        let mut refs = self.fanout_counts();

        let mut out = Aig::new();
        for name in self.pi_names() {
            out.add_pi(name.clone());
        }
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; self.len()];

        for n in 0..self.len() as u32 {
            match self.nodes[n as usize] {
                NodeKind::Const => map[n as usize] = AigLit::FALSE,
                NodeKind::Pi(idx) => map[n as usize] = out.pi_lit(idx as usize),
                NodeKind::And(a, b) => {
                    if !live[n as usize] {
                        continue;
                    }
                    let node_cuts: Vec<Cut> = match mode {
                        ResynthMode::Cuts(_) => cuts.as_ref().expect("enumerated")[n as usize]
                            .iter()
                            .filter(|c| !c.is_unit(n))
                            .cloned()
                            .collect(),
                        ResynthMode::Reconv(k) => {
                            let leaves = crate::cut::reconv_cut(self, n, k);
                            let tt = crate::cut::cone_tt(self, n, &leaves);
                            vec![Cut { leaves, tt }]
                        }
                    };

                    let mut best: Option<(isize, &Cut, FactorTree, bool)> = None;
                    for cut in &node_cuts {
                        let mffc = mffc_size(self, n, &cut.leaves, &mut refs) as isize;
                        let leaf_lits: Vec<AigLit> =
                            cut.leaves.iter().map(|&l| map[l as usize]).collect();
                        for (tree, compl) in candidate_trees(&cut.tt) {
                            let cost = dry_run_cost(&out, &tree, &leaf_lits) as isize;
                            let gain = mffc - cost;
                            let acceptable = gain > 0 || (zero_cost && gain == 0);
                            if !acceptable {
                                continue;
                            }
                            if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                                best = Some((gain, cut, tree, compl));
                            }
                        }
                    }

                    map[n as usize] = match best {
                        Some((_, cut, tree, compl)) => {
                            let leaf_lits: Vec<AigLit> =
                                cut.leaves.iter().map(|&l| map[l as usize]).collect();
                            let lit = build_tree_real(&mut out, &tree, &leaf_lits);
                            lit.xor_compl(compl)
                        }
                        None => {
                            let fa = map[a.node() as usize].xor_compl(a.is_compl());
                            let fb = map[b.node() as usize].xor_compl(b.is_compl());
                            out.and(fa, fb)
                        }
                    };
                }
            }
        }
        for (name, l) in self.outputs() {
            let lit = map[l.node() as usize].xor_compl(l.is_compl());
            out.add_po(name.clone(), lit);
        }
        out.cleanup()
    }
}

#[derive(Clone, Copy, Debug)]
enum ResynthMode {
    Cuts(CutConfig),
    Reconv(usize),
}

/// Both polarities of the resynthesis: factoring the on-set, and factoring
/// the off-set with a complemented output.
fn candidate_trees(tt: &TruthTable) -> [(FactorTree, bool); 2] {
    [
        (Sop::isop(tt).factor(), false),
        (Sop::isop(&tt.not()).factor(), true),
    ]
}

/// Size of the maximal fanout-free cone of `root` above `leaves`: the
/// number of AND nodes that die when `root` is replaced. Uses the
/// dereference/re-reference trick on the shared `refs` array (restored
/// before returning).
pub(crate) fn mffc_size(aig: &Aig, root: u32, leaves: &[u32], refs: &mut [u32]) -> usize {
    let mut count = 1; // the root itself
    let mut touched: Vec<u32> = Vec::new();
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        let (a, b) = aig.fanins(m);
        for f in [a, b] {
            let fm = f.node();
            if !aig.is_and(fm) || leaves.contains(&fm) {
                continue;
            }
            refs[fm as usize] -= 1;
            touched.push(fm);
            if refs[fm as usize] == 0 {
                count += 1;
                stack.push(fm);
            }
        }
    }
    for &t in &touched {
        refs[t as usize] += 1;
    }
    count
}

/// A literal during dry-run construction: either a node that already exists
/// in the target graph, or a virtual (would-be-new) node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum VLit {
    Real(AigLit),
    Virt(u32, bool),
}

impl VLit {
    const FALSE: VLit = VLit::Real(AigLit::FALSE);
    const TRUE: VLit = VLit::Real(AigLit::TRUE);

    fn not(self) -> Self {
        match self {
            VLit::Real(l) => VLit::Real(l.not()),
            VLit::Virt(id, c) => VLit::Virt(id, !c),
        }
    }
}

/// Counts how many *new* AND nodes would be created by building `tree`
/// over `leaf_lits` in `out`, honoring `out`'s structural hashing and the
/// usual trivial-AND simplifications.
fn dry_run_cost(out: &Aig, tree: &FactorTree, leaf_lits: &[AigLit]) -> usize {
    let mut dry = DryRun {
        out,
        table: HashMap::new(),
        created: 0,
    };
    let leaves: Vec<VLit> = leaf_lits.iter().map(|&l| VLit::Real(l)).collect();
    let _ = synth_tree(&mut dry, tree, &leaves);
    dry.created
}

struct DryRun<'a> {
    out: &'a Aig,
    table: HashMap<(VLit, VLit), u32>,
    created: usize,
}

impl DryRun<'_> {
    fn and(&mut self, a: VLit, b: VLit) -> VLit {
        // Trivial cases mirror Aig::and.
        if a == VLit::FALSE || b == VLit::FALSE {
            return VLit::FALSE;
        }
        if a == VLit::TRUE {
            return b;
        }
        if b == VLit::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.not() {
            return VLit::FALSE;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if let (VLit::Real(ra), VLit::Real(rb)) = (x, y) {
            if let Some(hit) = self.out.lookup_and(ra, rb) {
                return VLit::Real(hit);
            }
        }
        if let Some(&id) = self.table.get(&(x, y)) {
            return VLit::Virt(id, false);
        }
        let id = self.created as u32;
        self.created += 1;
        self.table.insert((x, y), id);
        VLit::Virt(id, false)
    }
}

/// Generic AND-graph construction over the factor tree (OR via De Morgan).
trait AndBuilder {
    type L: Copy;
    fn and(&mut self, a: Self::L, b: Self::L) -> Self::L;
    fn not(l: Self::L) -> Self::L;
    fn constant(v: bool) -> Self::L;
}

impl AndBuilder for DryRun<'_> {
    type L = VLit;

    fn and(&mut self, a: VLit, b: VLit) -> VLit {
        DryRun::and(self, a, b)
    }

    fn not(l: VLit) -> VLit {
        l.not()
    }

    fn constant(v: bool) -> VLit {
        if v {
            VLit::TRUE
        } else {
            VLit::FALSE
        }
    }
}

struct RealBuild<'a>(&'a mut Aig);

impl AndBuilder for RealBuild<'_> {
    type L = AigLit;

    fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.0.and(a, b)
    }

    fn not(l: AigLit) -> AigLit {
        l.not()
    }

    fn constant(v: bool) -> AigLit {
        if v {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }
}

fn synth_tree<B: AndBuilder>(b: &mut B, tree: &FactorTree, leaves: &[B::L]) -> B::L {
    match tree {
        FactorTree::Const(v) => B::constant(*v),
        FactorTree::Lit { var, negated } => {
            let l = leaves[*var];
            if *negated {
                B::not(l)
            } else {
                l
            }
        }
        FactorTree::And(x, y) => {
            let lx = synth_tree(b, x, leaves);
            let ly = synth_tree(b, y, leaves);
            b.and(lx, ly)
        }
        FactorTree::Or(x, y) => {
            let lx = synth_tree(b, x, leaves);
            let ly = synth_tree(b, y, leaves);
            B::not(b.and(B::not(lx), B::not(ly)))
        }
    }
}

fn build_tree_real(out: &mut Aig, tree: &FactorTree, leaf_lits: &[AigLit]) -> AigLit {
    let mut rb = RealBuild(out);
    synth_tree(&mut rb, tree, leaf_lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    /// Checks functional equivalence of two AIGs over the same PIs by
    /// exhaustive simulation (inputs <= 16).
    fn assert_equiv(a: &Aig, b: &Aig) {
        assert_eq!(a.num_pis(), b.num_pis());
        assert_eq!(a.num_pos(), b.num_pos());
        let n = a.num_pis();
        assert!(n <= 16);
        let total = 1usize << n;
        let mut idx = 0usize;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let ra = a.simulate(&words);
            let rb = b.simulate(&words);
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1u64 << chunk) - 1
            };
            for (o, (x, y)) in ra.iter().zip(&rb).enumerate() {
                assert_eq!(x & mask, y & mask, "output {o} differs at base {idx}");
            }
            idx += chunk;
        }
    }

    #[test]
    fn rewrite_removes_redundant_logic() {
        // f = (a*b) + ((a*b)*c) == a*b : rewriting must shrink this.
        let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + ((a*b)*c);\n").unwrap();
        let aig = Aig::from_network(&net);
        let rewritten = aig.rewrite(false);
        assert!(rewritten.num_ands() < aig.num_ands());
        assert_equiv(&aig, &rewritten);
        assert_eq!(rewritten.num_ands(), 1);
    }

    #[test]
    fn rewrite_preserves_function_on_adder() {
        let mut net = esyn_eqn::Network::new();
        let mut carry = net.constant(false);
        let mut sums = Vec::new();
        for i in 0..4 {
            let a = net.input(format!("a{i}"));
            let b = net.input(format!("b{i}"));
            let axb = net.xor(a, b);
            let s = net.xor(axb, carry);
            let g = net.and(a, b);
            let p = net.and(axb, carry);
            carry = net.or(g, p);
            sums.push(s);
        }
        for (i, s) in sums.into_iter().enumerate() {
            net.output(format!("s{i}"), s);
        }
        net.output("cout", carry);
        let aig = Aig::from_network(&net);
        let rw = aig.rewrite(false);
        assert!(rw.num_ands() <= aig.num_ands());
        assert_equiv(&aig, &rw);
    }

    #[test]
    fn zero_cost_rewrite_is_equivalent() {
        let net = parse_eqn(
            "INORDER = a b c d;\nOUTORDER = f g;\nf = (a + b) * (a + c);\ng = (a*d) + (b*!c*d);\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let rwz = aig.rewrite(true);
        assert_equiv(&aig, &rwz);
    }

    #[test]
    fn refactor_preserves_function() {
        let net =
            parse_eqn("INORDER = a b c d e;\nOUTORDER = f;\nf = (a*b) + (a*c) + (a*d) + (a*e);\n")
                .unwrap();
        let aig = Aig::from_network(&net);
        let rf = aig.refactor(false, 8);
        assert_equiv(&aig, &rf);
        // a*(b+c+d+e) needs 4 ANDs; the SOP form needs 7.
        assert!(rf.num_ands() <= aig.num_ands());
    }

    #[test]
    fn mffc_counts_exclusive_cone() {
        // f = (a&b)&(c&d), g = a&b : the cone of f above {a,b,c,d} shares
        // a&b with g, so MFFC(f) = 2 (f and c&d), not 3.
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let c = g.add_pi("c");
        let d = g.add_pi("d");
        let ab = g.and(a, b);
        let cd = g.and(c, d);
        let f = g.and(ab, cd);
        g.add_po("f", f);
        g.add_po("g", ab);
        let mut refs = g.fanout_counts();
        let leaves = [a.node(), b.node(), c.node(), d.node()];
        let size = mffc_size(&g, f.node(), &leaves, &mut refs);
        assert_eq!(size, 2);
        // refs restored
        assert_eq!(refs, g.fanout_counts());
    }

    #[test]
    fn dry_run_counts_only_new_nodes() {
        let mut out = Aig::new();
        let a = out.add_pi("a");
        let b = out.add_pi("b");
        let c = out.add_pi("c");
        let _existing = out.and(a, b);
        // candidate: (a & b) & c — a&b exists, the top AND does not.
        let tree = FactorTree::And(
            Box::new(FactorTree::And(
                Box::new(FactorTree::Lit {
                    var: 0,
                    negated: false,
                }),
                Box::new(FactorTree::Lit {
                    var: 1,
                    negated: false,
                }),
            )),
            Box::new(FactorTree::Lit {
                var: 2,
                negated: false,
            }),
        );
        let cost = dry_run_cost(&out, &tree, &[a, b, c]);
        assert_eq!(cost, 1, "a&b is reused; only the top AND is new");
    }

    #[test]
    fn rewrite_idempotent_after_convergence() {
        let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + ((a*b)*c);\n").unwrap();
        let one = Aig::from_network(&net).rewrite(false);
        let two = one.rewrite(false);
        assert_eq!(one.num_ands(), two.num_ands());
        assert_equiv(&one, &two);
    }
}
