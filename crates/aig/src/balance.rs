//! AND-tree balancing (ABC `balance`).
//!
//! Collects maximal single-fanout AND trees ("super-gates") and rebuilds
//! them with a Huffman-style pairing that combines the two shallowest
//! operands first, minimising the resulting tree depth.

use crate::aig::{Aig, AigLit, NodeKind};

impl Aig {
    /// Depth-minimising AND-tree balancing; function-preserving.
    pub fn balance(&self) -> Aig {
        let refs = self.fanout_counts();
        let live = self.live_mask();

        let mut out = Aig::new();
        for name in self.pi_names() {
            out.add_pi(name.clone());
        }
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; self.len()];
        // Incrementally maintained level array for `out` (index = node id).
        let mut olevels: Vec<u32> = vec![0; out.len()];

        for n in 0..self.len() as u32 {
            match self.nodes[n as usize] {
                NodeKind::Const => map[n as usize] = AigLit::FALSE,
                NodeKind::Pi(idx) => map[n as usize] = out.pi_lit(idx as usize),
                NodeKind::And(..) => {
                    if !live[n as usize] {
                        continue;
                    }
                    // Collect the super-gate rooted here: descend through
                    // non-complemented AND fanins that have fanout 1 (their
                    // only parent is inside this tree).
                    let mut leaves: Vec<AigLit> = Vec::new();
                    collect_supergate(self, AigLit::new(n, false), true, &refs, &mut leaves);
                    // Map leaves into the new graph and pair shallowest
                    // first.
                    let mut items: Vec<(u32, AigLit)> = leaves
                        .iter()
                        .map(|l| {
                            let ml = map[l.node() as usize].xor_compl(l.is_compl());
                            (olevels[ml.node() as usize], ml)
                        })
                        .collect();
                    // Sort descending so the two smallest are at the end.
                    items.sort_by(|a, b| b.0.cmp(&a.0));
                    while items.len() > 1 {
                        let (la, a) = items.pop().expect("len > 1");
                        let (lb, b) = items.pop().expect("len > 1");
                        let combined = out.and(a, b);
                        if combined.node() as usize >= olevels.len() {
                            // a genuinely new node: its level is known
                            olevels.resize(out.len(), 0);
                            olevels[combined.node() as usize] = la.max(lb) + 1;
                        }
                        let lvl = olevels[combined.node() as usize];
                        // insert keeping descending order
                        let pos = items
                            .binary_search_by(|&(l, _)| lvl.cmp(&l))
                            .unwrap_or_else(|p| p);
                        items.insert(pos, (lvl, combined));
                    }
                    map[n as usize] = items.pop().map(|(_, l)| l).unwrap_or(AigLit::TRUE);
                    // empty product = true
                }
            }
        }
        for (name, l) in self.outputs() {
            let lit = map[l.node() as usize].xor_compl(l.is_compl());
            out.add_po(name.clone(), lit);
        }
        out.cleanup()
    }
}

/// Gathers the leaves of the maximal AND tree rooted at `lit`.
fn collect_supergate(
    aig: &Aig,
    lit: AigLit,
    is_root: bool,
    refs: &[u32],
    leaves: &mut Vec<AigLit>,
) {
    let n = lit.node();
    let expandable = aig.is_and(n) && !lit.is_compl() && (is_root || refs[n as usize] <= 1);
    if expandable {
        let (a, b) = aig.fanins(n);
        collect_supergate(aig, a, false, refs, leaves);
        collect_supergate(aig, b, false, refs, leaves);
    } else {
        leaves.push(lit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    fn assert_equiv(a: &Aig, b: &Aig) {
        assert_eq!(a.num_pis(), b.num_pis());
        let n = a.num_pis();
        assert!(n <= 10);
        let total = 1usize << n;
        let mut idx = 0;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1u64 << chunk) - 1
            };
            for (x, y) in a.simulate(&words).iter().zip(b.simulate(&words)) {
                assert_eq!(x & mask, y & mask);
            }
            idx += chunk;
        }
    }

    #[test]
    fn balances_linear_and_chain() {
        // ((((a*b)*c)*d)*e)*f — depth 5 chain balances to depth 3.
        let net =
            parse_eqn("INORDER = a b c d e f;\nOUTORDER = o;\no = ((((a*b)*c)*d)*e)*f;\n").unwrap();
        let aig = Aig::from_network(&net);
        assert_eq!(aig.num_levels(), 5);
        let bal = aig.balance();
        assert_eq!(bal.num_levels(), 3);
        assert_equiv(&aig, &bal);
        assert_eq!(bal.num_ands(), 5);
    }

    #[test]
    fn balances_or_chains_via_demorgan() {
        // a + b + c + d parsed left-assoc: depth 3 → balanced depth 2.
        let net = parse_eqn("INORDER = a b c d;\nOUTORDER = o;\no = a + b + c + d;\n").unwrap();
        let aig = Aig::from_network(&net);
        let bal = aig.balance();
        assert!(bal.num_levels() <= aig.num_levels());
        assert_equiv(&aig, &bal);
    }

    #[test]
    fn preserves_shared_nodes() {
        // shared = a*b feeds two outputs; balancing must not duplicate it
        // blindly (it stays a super-gate boundary because fanout > 1).
        let net =
            parse_eqn("INORDER = a b c d;\nOUTORDER = f g;\nf = ((a*b)*c)*d;\ng = (a*b)*!c;\n")
                .unwrap();
        let aig = Aig::from_network(&net);
        let bal = aig.balance();
        assert_equiv(&aig, &bal);
        assert!(bal.num_ands() <= aig.num_ands() + 1);
    }

    #[test]
    fn balance_is_idempotent() {
        let net = parse_eqn(
            "INORDER = a b c d e f g h;\nOUTORDER = o;\no = (((((((a*b)*c)*d)*e)*f)*g)*h);\n",
        )
        .unwrap();
        let one = Aig::from_network(&net).balance();
        let two = one.balance();
        assert_eq!(one.num_levels(), two.num_levels());
        assert_eq!(one.num_ands(), two.num_ands());
    }
}
