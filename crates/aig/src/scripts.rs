//! Composite optimisation scripts mirroring ABC's standard recipes.
//!
//! The paper's baseline flow (§4.3) is
//! `strash; ifraig; scorr; dc2; dretime; retime; strash; &dch -f; &nf; ...`.
//! The sequential steps (`dretime`/`retime`) are identities on the purely
//! combinational benchmarks used throughout, and `&dch/&nf` correspond to
//! the mapping stage implemented in `esyn-techmap`. The
//! technology-independent portion is reproduced here.

use crate::aig::Aig;

/// ABC's `compress2` recipe:
/// `b; rw; rf; b; rw; rwz; b; rfz; rwz; b`.
pub fn compress2(aig: &Aig) -> Aig {
    let mut g = aig.balance();
    g = g.rewrite(false);
    g = g.refactor(false, 8);
    g = g.balance();
    g = g.rewrite(false);
    g = g.rewrite(true);
    g = g.balance();
    g = g.refactor(true, 8);
    g = g.rewrite(true);
    g.balance()
}

/// ABC's `dc2` recipe (approximation):
/// `b; rw; rf; b; rw; rwz; b`.
pub fn dc2(aig: &Aig) -> Aig {
    let mut g = aig.balance();
    g = g.rewrite(false);
    g = g.refactor(false, 8);
    g = g.balance();
    g = g.rewrite(false);
    g = g.rewrite(true);
    g.balance()
}

/// The technology-independent portion of the paper's baseline ABC flow:
/// `ifraig; scorr; dc2` — here fraiging (which subsumes both `ifraig` and
/// combinational `scorr`) followed by `dc2`.
pub fn baseline_tech_indep(aig: &Aig, seed: u64) -> Aig {
    let g = aig.fraig(seed);
    dc2(&g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    fn assert_equiv(a: &Aig, b: &Aig) {
        assert_eq!(a.num_pis(), b.num_pis());
        let n = a.num_pis();
        assert!(n <= 12);
        let total = 1usize << n;
        let mut idx = 0;
        while idx < total {
            let chunk = (total - idx).min(64);
            let words: Vec<u64> = (0..n)
                .map(|v| {
                    let mut w = 0u64;
                    for bit in 0..chunk {
                        if ((idx + bit) >> v) & 1 == 1 {
                            w |= 1 << bit;
                        }
                    }
                    w
                })
                .collect();
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1u64 << chunk) - 1
            };
            for (x, y) in a.simulate(&words).iter().zip(b.simulate(&words)) {
                assert_eq!(x & mask, y & mask);
            }
            idx += chunk;
        }
    }

    fn sample() -> Aig {
        let net = parse_eqn(
            "INORDER = a b c d e;\nOUTORDER = f g;\n\
             f = (a*b) + (a*c) + ((a*b)*(d + e));\n\
             g = ((a + b) * (a + c)) + (d * e * a) + (d * e * !a);\n",
        )
        .unwrap();
        Aig::from_network(&net)
    }

    #[test]
    fn compress2_shrinks_and_preserves() {
        let aig = sample();
        let opt = compress2(&aig);
        assert!(opt.num_ands() <= aig.num_ands());
        assert_equiv(&aig, &opt);
    }

    #[test]
    fn dc2_shrinks_and_preserves() {
        let aig = sample();
        let opt = dc2(&aig);
        assert!(opt.num_ands() <= aig.num_ands());
        assert_equiv(&aig, &opt);
    }

    #[test]
    fn baseline_flow_preserves_function() {
        let aig = sample();
        let opt = baseline_tech_indep(&aig, 17);
        assert!(opt.num_ands() <= aig.num_ands());
        assert_equiv(&aig, &opt);
    }

    #[test]
    fn scripts_reach_fixpoint() {
        let aig = sample();
        let once = compress2(&aig);
        let twice = compress2(&once);
        assert!(twice.num_ands() <= once.num_ands());
        assert_equiv(&once, &twice);
    }
}
