//! AIGER format I/O (combinational subset).
//!
//! The paper's training pipeline generates circuits with `aigfuzz` from
//! the AIGER toolkit; this module reads and writes both the ASCII (`aag`)
//! and binary (`aig`) formats for combinational circuits (no latches),
//! including the symbol table. Literal encoding matches AIGER exactly
//! (`var << 1 | complement`, constant false = 0), which is also the
//! in-memory encoding of [`AigLit`].

use crate::aig::{Aig, AigLit, NodeKind};
use std::fmt;

/// Error reading an AIGER file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AigerError(pub String);

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aiger error: {}", self.0)
    }
}

impl std::error::Error for AigerError {}

fn err(msg: impl Into<String>) -> AigerError {
    AigerError(msg.into())
}

impl Aig {
    /// Writes the ASCII AIGER (`aag`) representation, including a symbol
    /// table with PI/PO names.
    ///
    /// # Panics
    ///
    /// Panics if the AIG contains unreachable AND nodes interleaved in a
    /// way that breaks AIGER's contiguous ordering — never the case for
    /// graphs built through this crate's API ([`Aig::cleanup`] first if
    /// unsure).
    pub fn to_aiger_ascii(&self) -> String {
        use std::fmt::Write as _;
        let num_ands = self.len() - 1 - self.num_pis();
        let max_var = self.len() - 1;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "aag {} {} 0 {} {}",
            max_var,
            self.num_pis(),
            self.num_pos(),
            num_ands
        );
        for i in 0..self.num_pis() {
            let _ = writeln!(s, "{}", self.pi_lit(i).to_aiger());
        }
        for (_, l) in self.outputs() {
            let _ = writeln!(s, "{}", l.to_aiger());
        }
        for n in 0..self.len() as u32 {
            if let NodeKind::And(a, b) = self.nodes[n as usize] {
                let lhs = AigLit::new(n, false).to_aiger();
                // AIGER requires rhs0 >= rhs1
                let (x, y) = if a.to_aiger() >= b.to_aiger() {
                    (a, b)
                } else {
                    (b, a)
                };
                let _ = writeln!(s, "{lhs} {} {}", x.to_aiger(), y.to_aiger());
            }
        }
        for (i, name) in self.pi_names().iter().enumerate() {
            let _ = writeln!(s, "i{i} {name}");
        }
        for (i, (name, _)) in self.outputs().iter().enumerate() {
            let _ = writeln!(s, "o{i} {name}");
        }
        s
    }

    /// Writes the binary AIGER (`aig`) representation.
    pub fn to_aiger_binary(&self) -> Vec<u8> {
        let num_ands = self.len() - 1 - self.num_pis();
        let max_var = self.len() - 1;
        let mut out = Vec::new();
        out.extend_from_slice(
            format!(
                "aig {} {} 0 {} {}\n",
                max_var,
                self.num_pis(),
                self.num_pos(),
                num_ands
            )
            .as_bytes(),
        );
        for (_, l) in self.outputs() {
            out.extend_from_slice(format!("{}\n", l.to_aiger()).as_bytes());
        }
        // Binary AND section: per gate, the two deltas lhs-rhs0 and
        // rhs0-rhs1 in LEB128-style 7-bit groups.
        for n in 0..self.len() as u32 {
            if let NodeKind::And(a, b) = self.nodes[n as usize] {
                let lhs = AigLit::new(n, false).to_aiger();
                let (r0, r1) = {
                    let (x, y) = (a.to_aiger(), b.to_aiger());
                    if x >= y {
                        (x, y)
                    } else {
                        (y, x)
                    }
                };
                push_delta(&mut out, lhs - r0);
                push_delta(&mut out, r0 - r1);
            }
        }
        // symbol table
        for (i, name) in self.pi_names().iter().enumerate() {
            out.extend_from_slice(format!("i{i} {name}\n").as_bytes());
        }
        for (i, (name, _)) in self.outputs().iter().enumerate() {
            out.extend_from_slice(format!("o{i} {name}\n").as_bytes());
        }
        out
    }

    /// Parses an ASCII AIGER (`aag`) file (combinational: zero latches).
    ///
    /// # Errors
    ///
    /// Returns [`AigerError`] on malformed headers, out-of-order AND
    /// definitions, or latch sections.
    pub fn from_aiger_ascii(text: &str) -> Result<Aig, AigerError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| err("empty input"))?;
        let (m, i, l, o, a) = parse_header(header, "aag")?;
        if l != 0 {
            return Err(err("latches are not supported (combinational only)"));
        }
        let mut aig = Aig::new();
        let mut pi_lits = Vec::with_capacity(i);
        for k in 0..i {
            let line = lines.next().ok_or_else(|| err("missing input line"))?;
            let lit: u64 = line
                .trim()
                .parse()
                .map_err(|_| err(format!("bad input literal `{line}`")))?;
            if lit != (2 * (k as u64 + 1)) {
                return Err(err(format!(
                    "inputs must be consecutive even literals; got {lit}"
                )));
            }
            pi_lits.push(aig.add_pi(format!("i{k}")));
        }
        let mut out_lits = Vec::with_capacity(o);
        for _ in 0..o {
            let line = lines.next().ok_or_else(|| err("missing output line"))?;
            let lit: u64 = line
                .trim()
                .parse()
                .map_err(|_| err(format!("bad output literal `{line}`")))?;
            out_lits.push(lit);
        }
        // AND gates: defined in order; node index = i + 1 + gate#.
        let lit_of = |raw: u64, defined: u32| -> Result<AigLit, AigerError> {
            let var = (raw / 2) as u32;
            if var > defined {
                return Err(err(format!("literal {raw} references undefined var")));
            }
            Ok(AigLit::new(var, raw & 1 == 1))
        };
        for k in 0..a {
            let line = lines.next().ok_or_else(|| err("missing and line"))?;
            let mut parts = line.split_whitespace();
            let lhs: u64 = parts
                .next()
                .ok_or_else(|| err("missing lhs"))?
                .parse()
                .map_err(|_| err("bad lhs"))?;
            let rhs0: u64 = parts
                .next()
                .ok_or_else(|| err("missing rhs0"))?
                .parse()
                .map_err(|_| err("bad rhs0"))?;
            let rhs1: u64 = parts
                .next()
                .ok_or_else(|| err("missing rhs1"))?
                .parse()
                .map_err(|_| err("bad rhs1"))?;
            let expected = 2 * (i as u64 + 1 + k as u64);
            if lhs != expected {
                return Err(err(format!("and lhs {lhs}, expected {expected}")));
            }
            let defined = (i + k) as u32;
            let fa = lit_of(rhs0, defined)?;
            let fb = lit_of(rhs1, defined)?;
            aig.push_raw_and(fa, fb);
        }
        let _ = m;
        let _ = pi_lits;
        // symbol table (optional)
        let mut pi_names: Vec<Option<String>> = vec![None; i];
        let mut po_names: Vec<Option<String>> = vec![None; o];
        for line in lines {
            let line = line.trim();
            if line == "c" {
                break; // comment section
            }
            if let Some(rest) = line.strip_prefix('i') {
                if let Some((idx, name)) = rest.split_once(' ') {
                    if let Ok(idx) = idx.parse::<usize>() {
                        if idx < i {
                            pi_names[idx] = Some(name.to_owned());
                        }
                    }
                }
            } else if let Some(rest) = line.strip_prefix('o') {
                if let Some((idx, name)) = rest.split_once(' ') {
                    if let Ok(idx) = idx.parse::<usize>() {
                        if idx < o {
                            po_names[idx] = Some(name.to_owned());
                        }
                    }
                }
            }
        }
        aig.rename_pis(&pi_names);
        for (k, lit) in out_lits.iter().enumerate() {
            let name = po_names[k].clone().unwrap_or_else(|| format!("o{k}"));
            let var = (lit / 2) as u32;
            if var as usize >= aig.len() {
                return Err(err(format!("output literal {lit} out of range")));
            }
            aig.add_po(name, AigLit::new(var, lit & 1 == 1));
        }
        Ok(aig)
    }

    /// Parses a binary AIGER (`aig`) file (combinational subset).
    ///
    /// # Errors
    ///
    /// Returns [`AigerError`] on malformed input.
    pub fn from_aiger_binary(bytes: &[u8]) -> Result<Aig, AigerError> {
        let mut pos = 0usize;
        let header = read_line(bytes, &mut pos).ok_or_else(|| err("empty input"))?;
        let (_, i, l, o, a) = parse_header(&header, "aig")?;
        if l != 0 {
            return Err(err("latches are not supported (combinational only)"));
        }
        let mut aig = Aig::new();
        for k in 0..i {
            aig.add_pi(format!("i{k}"));
        }
        let mut out_lits = Vec::with_capacity(o);
        for _ in 0..o {
            let line = read_line(bytes, &mut pos).ok_or_else(|| err("missing output"))?;
            let lit: u64 = line
                .trim()
                .parse()
                .map_err(|_| err(format!("bad output literal `{line}`")))?;
            out_lits.push(lit);
        }
        for k in 0..a {
            let lhs = 2 * (i as u64 + 1 + k as u64);
            let d0 = read_delta(bytes, &mut pos).ok_or_else(|| err("truncated and"))?;
            let d1 = read_delta(bytes, &mut pos).ok_or_else(|| err("truncated and"))?;
            let rhs0 = lhs.checked_sub(d0).ok_or_else(|| err("delta underflow"))?;
            let rhs1 = rhs0.checked_sub(d1).ok_or_else(|| err("delta underflow"))?;
            let fa = AigLit::new((rhs0 / 2) as u32, rhs0 & 1 == 1);
            let fb = AigLit::new((rhs1 / 2) as u32, rhs1 & 1 == 1);
            aig.push_raw_and(fa, fb);
        }
        // symbol table (optional)
        let rest = String::from_utf8_lossy(&bytes[pos..]).to_string();
        let mut pi_names: Vec<Option<String>> = vec![None; i];
        let mut po_names: Vec<Option<String>> = vec![None; o];
        for line in rest.lines() {
            let line = line.trim();
            if line == "c" {
                break;
            }
            if let Some(r) = line.strip_prefix('i') {
                if let Some((idx, name)) = r.split_once(' ') {
                    if let Ok(idx) = idx.parse::<usize>() {
                        if idx < i {
                            pi_names[idx] = Some(name.to_owned());
                        }
                    }
                }
            } else if let Some(r) = line.strip_prefix('o') {
                if let Some((idx, name)) = r.split_once(' ') {
                    if let Ok(idx) = idx.parse::<usize>() {
                        if idx < o {
                            po_names[idx] = Some(name.to_owned());
                        }
                    }
                }
            }
        }
        aig.rename_pis(&pi_names);
        for (k, lit) in out_lits.iter().enumerate() {
            let name = po_names[k].clone().unwrap_or_else(|| format!("o{k}"));
            aig.add_po(name, AigLit::new((lit / 2) as u32, lit & 1 == 1));
        }
        Ok(aig)
    }
}

impl AigLit {
    /// The AIGER integer encoding of this literal (identical to the
    /// in-memory representation).
    pub fn to_aiger(self) -> u64 {
        (self.node() as u64) << 1 | self.is_compl() as u64
    }
}

fn parse_header(
    line: &str,
    magic: &str,
) -> Result<(usize, usize, usize, usize, usize), AigerError> {
    let mut parts = line.split_whitespace();
    let tag = parts.next().ok_or_else(|| err("missing magic"))?;
    if tag != magic {
        return Err(err(format!("expected `{magic}` header, got `{tag}`")));
    }
    let mut next = || -> Result<usize, AigerError> {
        parts
            .next()
            .ok_or_else(|| err("truncated header"))?
            .parse()
            .map_err(|_| err("bad header field"))
    };
    let m = next()?;
    let i = next()?;
    let l = next()?;
    let o = next()?;
    let a = next()?;
    if m != i + l + a {
        return Err(err(format!("header M={m} != I+L+A={}", i + l + a)));
    }
    Ok((m, i, l, o, a))
}

fn push_delta(out: &mut Vec<u8>, mut delta: u64) {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_delta(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn read_line(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos] != b'\n' {
        *pos += 1;
    }
    if *pos >= bytes.len() {
        return None;
    }
    let line = String::from_utf8_lossy(&bytes[start..*pos]).to_string();
    *pos += 1; // skip newline
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{random_aig, FuzzConfig};

    fn sample() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let c = g.add_pi("c");
        let ab = g.and(a, b);
        let f = g.or(ab, c.not());
        g.add_po("f", f);
        g.add_po("nab", ab.not());
        g
    }

    #[test]
    fn ascii_roundtrip() {
        let g = sample();
        let text = g.to_aiger_ascii();
        assert!(text.starts_with("aag 5 3 0 2 2\n"), "{text}");
        let back = Aig::from_aiger_ascii(&text).unwrap();
        assert_eq!(back.num_pis(), 3);
        assert_eq!(back.num_pos(), 2);
        assert_eq!(back.pi_names(), g.pi_names());
        assert_eq!(back.outputs()[0].0, "f");
        let words = [0xF0F0u64, 0xCCCC, 0xAAAA];
        assert_eq!(g.simulate(&words), back.simulate(&words));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let bytes = g.to_aiger_binary();
        let back = Aig::from_aiger_binary(&bytes).unwrap();
        let words = [0x1234u64, 0x5678, 0x9ABC];
        assert_eq!(g.simulate(&words), back.simulate(&words));
        assert_eq!(back.pi_names(), g.pi_names());
    }

    #[test]
    fn fuzz_roundtrips_both_formats() {
        for seed in 0..5u64 {
            let cfg = FuzzConfig {
                num_pis: 6,
                num_ands: 80,
                num_pos: 3,
                locality: 0.6,
            };
            let g = random_aig(&cfg, seed);
            let words: Vec<u64> = (0..6u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let a = Aig::from_aiger_ascii(&g.to_aiger_ascii()).unwrap();
            assert_eq!(g.simulate(&words), a.simulate(&words), "ascii seed {seed}");
            let b = Aig::from_aiger_binary(&g.to_aiger_binary()).unwrap();
            assert_eq!(g.simulate(&words), b.simulate(&words), "binary seed {seed}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Aig::from_aiger_ascii("").is_err());
        assert!(
            Aig::from_aiger_ascii("aig 1 1 0 0 0\n2\n").is_err(),
            "wrong magic"
        );
        assert!(
            Aig::from_aiger_ascii("aag 2 1 1 0 0\n2\n").is_err(),
            "latches"
        );
        assert!(
            Aig::from_aiger_ascii("aag 9 1 0 0 1\n2\n").is_err(),
            "bad M"
        );
        // and gate referencing undefined variable
        assert!(
            Aig::from_aiger_ascii("aag 2 1 0 1 1\n2\n4\n4 6 2\n").is_err(),
            "undefined rhs"
        );
    }

    #[test]
    fn constant_outputs() {
        let mut g = Aig::new();
        let _a = g.add_pi("a");
        g.add_po("zero", AigLit::FALSE);
        g.add_po("one", AigLit::TRUE);
        let text = g.to_aiger_ascii();
        let back = Aig::from_aiger_ascii(&text).unwrap();
        assert_eq!(back.simulate(&[0xFF]), vec![0, u64::MAX]);
    }
}
