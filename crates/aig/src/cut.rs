//! K-feasible cut enumeration and reconvergence-driven cuts.

use crate::aig::{Aig, NodeKind};
use esyn_eqn::TruthTable;
use std::collections::{HashMap, HashSet};

/// A cut of a node: sorted leaf node ids plus the node's function over the
/// leaves (variable `i` of the table is `leaves[i]`).
#[derive(Clone, Debug)]
pub struct Cut {
    /// Sorted leaf node ids.
    pub leaves: Vec<u32>,
    /// Node function over the leaves.
    pub tt: TruthTable,
}

impl Cut {
    /// True when this is a trivial (unit) cut `{node}`.
    pub fn is_unit(&self, node: u32) -> bool {
        self.leaves.len() == 1 && self.leaves[0] == node
    }
}

/// Parameters for cut enumeration.
#[derive(Clone, Copy, Debug)]
pub struct CutConfig {
    /// Maximum leaves per cut (`k`-feasible cuts).
    pub k: usize,
    /// Maximum non-trivial cuts kept per node (priority-pruned by size).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig { k: 4, max_cuts: 8 }
    }
}

/// Remaps `tt` (over `old` leaves) onto the superset `new` of leaves.
pub(crate) fn expand_tt(tt: &TruthTable, old: &[u32], new: &[u32]) -> TruthTable {
    let positions: Vec<usize> = old
        .iter()
        .map(|l| new.binary_search(l).expect("old leaves must be subset"))
        .collect();
    let n = new.len();
    let nwords = if n <= 6 { 1 } else { 1usize << (n - 6) };
    let mut words = vec![0u64; nwords];
    for idx in 0..(1usize << n) {
        let mut old_idx = 0usize;
        for (i, &p) in positions.iter().enumerate() {
            if (idx >> p) & 1 == 1 {
                old_idx |= 1 << i;
            }
        }
        if tt.bit(old_idx) {
            words[idx / 64] |= 1u64 << (idx % 64);
        }
    }
    TruthTable::from_words(n, words)
}

/// Enumerates k-feasible cuts for every node; index = node id. The trivial
/// cut is always the last entry of each AND node's list.
pub(crate) fn enumerate_cuts(aig: &Aig, cfg: &CutConfig) -> Vec<Vec<Cut>> {
    enumerate_cuts_impl(aig, cfg)
}

impl Aig {
    /// Enumerates k-feasible cuts with truth tables for every node
    /// (index = node id); each AND node's list ends with its trivial cut.
    /// This is the entry point used by the technology mapper.
    pub fn k_cuts(&self, cfg: &CutConfig) -> Vec<Vec<Cut>> {
        enumerate_cuts_impl(self, cfg)
    }
}

fn enumerate_cuts_impl(aig: &Aig, cfg: &CutConfig) -> Vec<Vec<Cut>> {
    assert!(cfg.k >= 2 && cfg.k <= 8, "cut size must be in 2..=8");
    let live = aig.live_mask();
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(aig.len());
    for n in 0..aig.len() as u32 {
        let node_cuts = match aig.nodes[n as usize] {
            NodeKind::Const => Vec::new(),
            NodeKind::Pi(_) => vec![unit_cut(n)],
            NodeKind::And(a, b) => {
                if !live[n as usize] {
                    // Dead nodes still get a trivial cut so indices line up.
                    vec![unit_cut(n)]
                } else {
                    let mut merged: Vec<Cut> = Vec::new();
                    let mut seen: HashSet<Vec<u32>> = HashSet::new();
                    for ca in &cuts[a.node() as usize] {
                        for cb in &cuts[b.node() as usize] {
                            let mut leaves: Vec<u32> =
                                ca.leaves.iter().chain(cb.leaves.iter()).copied().collect();
                            leaves.sort_unstable();
                            leaves.dedup();
                            if leaves.len() > cfg.k {
                                continue;
                            }
                            if !seen.insert(leaves.clone()) {
                                continue;
                            }
                            let ta = {
                                let t = expand_tt(&ca.tt, &ca.leaves, &leaves);
                                if a.is_compl() {
                                    t.not()
                                } else {
                                    t
                                }
                            };
                            let tb = {
                                let t = expand_tt(&cb.tt, &cb.leaves, &leaves);
                                if b.is_compl() {
                                    t.not()
                                } else {
                                    t
                                }
                            };
                            merged.push(Cut {
                                leaves,
                                tt: ta.and(&tb),
                            });
                        }
                    }
                    merged.sort_by_key(|c| c.leaves.len());
                    merged.truncate(cfg.max_cuts);
                    merged.push(unit_cut(n));
                    merged
                }
            }
        };
        cuts.push(node_cuts);
    }
    cuts
}

pub(crate) fn unit_cut(node: u32) -> Cut {
    Cut {
        leaves: vec![node],
        tt: TruthTable::var(1, 0),
    }
}

/// Computes a single reconvergence-driven cut of `root` with at most `k`
/// leaves, by greedily expanding the leaf whose replacement by its fanins
/// grows the leaf set least (ABC's `Abc_NodeFindCut` strategy).
pub(crate) fn reconv_cut(aig: &Aig, root: u32, k: usize) -> Vec<u32> {
    let (a, b) = aig.fanins(root);
    let mut leaves: Vec<u32> = vec![a.node(), b.node()];
    leaves.sort_unstable();
    leaves.dedup();
    loop {
        let mut best: Option<(usize, u32)> = None; // (resulting size, leaf)
        for &l in &leaves {
            if !aig.is_and(l) {
                continue;
            }
            let (fa, fb) = aig.fanins(l);
            let mut trial: Vec<u32> = leaves
                .iter()
                .copied()
                .filter(|&x| x != l)
                .chain([fa.node(), fb.node()])
                .collect();
            trial.sort_unstable();
            trial.dedup();
            if trial.len() > k {
                continue;
            }
            match best {
                Some((size, leaf)) if (size, leaf) <= (trial.len(), l) => {}
                _ => best = Some((trial.len(), l)),
            }
        }
        let Some((_, expand)) = best else { break };
        let (fa, fb) = aig.fanins(expand);
        leaves.retain(|&x| x != expand);
        leaves.push(fa.node());
        leaves.push(fb.node());
        leaves.sort_unstable();
        leaves.dedup();
    }
    leaves
}

/// Computes the function of `root` over the given `leaves` (which must form
/// a cut of `root`): variable `i` is `leaves[i]`.
///
/// # Panics
///
/// Panics if the leaves do not actually cut the cone of `root` (a PI or
/// constant is reached that is not a leaf).
pub(crate) fn cone_tt(aig: &Aig, root: u32, leaves: &[u32]) -> TruthTable {
    let n = leaves.len();
    let mut memo: HashMap<u32, TruthTable> = HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, TruthTable::var(n, i));
    }
    fn go(aig: &Aig, node: u32, memo: &mut HashMap<u32, TruthTable>, n: usize) -> TruthTable {
        if let Some(tt) = memo.get(&node) {
            return tt.clone();
        }
        let NodeKind::And(a, b) = aig.nodes[node as usize] else {
            panic!("leaves do not cut the cone: reached node {node}");
        };
        let ta = {
            let t = go(aig, a.node(), memo, n);
            if a.is_compl() {
                t.not()
            } else {
                t
            }
        };
        let tb = {
            let t = go(aig, b.node(), memo, n);
            if b.is_compl() {
                t.not()
            } else {
                t
            }
        };
        let tt = ta.and(&tb);
        memo.insert(node, tt.clone());
        tt
    }
    go(aig, root, &mut memo, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    fn sample_aig() -> Aig {
        // f = (a & b) | (c & d)
        let net = parse_eqn("INORDER = a b c d;\nOUTORDER = f;\nf = a*b + c*d;\n").unwrap();
        Aig::from_network(&net)
    }

    #[test]
    fn cut_tts_match_cone_simulation() {
        let aig = sample_aig();
        let cuts = enumerate_cuts(&aig, &CutConfig::default());
        for n in 0..aig.len() as u32 {
            if !aig.is_and(n) {
                continue;
            }
            for cut in &cuts[n as usize] {
                if cut.is_unit(n) {
                    continue;
                }
                let expect = cone_tt(&aig, n, &cut.leaves);
                assert_eq!(cut.tt, expect, "node {n} cut {:?}", cut.leaves);
            }
        }
    }

    #[test]
    fn root_has_four_leaf_cut() {
        let aig = sample_aig();
        let cuts = enumerate_cuts(&aig, &CutConfig::default());
        let out_lit = aig.outputs()[0].1;
        let root = out_lit.node();
        let four = cuts[root as usize]
            .iter()
            .find(|c| c.leaves.len() == 4)
            .expect("4-cut over the PIs must exist");
        // The cut tt is the *node* function; the PO may be complemented
        // (OR is a complemented AND after De Morgan).
        for idx in 0..16usize {
            let a = idx & 1 == 1;
            let b = (idx >> 1) & 1 == 1;
            let c = (idx >> 2) & 1 == 1;
            let d = (idx >> 3) & 1 == 1;
            let expect = ((a && b) || (c && d)) != out_lit.is_compl();
            assert_eq!(four.tt.bit(idx), expect);
        }
    }

    #[test]
    fn cut_count_respects_limit() {
        let net = parse_eqn(
            "INORDER = a b c d e f;\nOUTORDER = o;\no = ((a*b) + (c*d)) * ((e*f) + (a*d));\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let cfg = CutConfig { k: 4, max_cuts: 3 };
        let cuts = enumerate_cuts(&aig, &cfg);
        for n in 0..aig.len() {
            assert!(cuts[n].len() <= cfg.max_cuts + 1, "node {n}"); // +1 trivial
        }
    }

    #[test]
    fn expand_tt_remaps_variables() {
        // tt over [10, 20] = var0 & var1; expand onto [5, 10, 20]
        let tt = TruthTable::var(2, 0).and(&TruthTable::var(2, 1));
        let out = expand_tt(&tt, &[10, 20], &[5, 10, 20]);
        // out must be var1 & var2 of the 3-var space
        let expect = TruthTable::var(3, 1).and(&TruthTable::var(3, 2));
        assert_eq!(out, expect);
    }

    #[test]
    fn reconv_cut_reaches_pis() {
        let aig = sample_aig();
        let out_lit = aig.outputs()[0].1;
        let leaves = reconv_cut(&aig, out_lit.node(), 6);
        // with k=6 the whole cone collapses to the 4 PIs
        assert_eq!(leaves.len(), 4);
        assert!(leaves.iter().all(|&l| aig.is_pi(l)));
        let mut tt = cone_tt(&aig, out_lit.node(), &leaves);
        if out_lit.is_compl() {
            tt = tt.not();
        }
        assert_eq!(tt.count_ones(), 7); // ab + cd has 7 minterms over 4 vars
    }

    #[test]
    fn reconv_cut_respects_k() {
        let net = parse_eqn(
            "INORDER = a b c d e f g h;\nOUTORDER = o;\no = ((a*b)+(c*d)) * ((e*f)+(g*h));\n",
        )
        .unwrap();
        let aig = Aig::from_network(&net);
        let root = aig.outputs()[0].1.node();
        let leaves = reconv_cut(&aig, root, 4);
        assert!(leaves.len() <= 4);
        // cone tt over these leaves must be computable
        let _ = cone_tt(&aig, root, &leaves);
    }
}
