//! A single regression tree with exact greedy split finding.
//!
//! Split search is the hot loop of training and parallelises across
//! features: every candidate feature's best threshold is computed by an
//! independent worker (each owning its private sort of the row indices),
//! and the winners are reduced serially in feature order with the same
//! strict-improvement rule the serial scan uses. The fitted tree is
//! therefore bit-identical at any thread count; only wall-clock changes.

use crate::dataset::Dataset;
use esyn_par::{par_map, Parallelism};

/// Parameters a tree needs from the boosting level.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TreeParams {
    pub max_depth: usize,
    pub lambda: f64,
    pub gamma: f64,
    pub min_child_weight: f64,
    pub parallelism: Parallelism,
}

/// A node of a regression tree, stored in a flat arena.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TreeNode {
    /// Split on `feature < threshold`: left child if true.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf with an output weight.
    Leaf { weight: f64 },
}

/// A fitted regression tree.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RegressionTree {
    pub(crate) nodes: Vec<TreeNode>,
}

impl RegressionTree {
    /// Predicts the tree output for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if a split references a feature index `row` does not have.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { weight } => return *weight,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a tree with no nodes (an unfitted tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[TreeNode], idx: usize) -> usize {
            match &nodes[idx] {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => 1 + go(nodes, *left).max(go(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            go(&self.nodes, 0)
        }
    }

    /// Adds `feature -> gain` contributions into `importance` (summed
    /// squared-gain importance, XGBoost's `total_gain` flavour is
    /// approximated by counting splits weighted equally here).
    pub(crate) fn accumulate_importance(&self, importance: &mut [f64]) {
        for n in &self.nodes {
            if let TreeNode::Split { feature, .. } = n {
                importance[*feature] += 1.0;
            }
        }
    }

    /// Fits a tree to gradients `g` (hessians are all 1 for squared loss)
    /// over the rows listed in `rows`.
    pub(crate) fn fit(
        data: &Dataset,
        grad: &[f64],
        rows: &[usize],
        params: &TreeParams,
    ) -> RegressionTree {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.build(data, grad, rows, params, 1);
        tree
    }

    /// Recursively builds the subtree for `rows`; returns its node index.
    fn build(
        &mut self,
        data: &Dataset,
        grad: &[f64],
        rows: &[usize],
        params: &TreeParams,
        depth: usize,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_sum = rows.len() as f64;
        let leaf_weight = -g_sum / (h_sum + params.lambda);

        if depth >= params.max_depth || rows.len() < 2 {
            return self.push_leaf(leaf_weight);
        }
        match best_split(data, grad, rows, params) {
            None => self.push_leaf(leaf_weight),
            Some((feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .iter()
                    .partition(|&&r| data.row(r)[feature] < threshold);
                debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());
                // reserve the split slot before children so the root stays
                // at index 0
                let slot = self.nodes.len();
                self.nodes.push(TreeNode::Leaf { weight: 0.0 }); // placeholder
                let left = self.build(data, grad, &left_rows, params, depth + 1);
                let right = self.build(data, grad, &right_rows, params, depth + 1);
                self.nodes[slot] = TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn push_leaf(&mut self, weight: f64) -> usize {
        self.nodes.push(TreeNode::Leaf { weight });
        self.nodes.len() - 1
    }
}

/// Below this much work (candidate rows × features) the split search
/// stays inline. `best_split` runs once per tree node, so the gate must
/// clear the ~50–100 µs spawn/join cost of a scoped worker set by a wide
/// margin: 2^16 puts the parallel path only on nodes whose serial scan
/// costs ≈ 1 ms+ (measured: a 8192-row × 8-feature scan is ~200 µs per
/// node averaged over a tree, ~1 ms at the root where all rows are
/// live). Deep, small nodes — the vast majority of calls — stay inline.
const PAR_MIN_WORK: usize = 1 << 16;

/// Exact greedy split search: maximises the XGBoost gain over all
/// (feature, threshold) candidates. Returns `None` when no split beats the
/// `gamma` regularisation or satisfies `min_child_weight`.
///
/// Features are scanned by parallel workers (see the module docs); the
/// reduction keeps the serial tie-break — on equal gains the lowest
/// feature index wins — so the result never depends on scheduling.
fn best_split(
    data: &Dataset,
    grad: &[f64],
    rows: &[usize],
    params: &TreeParams,
) -> Option<(usize, f64)> {
    let g_total: f64 = rows.iter().map(|&r| grad[r]).sum();
    let h_total = rows.len() as f64;
    let parent_score = g_total * g_total / (h_total + params.lambda);

    // (gain, threshold) for one feature; pure in (data, grad, rows, feature).
    let scan_feature = |feature: usize| -> Option<(f64, f64)> {
        let mut order: Vec<usize> = rows.to_vec();
        order.sort_by(|&a, &b| {
            data.row(a)[feature]
                .partial_cmp(&data.row(b)[feature])
                .expect("features must not be NaN")
        });
        let mut best: Option<(f64, f64)> = None;
        let mut g_left = 0.0f64;
        let mut h_left = 0.0f64;
        for i in 0..order.len() - 1 {
            let r = order[i];
            g_left += grad[r];
            h_left += 1.0;
            let v = data.row(r)[feature];
            let v_next = data.row(order[i + 1])[feature];
            if v == v_next {
                continue; // cannot split between equal values
            }
            let h_right = h_total - h_left;
            if h_left < params.min_child_weight || h_right < params.min_child_weight {
                continue;
            }
            let g_right = g_total - g_left;
            let gain = g_left * g_left / (h_left + params.lambda)
                + g_right * g_right / (h_right + params.lambda)
                - parent_score
                - params.gamma;
            if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, 0.5 * (v + v_next)));
            }
        }
        best
    };

    let features: Vec<usize> = (0..data.num_features()).collect();
    let par = params
        .parallelism
        .when(rows.len().saturating_mul(features.len()) >= PAR_MIN_WORK);
    let per_feature = par_map(par, &features, |_, &f| scan_feature(f));

    // Serial reduce in feature order: strictly-greater gain wins, so ties
    // resolve to the lowest feature index exactly as the serial scan did.
    let mut best: Option<(f64, usize, f64)> = None;
    for (feature, found) in per_feature.into_iter().enumerate() {
        if let Some((gain, threshold)) = found {
            if best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, feature, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TreeParams {
        TreeParams {
            max_depth: 5,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            parallelism: Parallelism::Auto,
        }
    }

    #[test]
    fn split_search_identical_at_any_thread_count() {
        // Big enough to clear the parallel work gate (rows × features ≥
        // PAR_MIN_WORK) at least at the root node.
        const N: usize = PAR_MIN_WORK / 8 + 64;
        let rows: Vec<Vec<f64>> = (0..N)
            .map(|i| {
                (0..8)
                    .map(|f| ((i * (f + 3) + f) % 97) as f64)
                    .collect::<Vec<f64>>()
            })
            .collect();
        let grad: Vec<f64> = (0..N).map(|i| ((i % 13) as f64) - 6.0).collect();
        let all: Vec<usize> = (0..N).collect();
        let data = Dataset::new(rows, vec![0.0; N]).unwrap();
        let fit_at = |par: Parallelism| {
            let p = TreeParams {
                parallelism: par,
                ..params()
            };
            RegressionTree::fit(&data, &grad, &all, &p)
        };
        let serial = fit_at(Parallelism::Serial);
        for t in [2, 4, 8] {
            assert_eq!(
                fit_at(Parallelism::Fixed(t)),
                serial,
                "tree differs at {t} threads"
            );
        }
    }

    #[test]
    fn fits_a_step_function() {
        // y = 10 for x < 5, else -10; gradients of first round = -y
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let grad: Vec<f64> = (0..20).map(|i| if i < 5 { -10.0 } else { 10.0 }).collect();
        let all: Vec<usize> = (0..20).collect();
        let data = Dataset::new(rows, vec![0.0; 20]).unwrap();
        let tree = RegressionTree::fit(&data, &grad, &all, &params());
        // prediction = -G/(H+λ): left ≈ 10*5/6 ≈ 8.33, right ≈ -10*15/16
        assert!(tree.predict(&[2.0]) > 5.0);
        assert!(tree.predict(&[9.0]) < -5.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let grad: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let all: Vec<usize> = (0..64).collect();
        let data = Dataset::new(rows, vec![0.0; 64]).unwrap();
        let p = TreeParams {
            max_depth: 3,
            ..params()
        };
        let tree = RegressionTree::fit(&data, &grad, &all, &p);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn constant_gradients_make_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let grad = vec![2.0; 10];
        let all: Vec<usize> = (0..10).collect();
        let data = Dataset::new(rows, vec![0.0; 10]).unwrap();
        let tree = RegressionTree::fit(&data, &grad, &all, &params());
        assert_eq!(tree.depth(), 1);
        // leaf = -G/(H+λ) = -20/11
        assert!((tree.predict(&[3.0]) + 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        // tiny signal
        let grad: Vec<f64> = (0..10).map(|i| if i < 5 { -0.01 } else { 0.01 }).collect();
        let all: Vec<usize> = (0..10).collect();
        let data = Dataset::new(rows, vec![0.0; 10]).unwrap();
        let p = TreeParams {
            gamma: 10.0,
            ..params()
        };
        let tree = RegressionTree::fit(&data, &grad, &all, &p);
        assert_eq!(tree.depth(), 1, "gamma must suppress the split");
    }

    #[test]
    fn equal_feature_values_cannot_split() {
        let rows: Vec<Vec<f64>> = (0..8).map(|_| vec![1.0]).collect();
        let grad: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let all: Vec<usize> = (0..8).collect();
        let data = Dataset::new(rows, vec![0.0; 8]).unwrap();
        let tree = RegressionTree::fit(&data, &grad, &all, &params());
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn importance_counts_splits() {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![i as f64, 0.0]) // feature 1 is useless
            .collect();
        let grad: Vec<f64> = (0..16).map(|i| if i < 8 { -1.0 } else { 1.0 }).collect();
        let all: Vec<usize> = (0..16).collect();
        let data = Dataset::new(rows, vec![0.0; 16]).unwrap();
        let tree = RegressionTree::fit(&data, &grad, &all, &params());
        let mut imp = vec![0.0; 2];
        tree.accumulate_importance(&mut imp);
        assert!(imp[0] >= 1.0);
        assert_eq!(imp[1], 0.0);
    }
}
