//! Gradient-boosted regression trees — the XGBoost substitute used for the
//! paper's technology-aware cost models (§3.2.1: "two separate XGBoost
//! regression models to predict area and delay ... Each contains 200
//! estimators and has a maximum depth of 5").
//!
//! The implementation follows the XGBoost formulation for squared loss:
//! per-boosting-round gradients `g = ŷ − y` and hessians `h = 1`, exact
//! greedy split search maximising
//! `gain = G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) − γ`,
//! leaf weights `w = −G/(H+λ)`, shrinkage `η`, optional row subsampling.
//!
//! # Example
//!
//! ```
//! use esyn_gbdt::{Dataset, GbdtParams, GbdtRegressor};
//!
//! // y = 2*x0 + x1
//! let rows: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 17) as f64, (i % 5) as f64])
//!     .collect();
//! let labels: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + r[1]).collect();
//! let data = Dataset::new(rows, labels)?;
//! let model = GbdtRegressor::fit(&data, &GbdtParams::default(), 42);
//! let pred = model.predict(&[8.0, 3.0]);
//! assert!((pred - 19.0).abs() < 1.5);
//! # Ok::<(), esyn_gbdt::DatasetError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dataset;
mod model;
mod tree;

pub use dataset::{Dataset, DatasetError};
pub use model::{pearson_r, GbdtParams, GbdtRegressor, ModelParseError};
pub use tree::RegressionTree;
