//! Training data container: dense feature rows plus labels, validated on
//! construction (non-empty, rectangular, one label per row) so the
//! fitting loops can index without checks. `split_every_kth` provides
//! the deterministic held-out split used for the paper's Pearson-R
//! reporting.

use std::error::Error;
use std::fmt;

/// A dense regression dataset: rows of features plus one label per row.
#[derive(Clone, Debug)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<f64>,
    num_features: usize,
}

/// Error constructing a [`Dataset`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatasetError {
    /// No rows were provided.
    Empty,
    /// Row/label counts differ.
    LengthMismatch,
    /// Some row has a different number of features.
    RaggedRows,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::LengthMismatch => write!(f, "rows and labels differ in length"),
            DatasetError::RaggedRows => write!(f, "rows have inconsistent feature counts"),
        }
    }
}

impl Error for DatasetError {}

impl Dataset {
    /// Builds a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on empty input, mismatched lengths or
    /// ragged rows.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<f64>) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LengthMismatch);
        }
        let num_features = rows[0].len();
        if rows.iter().any(|r| r.len() != num_features) {
            return Err(DatasetError::RaggedRows);
        }
        Ok(Dataset {
            rows,
            labels,
            num_features,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset holds no rows (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Splits into (train, test) by taking every `k`-th row as test.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (no test rows would make the split pointless) or
    /// if either side would be empty.
    pub fn split_every_kth(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k >= 2, "k must be >= 2");
        let mut train_rows = Vec::new();
        let mut train_labels = Vec::new();
        let mut test_rows = Vec::new();
        let mut test_labels = Vec::new();
        for i in 0..self.len() {
            if i % k == 0 {
                test_rows.push(self.rows[i].clone());
                test_labels.push(self.labels[i]);
            } else {
                train_rows.push(self.rows[i].clone());
                train_labels.push(self.labels[i]);
            }
        }
        (
            Dataset::new(train_rows, train_labels).expect("train side non-empty"),
            Dataset::new(test_rows, test_labels).expect("test side non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Dataset::new(vec![], vec![]),
            Err(DatasetError::Empty)
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![]),
            Err(DatasetError::LengthMismatch)
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]),
            Err(DatasetError::RaggedRows)
        ));
        let d = Dataset::new(vec![vec![1.0, 2.0]], vec![3.0]).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.label(0), 3.0);
    }

    #[test]
    fn split_every_kth_partitions() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = Dataset::new(rows, labels).unwrap();
        let (train, test) = d.split_every_kth(5);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len(), 8);
        assert_eq!(test.row(0)[0], 0.0);
        assert_eq!(test.row(1)[0], 5.0);
    }
}
