//! The boosted ensemble: fitting, prediction, persistence, metrics.
//!
//! Boosting itself is inherently sequential (each tree fits the previous
//! round's residuals), so the parallelism lives one level down in the
//! per-node split search across features — see
//! [`GbdtParams::parallelism`] and the `tree` module docs. Fitted models
//! are bit-identical at any thread count.

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeNode, TreeParams};
use esyn_par::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Boosting hyper-parameters.
///
/// Defaults match the paper's XGBoost setup: 200 estimators, maximum depth
/// 5 (§3.2.1); the remaining knobs use the XGBoost defaults.
///
/// ```
/// use esyn_gbdt::{Dataset, GbdtParams, GbdtRegressor};
///
/// // A tiny 2-tree ensemble on a step function.
/// let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
/// let labels: Vec<f64> = (0..64).map(|i| if i < 32 { -1.0 } else { 1.0 }).collect();
/// let data = Dataset::new(rows, labels)?;
/// let params = GbdtParams {
///     n_estimators: 2,
///     learning_rate: 0.5,
///     ..Default::default()
/// };
/// let model = GbdtRegressor::fit(&data, &params, 0);
/// assert_eq!(model.num_trees(), 2);
/// assert!(model.predict(&[10.0]) < 0.0);
/// assert!(model.predict(&[50.0]) > 0.0);
/// # Ok::<(), esyn_gbdt::DatasetError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Learning rate (shrinkage) η.
    pub learning_rate: f64,
    /// L2 leaf regularisation λ.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian (row count, for squared loss) per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per round (1.0 = off).
    pub subsample: f64,
    /// Worker threads for the per-node split search. The fitted model is
    /// bit-identical at any setting; this only trades wall-clock.
    pub parallelism: Parallelism,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_estimators: 200,
            max_depth: 5,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            parallelism: Parallelism::Auto,
        }
    }
}

/// A fitted gradient-boosted regression model.
#[derive(Clone, Debug, Default)]
pub struct GbdtRegressor {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    num_features: usize,
}

impl GbdtRegressor {
    /// Fits a model with squared loss.
    ///
    /// `seed` drives row subsampling; with `subsample == 1.0` the fit is
    /// fully deterministic regardless of the seed.
    pub fn fit(data: &Dataset, params: &GbdtParams, seed: u64) -> Self {
        let n = data.len();
        let base_score = data.labels().iter().sum::<f64>() / n as f64;
        let mut preds = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_estimators);
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            lambda: params.lambda,
            gamma: params.gamma,
            min_child_weight: params.min_child_weight,
            parallelism: params.parallelism,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut grad = vec![0.0f64; n];

        for _ in 0..params.n_estimators {
            for i in 0..n {
                grad[i] = preds[i] - data.label(i); // d/dŷ ½(ŷ−y)²
            }
            let rows: Vec<usize> = if params.subsample >= 1.0 {
                (0..n).collect()
            } else {
                let keep: Vec<usize> = (0..n).filter(|_| rng.gen_bool(params.subsample)).collect();
                if keep.is_empty() {
                    (0..n).collect()
                } else {
                    keep
                }
            };
            let tree = RegressionTree::fit(data, &grad, &rows, &tree_params);
            for i in 0..n {
                preds[i] += params.learning_rate * tree.predict(data.row(i));
            }
            trees.push(tree);
        }
        GbdtRegressor {
            base_score,
            learning_rate: params.learning_rate,
            trees,
            num_features: data.num_features(),
        }
    }

    /// Predicts the label for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the feature count seen in training.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert!(
            row.len() >= self.num_features,
            "expected {} features, got {}",
            self.num_features,
            row.len()
        );
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Split-count feature importance, normalised to sum to 1 (all zeros
    /// when the ensemble never split).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.num_features];
        for t in &self.trees {
            t.accumulate_importance(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &Dataset) -> f64 {
        let n = data.len() as f64;
        (0..data.len())
            .map(|i| {
                let e = self.predict(data.row(i)) - data.label(i);
                e * e
            })
            .sum::<f64>()
            / n
    }

    /// Serialises the model to a plain-text format (the offline crate set
    /// has no serde data format, so the format is a simple line protocol).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "gbdt v1 base={} lr={} features={} trees={}",
            self.base_score,
            self.learning_rate,
            self.num_features,
            self.trees.len()
        );
        for t in &self.trees {
            let _ = writeln!(s, "tree {}", t.nodes.len());
            for n in &t.nodes {
                match n {
                    TreeNode::Leaf { weight } => {
                        let _ = writeln!(s, "leaf {weight}");
                    }
                    TreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        let _ = writeln!(s, "split {feature} {threshold} {left} {right}");
                    }
                }
            }
        }
        s
    }

    /// Parses a model serialised by [`GbdtRegressor::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelParseError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, ModelParseError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| err("empty input"))?;
        let mut base_score = None;
        let mut learning_rate = None;
        let mut num_features = None;
        let mut num_trees = None;
        for tok in header.split_whitespace() {
            if let Some(v) = tok.strip_prefix("base=") {
                base_score = Some(parse_f64(v)?);
            } else if let Some(v) = tok.strip_prefix("lr=") {
                learning_rate = Some(parse_f64(v)?);
            } else if let Some(v) = tok.strip_prefix("features=") {
                num_features = Some(parse_usize(v)?);
            } else if let Some(v) = tok.strip_prefix("trees=") {
                num_trees = Some(parse_usize(v)?);
            }
        }
        let (Some(base_score), Some(learning_rate), Some(num_features), Some(num_trees)) =
            (base_score, learning_rate, num_features, num_trees)
        else {
            return Err(err("incomplete header"));
        };
        let mut trees = Vec::with_capacity(num_trees);
        for _ in 0..num_trees {
            let tline = lines.next().ok_or_else(|| err("missing tree header"))?;
            let count = tline
                .strip_prefix("tree ")
                .ok_or_else(|| err("expected `tree N`"))
                .and_then(parse_usize)?;
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                let nline = lines.next().ok_or_else(|| err("missing node line"))?;
                let mut parts = nline.split_whitespace();
                match parts.next() {
                    Some("leaf") => {
                        let w = parse_f64(parts.next().ok_or_else(|| err("leaf weight"))?)?;
                        nodes.push(TreeNode::Leaf { weight: w });
                    }
                    Some("split") => {
                        let feature =
                            parse_usize(parts.next().ok_or_else(|| err("split feature"))?)?;
                        let threshold =
                            parse_f64(parts.next().ok_or_else(|| err("split threshold"))?)?;
                        let left = parse_usize(parts.next().ok_or_else(|| err("split left"))?)?;
                        let right = parse_usize(parts.next().ok_or_else(|| err("split right"))?)?;
                        if left >= count || right >= count {
                            return Err(err("child index out of range"));
                        }
                        nodes.push(TreeNode::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        });
                    }
                    _ => return Err(err("expected `leaf` or `split`")),
                }
            }
            trees.push(RegressionTree { nodes });
        }
        Ok(GbdtRegressor {
            base_score,
            learning_rate,
            trees,
            num_features,
        })
    }
}

impl FromStr for GbdtRegressor {
    type Err = ModelParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GbdtRegressor::from_text(s)
    }
}

/// Error parsing a serialised model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelParseError(pub String);

impl fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model parse error: {}", self.0)
    }
}

impl Error for ModelParseError {}

fn err(msg: &str) -> ModelParseError {
    ModelParseError(msg.to_owned())
}

fn parse_f64(s: &str) -> Result<f64, ModelParseError> {
    s.parse()
        .map_err(|_| ModelParseError(format!("bad float `{s}`")))
}

fn parse_usize(s: &str) -> Result<usize, ModelParseError> {
    s.trim()
        .parse()
        .map_err(|_| ModelParseError(format!("bad integer `{s}`")))
}

/// Pearson correlation coefficient between two equal-length slices — the
/// "R-value" metric the paper reports for its cost models (0.78 delay,
/// 0.76 area).
///
/// Returns 0 when either side has zero variance.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson_r(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty input");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 23) as f64, ((i * 7) % 11) as f64, (i % 3) as f64])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5 * r[2] + 10.0)
            .collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn fits_linear_function_closely() {
        let data = linear_dataset(400);
        let model = GbdtRegressor::fit(&data, &GbdtParams::default(), 1);
        assert!(model.mse(&data) < 1.0, "mse = {}", model.mse(&data));
        let preds: Vec<f64> = (0..data.len())
            .map(|i| model.predict(data.row(i)))
            .collect();
        let r = pearson_r(&preds, data.labels());
        assert!(r > 0.99, "r = {r}");
    }

    #[test]
    fn generalises_to_test_split() {
        let data = linear_dataset(600);
        let (train, test) = data.split_every_kth(5);
        let model = GbdtRegressor::fit(&train, &GbdtParams::default(), 2);
        let preds: Vec<f64> = (0..test.len())
            .map(|i| model.predict(test.row(i)))
            .collect();
        let r = pearson_r(&preds, test.labels());
        assert!(r > 0.95, "r = {r}");
    }

    #[test]
    fn deterministic_without_subsample() {
        let data = linear_dataset(100);
        let m1 = GbdtRegressor::fit(&data, &GbdtParams::default(), 1);
        let m2 = GbdtRegressor::fit(&data, &GbdtParams::default(), 999);
        for i in 0..data.len() {
            assert_eq!(m1.predict(data.row(i)), m2.predict(data.row(i)));
        }
    }

    #[test]
    fn subsample_changes_with_seed_but_still_fits() {
        let data = linear_dataset(300);
        let params = GbdtParams {
            subsample: 0.7,
            ..Default::default()
        };
        let m1 = GbdtRegressor::fit(&data, &params, 1);
        let m2 = GbdtRegressor::fit(&data, &params, 2);
        assert!(m1.mse(&data) < 5.0);
        assert!(m2.mse(&data) < 5.0);
        // different subsamples → (almost surely) different models
        let differs = (0..data.len())
            .any(|i| (m1.predict(data.row(i)) - m2.predict(data.row(i))).abs() > 1e-12);
        assert!(differs);
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let data = linear_dataset(150);
        let params = GbdtParams {
            n_estimators: 20,
            ..Default::default()
        };
        let model = GbdtRegressor::fit(&data, &params, 3);
        let text = model.to_text();
        let back = GbdtRegressor::from_text(&text).unwrap();
        for i in 0..data.len() {
            assert_eq!(model.predict(data.row(i)), back.predict(data.row(i)));
        }
        assert_eq!(back.num_trees(), 20);
        assert_eq!(back.num_features(), 3);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(GbdtRegressor::from_text("").is_err());
        assert!(GbdtRegressor::from_text("gbdt v1 base=x lr=0.1").is_err());
        assert!(
            GbdtRegressor::from_text(
                "gbdt v1 base=0 lr=0.1 features=2 trees=1\ntree 1\nsplit 0 1.0 5 6\n"
            )
            .is_err(),
            "child out of range"
        );
    }

    #[test]
    fn feature_importance_finds_informative_feature() {
        // label depends only on feature 1
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 7) as f64, (i % 13) as f64])
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[1] * 4.0).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = GbdtRegressor::fit(&data, &GbdtParams::default(), 5);
        let imp = model.feature_importance();
        assert!(imp[1] > 0.8, "importance {imp:?}");
        let total: f64 = imp.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_r_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson_r(&xs, &xs) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson_r(&xs, &neg) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson_r(&xs, &flat), 0.0);
    }

    #[test]
    fn nonlinear_target_learnable() {
        // y = x0 * x1 (interaction) — trees handle this, linear models not
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![(i % 21) as f64, ((i / 21) % 17) as f64])
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = GbdtRegressor::fit(&data, &GbdtParams::default(), 9);
        let preds: Vec<f64> = (0..data.len())
            .map(|i| model.predict(data.row(i)))
            .collect();
        assert!(pearson_r(&preds, data.labels()) > 0.98);
    }
}
