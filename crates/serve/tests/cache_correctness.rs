//! Cache-correctness tests for the serve engine (ISSUE satellite 3):
//!
//! * a warm hit replays the cold computation's bytes exactly;
//! * configurations that differ in any knob — extractor, threads,
//!   saturation budgets, seed, objective, … — never alias a cache key;
//! * the saturated-e-graph tier is reused across jobs that differ only
//!   downstream of saturation, with results byte-identical to cold
//!   runs;
//! * eviction is deterministic: same insert/get sequence, same
//!   evictions, and a re-computed evicted entry reproduces its original
//!   bytes, with memory within the byte budget throughout.

use esyn_core::{cache_key, train_cost_models, Objective, Parallelism, TrainConfig};
use esyn_serve::cache::{ResultCache, ENTRY_OVERHEAD};
use esyn_serve::json::{self, Json};
use esyn_serve::protocol::JobOverrides;
use esyn_serve::{Engine, ServeConfig};
use esyn_techmap::Library;
use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Duration;

fn engine_with(cfg: ServeConfig) -> Arc<Engine> {
    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    Engine::new(models, lib, cfg)
}

/// One worker so responses arrive in submission order.
fn test_engine(cache_bytes: usize) -> Arc<Engine> {
    engine_with(ServeConfig {
        workers: 1,
        queue_cap: 16,
        cache_bytes,
        ..ServeConfig::default()
    })
}

/// A generous result-tier budget (nothing evicts).
const BIG: usize = 1 << 20;

/// A fast submit line for the registry circuit `name`.
fn submit_line(id: &str, name: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"submit","id":"{id}","format":"name","circuit":"{name}","config":{{"iter_limit":3,"node_limit":2000,"samples":6{extra}}}}}"#
    )
}

fn recv_reply(rx: &Receiver<String>) -> Json {
    let line = rx
        .recv_timeout(Duration::from_secs(180))
        .expect("reply within deadline");
    json::parse(&line).expect("reply is valid JSON")
}

/// (`cached` flag, canonical bytes of the `result` object). Encoding the
/// parsed object is byte-faithful because `encode` is a fixed point of
/// `parse` (pinned in `protocol_props.rs`).
fn result_parts(reply: &Json) -> (bool, String) {
    assert_eq!(
        reply.get("reply").and_then(Json::as_str),
        Some("result"),
        "expected a result line, got {}",
        reply.encode()
    );
    let cached = reply
        .get("cached")
        .and_then(Json::as_bool)
        .expect("cached flag");
    let bytes = reply.get("result").expect("result object").encode();
    (cached, bytes)
}

#[test]
fn warm_hits_replay_cold_bytes_exactly() {
    let engine = test_engine(BIG);
    let (tx, rx) = channel();
    engine.handle_line(&submit_line("cold", "3_3", ""), &tx);
    let (cached_cold, bytes_cold) = result_parts(&recv_reply(&rx));
    assert!(!cached_cold, "first submission must be a miss");

    engine.handle_line(&submit_line("warm", "3_3", ""), &tx);
    let (cached_warm, bytes_warm) = result_parts(&recv_reply(&rx));
    assert!(cached_warm, "identical resubmission must hit the cache");
    assert_eq!(bytes_warm, bytes_cold, "warm bytes differ from cold bytes");

    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_len, 1);
    engine.shutdown();
}

#[test]
fn every_config_knob_separates_the_cache_key() {
    // Key-level: apply one-override-at-a-time variants of the server's
    // default job config and require pairwise-distinct cache keys.
    let net = esyn_circuits::by_name("3_3").expect("registry circuit");
    let base = ServeConfig::default().base;
    let mut overrides: Vec<(&str, JobOverrides)> = vec![("base", JobOverrides::default())];
    overrides.push((
        "iter_limit",
        JobOverrides {
            iter_limit: Some(base.limits.iter_limit + 1),
            ..Default::default()
        },
    ));
    overrides.push((
        "node_limit",
        JobOverrides {
            node_limit: Some(base.limits.node_limit / 2),
            ..Default::default()
        },
    ));
    overrides.push((
        "time_limit_ms",
        JobOverrides {
            time_limit_ms: Some(1_234_567),
            ..Default::default()
        },
    ));
    overrides.push((
        "samples",
        JobOverrides {
            samples: Some(base.pool.num_samples + 1),
            ..Default::default()
        },
    ));
    overrides.push((
        "seed",
        JobOverrides {
            seed: Some(base.pool.seed.wrapping_add(1)),
            ..Default::default()
        },
    ));
    for engine in ["greedy-dag", "global-greedy-dag", "bottom-up"] {
        overrides.push((
            engine,
            JobOverrides {
                extractor: Some(esyn_extract::canonical_engine_name(engine).expect("known engine")),
                ..Default::default()
            },
        ));
    }
    for threads in [1usize, 2, 4] {
        overrides.push((
            "threads",
            JobOverrides {
                threads: Some(threads),
                ..Default::default()
            },
        ));
    }
    overrides.push((
        "verify",
        JobOverrides {
            verify: Some(!base.verify),
            ..Default::default()
        },
    ));
    overrides.push((
        "use_choices",
        JobOverrides {
            use_choices: Some(!base.use_choices),
            ..Default::default()
        },
    ));

    let mut seen = HashSet::new();
    for (label, o) in &overrides {
        let cfg = o.apply(&base);
        for objective in [Objective::Delay, Objective::Area, Objective::Balanced] {
            let key = cache_key(&net, objective, &cfg);
            assert!(
                seen.insert(key),
                "cache key aliased for override `{label}` under {objective:?}"
            );
        }
    }
    // Sanity: the same config re-keys identically (keys are pure).
    let again = cache_key(&net, Objective::Delay, &base);
    let first = cache_key(
        &net,
        Objective::Delay,
        &JobOverrides::default().apply(&base),
    );
    assert_eq!(again, first);
}

#[test]
fn objectives_never_alias_cache_entries() {
    // Requests differing only in `objective` — builtin or named — must
    // produce distinct cache entries, then re-hit their own.
    let submit_obj = |id: &str, objective: &str| {
        format!(
            r#"{{"op":"submit","id":"{id}","format":"name","circuit":"3_3","objective":"{objective}","config":{{"iter_limit":3,"node_limit":2000,"samples":6}}}}"#
        )
    };
    let engine = test_engine(BIG);
    let (tx, rx) = channel();
    let objectives = ["delay", "techmap", "activity", "unit"];
    let mut bytes = Vec::new();
    for (i, obj) in objectives.iter().enumerate() {
        engine.handle_line(&submit_obj(&format!("cold{i}"), obj), &tx);
        let (cached, b) = result_parts(&recv_reply(&rx));
        assert!(!cached, "objective `{obj}` must miss on first submission");
        assert!(
            !bytes.contains(&b),
            "objective `{obj}` reproduced another objective's payload bytes"
        );
        bytes.push(b);
    }
    engine.handle_line(&submit_obj("warm", "techmap"), &tx);
    let (cached, b) = result_parts(&recv_reply(&rx));
    assert!(cached, "resubmitted named objective must re-hit its entry");
    assert_eq!(b, bytes[1], "warm bytes differ from techmap's cold bytes");

    let stats = engine.stats();
    assert_eq!(stats.cache_misses, objectives.len() as u64);
    assert_eq!(stats.cache_hits, 1);
    engine.shutdown();
}

#[test]
fn named_objective_keys_are_namespaced_away_from_builtins() {
    // Key-level twin of `objectives_never_alias_cache_entries`: the
    // `named:` tag namespace can never collide with a builtin Debug
    // rendering, even for the shadowed `area` name.
    let net = esyn_circuits::by_name("3_3").expect("registry circuit");
    let base = ServeConfig::default().base;
    let mut keys = vec![
        esyn_core::cache_key(&net, Objective::Delay, &base),
        esyn_core::cache_key(&net, Objective::Area, &base),
        esyn_core::cache_key(&net, Objective::Balanced, &base),
    ];
    for name in esyn_objective::OBJECTIVE_NAMES {
        let key = esyn_core::cache_key_tagged(&net, &format!("named:{name}"), &base);
        assert!(
            !keys.contains(&key),
            "named objective `{name}` aliases another objective's key"
        );
        keys.push(key);
    }
}

#[test]
fn parallelism_is_part_of_the_key_but_thread_count_never_changes_content() {
    // `threads` is keyed conservatively (different key → both requests
    // miss), yet the esyn-par contract means the synthesis *content*
    // still matches bit-for-bit. The payload embeds its own cache key
    // (`config_hash` differs by construction), so the comparison strips
    // the key fields and checks everything else byte-for-byte.
    let strip_key = |bytes: &str| {
        let Json::Obj(fields) = json::parse(bytes).expect("payload JSON") else {
            panic!("payload must be an object");
        };
        Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "circuit_hash" && k != "config_hash")
                .collect(),
        )
        .encode()
    };
    let engine = test_engine(BIG);
    let (tx, rx) = channel();
    engine.handle_line(&submit_line("t1", "3_3", r#","threads":1"#), &tx);
    let (c1, bytes_t1) = result_parts(&recv_reply(&rx));
    engine.handle_line(&submit_line("t2", "3_3", r#","threads":2"#), &tx);
    let (c2, bytes_t2) = result_parts(&recv_reply(&rx));
    assert!(
        !c1 && !c2,
        "distinct thread counts must both miss the cache"
    );
    assert_ne!(bytes_t1, bytes_t2, "the embedded config_hash must differ");
    assert_eq!(
        strip_key(&bytes_t1),
        strip_key(&bytes_t2),
        "thread count changed the synthesis content (determinism contract broken)"
    );
    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_hits, 0);
    engine.shutdown();
}

#[test]
fn differing_seeds_miss_then_rehit_their_own_entries() {
    let engine = test_engine(BIG);
    let (tx, rx) = channel();
    engine.handle_line(&submit_line("a", "3_3", r#","seed":11"#), &tx);
    let (c, bytes_seed11) = result_parts(&recv_reply(&rx));
    assert!(!c);
    engine.handle_line(&submit_line("b", "3_3", r#","seed":12"#), &tx);
    let (c, _) = result_parts(&recv_reply(&rx));
    assert!(!c, "different seed must not alias");
    engine.handle_line(&submit_line("c", "3_3", r#","seed":11"#), &tx);
    let (c, bytes_again) = result_parts(&recv_reply(&rx));
    assert!(c, "original seed must re-hit its entry");
    assert_eq!(bytes_again, bytes_seed11);
    engine.shutdown();
}

#[test]
fn eviction_is_deterministic_at_the_cache_level() {
    let key = |i: u64| esyn_core::CacheKey {
        circuit: i,
        config: i ^ 0xABCD,
    };
    // Budget fits exactly two five-byte payloads.
    let budget = 2 * (5 + ENTRY_OVERHEAD);
    let run = || {
        let mut cache = ResultCache::new(budget);
        let mut evicted = Vec::new();
        cache.insert(key(1), Arc::from("one.."), 5);
        cache.insert(key(2), Arc::from("two.."), 5);
        assert!(cache.get(&key(1)).is_some()); // refresh 1 → 2 is now LRU
        cache.insert(key(3), Arc::from("three"), 5);
        assert!(cache.bytes() <= budget, "byte budget exceeded");
        for i in 1..=3 {
            if !cache.contains(&key(i)) {
                evicted.push(i);
            }
        }
        (evicted, cache.evictions(), cache.len(), cache.bytes())
    };
    let first = run();
    assert_eq!(
        first,
        (vec![2], 1, 2, budget),
        "LRU must evict the stale entry"
    );
    // Logical-tick recency (never wall-clock) makes reruns identical.
    assert_eq!(run(), first, "eviction sequence must be reproducible");
}

#[test]
fn evicted_entries_recompute_to_identical_bytes() {
    // Probe each payload's measured cache charge on a generous engine,
    // then build one whose byte budget holds either entry alone but
    // never both: submitting A, B, A forces A's eviction and
    // recomputation; the recomputed payload must equal the original.
    let probe = test_engine(BIG);
    let (tx, rx) = channel();
    probe.handle_line(&submit_line("p1", "3_3", ""), &tx);
    let _ = result_parts(&recv_reply(&rx));
    let charge_a = probe.stats().cache_bytes;
    probe.handle_line(&submit_line("p2", "qadd", ""), &tx);
    let _ = result_parts(&recv_reply(&rx));
    let charge_b = probe.stats().cache_bytes - charge_a;
    probe.shutdown();

    let engine = test_engine(charge_a.max(charge_b));
    let (tx, rx) = channel();
    engine.handle_line(&submit_line("a1", "3_3", ""), &tx);
    let (c, bytes_first) = result_parts(&recv_reply(&rx));
    assert!(!c);
    engine.handle_line(&submit_line("b", "qadd", ""), &tx);
    let (c, _) = result_parts(&recv_reply(&rx));
    assert!(!c);
    engine.handle_line(&submit_line("a2", "3_3", ""), &tx);
    let (c, bytes_second) = result_parts(&recv_reply(&rx));
    assert!(!c, "evicted entry must recompute, not hit");
    assert_eq!(
        bytes_second, bytes_first,
        "recomputation after eviction changed the payload"
    );
    let stats = engine.stats();
    assert_eq!(
        stats.cache_evictions, 2,
        "a one-entry byte budget must evict on each new key"
    );
    assert_eq!(stats.cache_len, 1);
    assert!(
        stats.cache_bytes <= stats.cache_bytes_cap,
        "memory exceeded the byte budget: {} > {}",
        stats.cache_bytes,
        stats.cache_bytes_cap
    );
    engine.shutdown();
}

#[test]
fn cache_can_be_disabled() {
    let engine = test_engine(0);
    let (tx, rx) = channel();
    engine.handle_line(&submit_line("x", "3_3", ""), &tx);
    let (c, bytes_a) = result_parts(&recv_reply(&rx));
    engine.handle_line(&submit_line("y", "3_3", ""), &tx);
    let (c2, bytes_b) = result_parts(&recv_reply(&rx));
    assert!(!c && !c2, "budget 0 must disable result caching entirely");
    assert_eq!(bytes_a, bytes_b, "determinism holds with the cache off");
    let stats = engine.stats();
    assert_eq!((stats.cache_len, stats.cache_bytes), (0, 0));
    engine.shutdown();
}

#[test]
fn saturated_tier_reuse_is_byte_identical_to_cold_runs() {
    // Two jobs differing only in `seed` miss the result tier but share
    // one saturated e-graph; an engine with the tier disabled runs the
    // same jobs fully cold, and every payload must match byte-for-byte.
    let warm = test_engine(BIG);
    let (tx, rx) = channel();
    warm.handle_line(&submit_line("s1", "3_3", r#","seed":21"#), &tx);
    let (c1, warm_seed21) = result_parts(&recv_reply(&rx));
    warm.handle_line(&submit_line("s2", "3_3", r#","seed":22"#), &tx);
    let (c2, warm_seed22) = result_parts(&recv_reply(&rx));
    assert!(!c1 && !c2, "different seeds must miss the result tier");
    let stats = warm.stats();
    assert_eq!(stats.sat_misses, 1, "first job saturates from scratch");
    assert_eq!(stats.sat_hits, 1, "second job reuses the saturated e-graph");
    assert_eq!(stats.sat_len, 1);
    assert!(
        stats.sat_bytes > 0 && stats.sat_bytes <= stats.sat_bytes_cap,
        "saturated tier must charge bytes within its budget"
    );
    assert_eq!(stats.computed, 2, "both jobs ran the downstream pipeline");
    warm.shutdown();

    let cold = engine_with(ServeConfig {
        workers: 1,
        queue_cap: 16,
        sat_cache_bytes: 0,
        ..ServeConfig::default()
    });
    let (tx, rx) = channel();
    cold.handle_line(&submit_line("c1", "3_3", r#","seed":21"#), &tx);
    let (_, cold_seed21) = result_parts(&recv_reply(&rx));
    cold.handle_line(&submit_line("c2", "3_3", r#","seed":22"#), &tx);
    let (_, cold_seed22) = result_parts(&recv_reply(&rx));
    let stats = cold.stats();
    assert_eq!(
        (stats.sat_hits, stats.sat_len),
        (0, 0),
        "a zero budget disables the saturated tier"
    );
    cold.shutdown();

    assert_eq!(
        warm_seed21, cold_seed21,
        "warm-saturation result differs from a cold run"
    );
    assert_eq!(
        warm_seed22, cold_seed22,
        "saturated-tier reuse changed the payload bytes"
    );
}

#[test]
fn base_parallelism_differs_from_fixed_threads() {
    // The server's serial default and an explicit `threads:1` override
    // are different configurations (Serial vs Fixed(1)) and must key
    // separately — conservative, but it means a client can never
    // observe a stale entry after the server's default changes.
    let net = esyn_circuits::by_name("3_3").expect("registry circuit");
    let base = ServeConfig::default().base;
    assert_eq!(base.parallelism, Parallelism::Serial);
    let fixed1 = JobOverrides {
        threads: Some(1),
        ..Default::default()
    }
    .apply(&base);
    assert_ne!(
        cache_key(&net, Objective::Delay, &base),
        cache_key(&net, Objective::Delay, &fixed1)
    );
}
