//! Seeded-loop property tests for the serve JSON-lines codec.
//!
//! The properties mirror what the protocol relies on (see
//! `crates/serve/src/json.rs`): deterministic, byte-stable encoding —
//! `encode(parse(encode(v))) == encode(v)` — and panic-free,
//! position-carrying rejection of malformed input. Every case derives
//! its generator from the test name and case index, so a failure
//! message's `case N` reproduces exactly (same scheme as
//! `tests/equivalence_properties.rs`).

use esyn_serve::json::{self, Json};
use esyn_serve::protocol::{parse_request, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property.
const CASES: u64 = 48;

/// Deterministic per-case generator: FNV-1a over the test name, mixed
/// with the case index.
fn case_rng(test: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A random string mixing ASCII, escapes, control characters and
/// astral-plane scalars (the surrogate-pair encoding path).
fn random_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| match rng.gen_range(0u32..8) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\u{7}',
            4 => '\u{1F600}',
            5 => 'é',
            _ => char::from(rng.gen_range(b' '..b'~')),
        })
        .collect()
}

/// A random finite number, biased toward the integers the protocol
/// mostly carries but covering fractions, exponents and negatives.
fn random_num(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0u64..1_000_000) as f64,
        1 => -(rng.gen_range(0u64..1_000) as f64),
        2 => rng.gen_range(0u64..1 << 16) as f64 / 256.0,
        _ => {
            // Arbitrary bit patterns, rejecting non-finite draws.
            loop {
                let v = f64::from_bits(rng.gen::<u64>());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }
}

/// A random JSON document of bounded depth.
fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let scalar_only = depth == 0;
    match rng.gen_range(0u32..if scalar_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 0),
        2 => Json::Num(random_num(rng)),
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..5);
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..5);
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", random_string(rng)),
                            random_json(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn encode_parse_round_trips_structurally() {
    for case in 0..CASES {
        let mut rng = case_rng("encode_parse_round_trips_structurally", case);
        let v = random_json(&mut rng, 3);
        let text = v.encode();
        let back = json::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, v, "case {case}: structural round trip\n{text}");
    }
}

#[test]
fn encoding_is_a_byte_level_fixed_point() {
    // The cache stores encoded bytes and warm hits splice them verbatim,
    // so re-encoding a parsed response must reproduce it byte for byte.
    for case in 0..CASES {
        let mut rng = case_rng("encoding_is_a_byte_level_fixed_point", case);
        let v = random_json(&mut rng, 3);
        let once = v.encode();
        let twice = json::parse(&once).unwrap().encode();
        assert_eq!(twice, once, "case {case}: encode is not a fixed point");
    }
}

#[test]
fn mutated_documents_never_panic_and_errors_carry_positions() {
    for case in 0..CASES {
        let mut rng = case_rng("mutated_documents_never_panic", case);
        let text = random_json(&mut rng, 2).encode();
        let chars: Vec<char> = text.chars().collect();
        // Char-level mutations keep the input valid UTF-8 while breaking
        // the JSON grammar in assorted ways.
        let mutated: String = match rng.gen_range(0u32..4) {
            0 => chars[..rng.gen_range(0usize..chars.len() + 1)]
                .iter()
                .collect(),
            1 => {
                let mut c = chars.clone();
                let at = rng.gen_range(0usize..c.len() + 1);
                c.insert(
                    at,
                    ['{', '}', ',', ':', 'x', '\\'][rng.gen_range(0usize..6)],
                );
                c.into_iter().collect()
            }
            2 => {
                let mut c = chars.clone();
                if !c.is_empty() {
                    c.remove(rng.gen_range(0usize..c.len()));
                }
                c.into_iter().collect()
            }
            _ => {
                let mut c = chars.clone();
                if !c.is_empty() {
                    let at = rng.gen_range(0usize..c.len());
                    c[at] = char::from(rng.gen_range(b'!'..b'~'));
                }
                c.into_iter().collect()
            }
        };
        // A mutation may still be valid JSON; the property is only that
        // the parser never panics and any rejection names a byte offset
        // within the input.
        if let Err(e) = json::parse(&mutated) {
            assert!(
                e.position <= mutated.len(),
                "case {case}: position {} out of range for {mutated:?}",
                e.position
            );
            assert!(!e.message.is_empty(), "case {case}: empty message");
        }
    }
}

#[test]
fn garbage_never_panics() {
    for case in 0..CASES {
        let mut rng = case_rng("garbage_never_panics", case);
        let len = rng.gen_range(0usize..40);
        let garbage: String = (0..len)
            .map(|_| char::from(rng.gen_range(0x20u8..0x7F)))
            .collect();
        if let Err(e) = json::parse(&garbage) {
            assert!(e.position <= garbage.len(), "case {case}");
        }
    }
}

#[test]
fn submit_lines_round_trip_through_parse_request() {
    // Build a random submit request as JSON text, decode it through the
    // protocol layer and check that every override survives.
    for case in 0..CASES {
        let mut rng = case_rng("submit_lines_round_trip", case);
        let iter_limit = rng.gen_range(1usize..16);
        let samples = rng.gen_range(1usize..64);
        let seed = rng.gen_range(0u64..1 << 40);
        let threads = rng.gen_range(1usize..8);
        let verify = rng.gen_range(0u32..2) == 0;
        let objective = ["delay", "area", "balanced"][rng.gen_range(0usize..3)];
        let id = random_string(&mut rng);
        let line = Json::Obj(vec![
            ("op".into(), Json::Str("submit".into())),
            ("id".into(), Json::Str(id.clone())),
            ("format".into(), Json::Str("name".into())),
            ("circuit".into(), Json::Str("adder".into())),
            ("objective".into(), Json::Str(objective.into())),
            (
                "config".into(),
                Json::Obj(vec![
                    ("iter_limit".into(), Json::Num(iter_limit as f64)),
                    ("samples".into(), Json::Num(samples as f64)),
                    ("seed".into(), Json::Num(seed as f64)),
                    ("threads".into(), Json::Num(threads as f64)),
                    ("verify".into(), Json::Bool(verify)),
                ]),
            ),
        ])
        .encode();
        let Ok(Request::Submit(s)) = parse_request(&line) else {
            panic!("case {case}: submit line rejected: {line}");
        };
        assert_eq!(s.id, id, "case {case}");
        assert_eq!(s.overrides.iter_limit, Some(iter_limit), "case {case}");
        assert_eq!(s.overrides.samples, Some(samples), "case {case}");
        assert_eq!(s.overrides.seed, Some(seed), "case {case}");
        assert_eq!(s.overrides.threads, Some(threads), "case {case}");
        assert_eq!(s.overrides.verify, Some(verify), "case {case}");
    }
}

#[test]
fn unknown_config_keys_are_always_rejected() {
    // A typo'd key must fail loudly rather than silently aliasing the
    // default config's cache key.
    for case in 0..CASES {
        let mut rng = case_rng("unknown_config_keys_are_always_rejected", case);
        let bogus = format!("bogus_{}", rng.gen_range(0u32..1000));
        let line = format!(
            r#"{{"op":"submit","id":"x","format":"name","circuit":"adder","config":{{"{bogus}":1}}}}"#
        );
        let e = parse_request(&line).expect_err("unknown key must be rejected");
        assert!(e.message.contains(&bogus), "case {case}: {e}");
    }
}

#[test]
fn malformed_request_lines_carry_json_positions() {
    // Truncating a valid request at any char boundary either still
    // parses (prefix happened to be complete) or yields an error whose
    // position lands inside the input — the client-visible contract for
    // `{"reply":"error",...,"position":N}` lines.
    let full =
        r#"{"op":"submit","id":"j1","format":"name","circuit":"adder","config":{"iter_limit":3}}"#;
    for cut in 1..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let prefix = &full[..cut];
        match parse_request(prefix) {
            Ok(_) => {}
            Err(e) => {
                if let Some(p) = e.position {
                    assert!(p <= prefix.len(), "cut {cut}: position {p} out of range");
                }
            }
        }
    }
}
