//! Robustness regressions for the serve engine:
//!
//! * the duplicate-computation stampede — N identical concurrent
//!   submits must run exactly one pipeline, with every reply carrying
//!   byte-identical payloads (single-flight);
//! * a panic while holding the cache lock must not cascade through the
//!   worker pool via mutex poisoning — the server keeps answering;
//! * racing `shutdown()` calls must all block until the workers are
//!   actually joined (no caller returns while a worker thread runs);
//! * `queue_cap = 0` is rejected at construction instead of being
//!   silently clamped, and `stats.queue_cap` reports the configured
//!   value.

use esyn_core::{train_cost_models, TrainConfig};
use esyn_serve::json::{self, Json};
use esyn_serve::{Engine, ServeConfig};
use esyn_techmap::Library;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Duration;

fn engine_with(cfg: ServeConfig) -> Arc<Engine> {
    let lib = Library::asap7_like();
    let models = train_cost_models(&TrainConfig::tiny(), &lib);
    Engine::new(models, lib, cfg)
}

/// A fast submit line for the registry circuit `name`.
fn submit_line(id: &str, name: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"submit","id":"{id}","format":"name","circuit":"{name}","config":{{"iter_limit":3,"node_limit":2000,"samples":6{extra}}}}}"#
    )
}

fn recv_reply(rx: &Receiver<String>) -> Json {
    let line = rx
        .recv_timeout(Duration::from_secs(180))
        .expect("reply within deadline");
    json::parse(&line).expect("reply is valid JSON")
}

/// (`cached` flag, canonical bytes of the `result` object).
fn result_parts(reply: &Json) -> (bool, String) {
    assert_eq!(
        reply.get("reply").and_then(Json::as_str),
        Some("result"),
        "expected a result line, got {}",
        reply.encode()
    );
    let cached = reply
        .get("cached")
        .and_then(Json::as_bool)
        .expect("cached flag");
    let bytes = reply.get("result").expect("result object").encode();
    (cached, bytes)
}

#[test]
fn identical_concurrent_submits_run_exactly_one_computation() {
    // The stampede regression (formerly documented as accepted in
    // engine.rs): N identical jobs race through a 2-worker pool. The
    // admission check is atomic — the first job becomes the leader,
    // every other one either joins it in-flight or hits the result the
    // leader cached — so exactly one pipeline run happens no matter how
    // the queue interleaves.
    const N: usize = 6;
    let engine = engine_with(ServeConfig {
        workers: 2,
        queue_cap: 32,
        ..ServeConfig::default()
    });
    let (tx, rx) = channel();
    for i in 0..N {
        engine.handle_line(&submit_line(&format!("dup{i}"), "3_3", ""), &tx);
    }
    let mut payloads = Vec::new();
    let mut uncached = 0usize;
    for _ in 0..N {
        let (cached, bytes) = result_parts(&recv_reply(&rx));
        if !cached {
            uncached += 1;
        }
        payloads.push(bytes);
    }
    assert!(
        payloads.windows(2).all(|w| w[0] == w[1]),
        "all {N} replies must carry byte-identical payloads"
    );
    assert_eq!(
        uncached, 1,
        "exactly the leader's reply reports cached:false"
    );
    let stats = engine.stats();
    assert_eq!(
        stats.computed, 1,
        "N identical concurrent submits must run exactly one computation"
    );
    assert_eq!(stats.completed, N as u64);
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        (N - 1) as u64,
        "every non-leader was served by coalescing or the result cache"
    );
    engine.shutdown();
}

#[test]
fn busy_rejections_carry_a_bounded_retry_hint() {
    // A cap-1 single-worker engine under a flood of *distinct* jobs
    // (different configs, so nothing coalesces) must reject some of
    // them, and every rejection carries a `retry_after_ms` hint inside
    // the engine's documented clamp range.
    let engine = engine_with(ServeConfig {
        workers: 1,
        queue_cap: 1,
        cache_bytes: 0,
        sat_cache_bytes: 0,
        ..ServeConfig::default()
    });
    let (tx, rx) = channel();
    let flood = 8usize;
    for i in 0..flood {
        // Distinct sample counts give every job its own cache key.
        let extra = format!(r#","seed":{}"#, i + 1);
        engine.handle_line(&submit_line(&format!("b{i}"), "3_3", &extra), &tx);
    }
    let mut busy = 0usize;
    for _ in 0..flood {
        let reply = recv_reply(&rx);
        match reply.get("reply").and_then(Json::as_str) {
            Some("result") => {}
            Some("busy") => {
                busy += 1;
                let retry = reply
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| panic!("busy without retry hint: {}", reply.encode()));
                assert!((25..=60_000).contains(&retry), "hint out of range: {retry}");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(busy >= 1, "cap-1 queue under an 8-deep flood must reject");
    assert_eq!(engine.stats().rejected, busy as u64);
    engine.shutdown();
}

#[test]
fn poisoned_cache_lock_does_not_kill_the_server() {
    // A worker that panics while holding the cache lock poisons the
    // mutex; the old `lock().unwrap()` sites then cascaded the panic
    // through every remaining worker, leaving queued clients blocked
    // forever. The engine now recovers from poison: inject the exact
    // failure (panic mid-critical-section) and require that jobs and
    // stats still get answered.
    let engine = engine_with(ServeConfig {
        workers: 1,
        queue_cap: 16,
        ..ServeConfig::default()
    });
    engine.poison_state_for_test();
    let (tx, rx) = channel();
    engine.handle_line(&submit_line("after-poison", "3_3", ""), &tx);
    let (cached, _) = result_parts(&recv_reply(&rx));
    assert!(!cached, "fresh job computes normally after poisoning");
    // The cache keeps working too: a resubmission hits.
    engine.handle_line(&submit_line("warm", "3_3", ""), &tx);
    let (cached, _) = result_parts(&recv_reply(&rx));
    assert!(cached, "cache still serves hits after poisoning");
    let stats = engine.stats();
    assert_eq!(stats.completed, 2, "stats remain readable after poisoning");
    engine.shutdown();
}

#[test]
fn concurrent_shutdowns_both_block_until_workers_are_joined() {
    // The old shutdown `mem::take`d the handle vector, so a racing
    // second caller saw an empty vector and returned while workers were
    // still running. Now the workers mutex is held across the join:
    // whichever call returns first, the pool is already terminated.
    let engine = engine_with(ServeConfig {
        workers: 2,
        queue_cap: 16,
        ..ServeConfig::default()
    });
    let (tx, rx) = channel();
    for i in 0..3 {
        engine.handle_line(&submit_line(&format!("j{i}"), "3_3", r#","seed":9"#), &tx);
    }
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let e = Arc::clone(&engine);
            std::thread::spawn(move || {
                e.shutdown();
                assert!(
                    e.is_terminated(),
                    "shutdown returned before the workers were joined"
                );
            })
        })
        .collect();
    for t in threads {
        t.join().expect("shutdown thread panicked");
    }
    assert!(engine.is_terminated());
    // Shutdown drains: every accepted job was still answered.
    for _ in 0..3 {
        let _ = result_parts(&recv_reply(&rx));
    }
}

#[test]
fn zero_queue_cap_is_rejected_with_a_clear_error() {
    let err = ServeConfig {
        queue_cap: 0,
        ..ServeConfig::default()
    }
    .validate()
    .expect_err("queue_cap = 0 must fail validation");
    assert!(err.contains("queue_cap"), "error names the field: {err}");
    assert!(ServeConfig::default().validate().is_ok());
}

#[test]
#[should_panic(expected = "queue_cap")]
fn engine_construction_panics_on_zero_queue_cap() {
    let _ = engine_with(ServeConfig {
        queue_cap: 0,
        ..ServeConfig::default()
    });
}

#[test]
fn stats_report_the_configured_queue_cap() {
    // The queue no longer clamps silently: what you configure is what
    // `stats` reports, exactly.
    let engine = engine_with(ServeConfig {
        workers: 1,
        queue_cap: 5,
        ..ServeConfig::default()
    });
    assert_eq!(engine.stats().queue_cap, 5);
    engine.shutdown();
}
