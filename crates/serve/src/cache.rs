//! Byte-accounted LRU caching for the serve layer: one generic
//! [`ByteLru`] backing both cache tiers — the content-addressed *result*
//! tier ([`ResultCache`], pre-encoded payload JSON keyed by
//! [`esyn_core::cache_key`]) and the *saturated-e-graph* tier (shared
//! [`esyn_core::SaturatedEgraph`] artifacts keyed by
//! [`esyn_core::saturation_cache_key`]).
//!
//! Entries are charged by **measured byte size** (payload bytes plus the
//! fixed [`ENTRY_OVERHEAD`] bookkeeping charge) against a configurable
//! byte budget, replacing the old entry-count cap: a handful of huge
//! payloads can no longer grow memory without bound while staying under
//! an entry limit.
//!
//! Eviction is deterministic least-recently-used: every access stamps a
//! monotone logical tick (never wall-clock), and inserting past the
//! budget removes entries in ascending-stamp order until the total
//! charge fits. Given the same operation sequence, the surviving key
//! set, the byte total and all counters are identical on every run. An
//! entry whose charge alone exceeds the budget is not stored (counted
//! under [`ByteLru::oversize`]) — the budget is a hard ceiling, never a
//! soft target.

use esyn_core::CacheKey;
use esyn_egraph::FxHashMap;
use std::sync::Arc;

/// Fixed per-entry bookkeeping charge added to every payload: the key,
/// the recency stamp and the hash-table slot. Keeps a byte budget honest
/// for small values (a thousand 10-byte entries is not 10 kB of memory).
pub const ENTRY_OVERHEAD: usize = 64;

struct Entry<V> {
    value: V,
    charge: usize,
    last_used: u64,
}

/// A byte-budgeted LRU cache with deterministic eviction.
pub struct ByteLru<V> {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: FxHashMap<CacheKey, Entry<V>>,
    hits: u64,
    misses: u64,
    evictions: u64,
    oversize: u64,
}

impl<V: Clone> ByteLru<V> {
    /// An empty cache charging entries against `budget` bytes
    /// (`budget == 0` disables caching: every lookup misses and nothing
    /// is stored).
    pub fn new(budget: usize) -> Self {
        ByteLru {
            budget,
            bytes: 0,
            tick: 0,
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
            evictions: 0,
            oversize: 0,
        }
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key`, charged at `payload_bytes` plus
    /// [`ENTRY_OVERHEAD`], evicting least-recently-used entries until the
    /// byte total fits the budget. Re-inserting an existing key replaces
    /// the value and re-charges it without counting an eviction. If the
    /// entry's own charge exceeds the whole budget it is not stored
    /// (counted under [`ByteLru::oversize`]).
    pub fn insert(&mut self, key: CacheKey, value: V, payload_bytes: usize) {
        if self.budget == 0 {
            return;
        }
        self.tick += 1;
        let charge = payload_bytes.saturating_add(ENTRY_OVERHEAD);
        let entry = Entry {
            value,
            charge,
            last_used: self.tick,
        };
        if let Some(old) = self.map.insert(key, entry) {
            self.bytes -= old.charge;
        }
        self.bytes = self.bytes.saturating_add(charge);
        while self.bytes > self.budget {
            // Ticks are unique, so the minimum is unambiguous and the
            // victim deterministic. The just-inserted entry carries the
            // freshest stamp and is only removed once it stands alone —
            // i.e. when its charge alone exceeds the budget.
            let victim = *self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
                .expect("over-budget cache is non-empty");
            let removed = self.map.remove(&victim).expect("victim present");
            self.bytes -= removed.charge;
            if victim == key {
                self.oversize += 1;
            } else {
                self.evictions += 1;
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total charged bytes currently held (≤ [`ByteLru::budget`] always).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries removed to make room for newer ones.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Inserts dropped because the entry alone exceeded the budget.
    pub fn oversize(&self) -> u64 {
        self.oversize
    }

    /// True when `key` is currently cached (no recency/counter effects).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }
}

/// The result tier: pre-encoded payload JSON (`Arc<str>`), so a warm hit
/// replays exactly the bytes the cold computation produced — the
/// byte-identity contract `tests/cache_correctness.rs` pins.
pub type ResultCache = ByteLru<Arc<str>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn key(circuit: u64, config: u64) -> CacheKey {
        CacheKey { circuit, config }
    }

    fn val(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    /// Inserts `s` charged at its own length.
    fn put(c: &mut ResultCache, k: CacheKey, s: &str) {
        c.insert(k, val(s), s.len());
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4096);
        assert!(c.get(&key(1, 1)).is_none());
        put(&mut c, key(1, 1), "a");
        assert_eq!(c.get(&key(1, 1)).as_deref(), Some("a"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.bytes(), 1 + ENTRY_OVERHEAD);
    }

    #[test]
    fn byte_budget_is_a_hard_ceiling_with_deterministic_lru_eviction() {
        // Budget fits exactly two one-byte entries.
        let budget = 2 * (1 + ENTRY_OVERHEAD);
        let run = || {
            let mut c = ResultCache::new(budget);
            put(&mut c, key(1, 0), "1");
            put(&mut c, key(2, 0), "2");
            assert_eq!(c.bytes(), budget);
            let _ = c.get(&key(1, 0)); // refresh 1 → victim is 2
            put(&mut c, key(3, 0), "3");
            assert!(c.bytes() <= budget, "budget exceeded: {}", c.bytes());
            let mut present: Vec<u64> = (1..=3).filter(|&k| c.contains(&key(k, 0))).collect();
            present.sort_unstable();
            (present, c.evictions(), c.bytes())
        };
        let first = run();
        assert_eq!(first, (vec![1, 3], 1, budget));
        assert_eq!(run(), first, "eviction must be reproducible");
    }

    #[test]
    fn large_entries_evict_many_small_ones() {
        let budget = 10 * ENTRY_OVERHEAD;
        let mut c = ResultCache::new(budget);
        for i in 0..5 {
            put(&mut c, key(i, 0), ""); // five zero-length entries
        }
        assert_eq!(c.len(), 5);
        // An entry charging 9×OVERHEAD forces out the four oldest.
        c.insert(key(9, 0), val("big"), 8 * ENTRY_OVERHEAD);
        assert!(c.bytes() <= budget);
        assert_eq!(c.evictions(), 4);
        assert!(c.contains(&key(9, 0)) && c.contains(&key(4, 0)));
    }

    #[test]
    fn oversize_entries_are_not_stored() {
        let mut c = ResultCache::new(ENTRY_OVERHEAD + 8);
        put(&mut c, key(1, 0), "ok");
        c.insert(key(2, 0), val("huge"), 4096);
        assert!(!c.contains(&key(2, 0)), "oversize entry must be dropped");
        assert!(c.is_empty() || c.contains(&key(1, 0)));
        assert_eq!(c.oversize(), 1);
        assert!(c.bytes() <= c.budget());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut c = ResultCache::new(0);
        put(&mut c, key(1, 1), "x");
        assert!(c.get(&key(1, 1)).is_none());
        assert_eq!((c.len(), c.bytes(), c.evictions()), (0, 0, 0));
    }

    #[test]
    fn reinsert_recharges_without_eviction() {
        let budget = 2 * (8 + ENTRY_OVERHEAD);
        let mut c = ResultCache::new(budget);
        put(&mut c, key(1, 0), "aaaa");
        put(&mut c, key(2, 0), "bbbb");
        let before = c.bytes();
        put(&mut c, key(1, 0), "aaaaaaaa"); // same key, bigger charge
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.bytes(), before + 4);
        assert!(c.bytes() <= budget);
    }
}
