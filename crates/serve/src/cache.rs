//! The content-addressed result cache: optimize results keyed by
//! [`CacheKey`] (circuit structural hash × canonical config hash), with
//! hit/miss/eviction counters and a hard entry cap.
//!
//! Values are the *pre-encoded* result JSON objects (`Arc<str>`), so a
//! warm hit replays exactly the bytes the cold computation produced —
//! the byte-identity contract `tests/cache_correctness.rs` pins.
//!
//! Eviction is deterministic least-recently-used: every access stamps a
//! monotone tick, and inserting past the cap removes the entry with the
//! smallest stamp. Given the same operation sequence, the surviving key
//! set and all counters are identical on every run (ticks are logical,
//! never wall-clock).

use esyn_core::CacheKey;
use esyn_egraph::FxHashMap;
use std::sync::Arc;

struct Entry {
    value: Arc<str>,
    last_used: u64,
}

/// A bounded LRU cache of encoded optimize results.
pub struct ResultCache {
    cap: usize,
    tick: u64,
    map: FxHashMap<CacheKey, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `cap` entries (`cap == 0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap,
            tick: 0,
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<str>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting the least-recently-used
    /// entry if the cap is exceeded. Re-inserting an existing key
    /// replaces the value (identical by construction — results are
    /// deterministic functions of the key) without eviction.
    pub fn insert(&mut self, key: CacheKey, value: Arc<str>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        let entry = Entry {
            value,
            last_used: self.tick,
        };
        if self.map.insert(key, entry).is_none() && self.map.len() > self.cap {
            // Ticks are unique, so the minimum is unambiguous and the
            // victim deterministic.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache non-empty");
            self.map.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries removed by the size cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// True when `key` is currently cached (no recency/counter effects).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(circuit: u64, config: u64) -> CacheKey {
        CacheKey { circuit, config }
    }

    fn val(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key(1, 1)).is_none());
        c.insert(key(1, 1), val("a"));
        assert_eq!(c.get(&key(1, 1)).as_deref(), Some("a"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let run = || {
            let mut c = ResultCache::new(2);
            c.insert(key(1, 0), val("1"));
            c.insert(key(2, 0), val("2"));
            let _ = c.get(&key(1, 0)); // refresh 1 → victim is 2
            c.insert(key(3, 0), val("3"));
            let mut present: Vec<u64> = (1..=3).filter(|&k| c.contains(&key(k, 0))).collect();
            present.sort_unstable();
            (present, c.evictions())
        };
        let first = run();
        assert_eq!(first, (vec![1, 3], 1));
        assert_eq!(run(), first, "eviction must be reproducible");
    }

    #[test]
    fn zero_cap_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(1, 1), val("x"));
        assert!(c.get(&key(1, 1)).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = ResultCache::new(2);
        c.insert(key(1, 0), val("a"));
        c.insert(key(2, 0), val("b"));
        c.insert(key(1, 0), val("a"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
    }
}
