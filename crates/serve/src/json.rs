//! A hand-rolled JSON codec for the serve protocol (crates.io is
//! unreachable, so `serde_json` is substituted in-repo; see DESIGN.md).
//!
//! Scope: exactly RFC 8259 minus non-finite numbers. Two properties the
//! protocol relies on, pinned by the seeded-loop tests in
//! `tests/protocol_props.rs`:
//!
//! * **Deterministic encoding.** Objects preserve insertion order (they
//!   are association lists, not maps), numbers print either as exact
//!   integers or through Rust's shortest-round-trip `f64` formatting —
//!   so `encode(parse(encode(v))) == encode(v)` byte-for-byte. Cached
//!   and freshly-computed results can therefore be compared as bytes.
//! * **Position-carrying rejection.** Malformed input never panics; it
//!   returns a [`JsonError`] naming the byte offset, in the style of
//!   `esyn_egraph::RecExprParseError`.

use std::fmt;

/// A parsed JSON value. Objects are order-preserving association lists.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order. Duplicate keys are kept as-is;
    /// [`Json::get`] returns the first match.
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax error with the byte offset of the offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input (equals the input length when the
    /// input ended unexpectedly).
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialises to the canonical single-line form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `n` so that parsing the output recovers the same `f64`:
/// integers in the exact range print without a fraction, everything else
/// uses Rust's shortest-round-trip formatting. Non-finite values cannot
/// occur in the protocol (debug-asserted) and degrade to `null`.
fn write_num(n: f64, out: &mut String) {
    use fmt::Write;
    debug_assert!(n.is_finite(), "non-finite number in protocol value");
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a standalone JSON string literal (used when splicing
/// pre-encoded fragments into a response line).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(s, &mut out);
    out
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(_) => return Err(self.err("expected `,` or `]` in array")),
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                Some(_) => return Err(self.err("expected `,` or `}` in object")),
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.err("unterminated escape")),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require \uXXXX low half
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        Some(other) => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run (RFC 8259).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text.parse().map_err(|_| JsonError {
            message: format!("invalid number `{text}`"),
            position: start,
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                message: format!("number out of range `{text}`"),
                position: start,
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-1", "3.5", "1e300", "\"x\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.encode(), r#"{"b":1,"a":2}"#);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}\u{1F600}".to_owned());
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".to_owned()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse("{\"a\": }").unwrap_err();
        assert_eq!(e.position, 6);
        let e = parse("[1, 2").unwrap_err();
        assert_eq!(e.position, 5);
        let e = parse("01").unwrap_err();
        assert_eq!(e.position, 1); // trailing garbage after the leading 0
    }

    #[test]
    fn integers_print_exactly() {
        assert_eq!(Json::Num(1234567.0).encode(), "1234567");
        assert_eq!(Json::Num(-3.0).encode(), "-3");
        assert_eq!(Json::Num(0.25).encode(), "0.25");
    }
}
