//! Front-ends over the [`Engine`]: a `std::net` TCP listener (one
//! reader + one writer thread per connection, JSON-lines both ways) and
//! a stdin/stdout mode for pipelines and CI smoke runs. No async
//! runtime: blocking I/O plus the engine's own worker pool already
//! overlaps every job with every connection.

use crate::engine::Engine;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Spawns a writer thread that serialises response lines onto `out`,
/// flushing after each so results stream as they complete.
fn spawn_writer<W: Write + Send + 'static>(
    out: W,
    rx: Receiver<String>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut w = BufWriter::new(out);
        for line in &rx {
            if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
                // Client went away; drain silently so senders never block.
                for _ in rx.iter() {}
                return;
            }
        }
        let _ = w.flush();
    })
}

fn handle_connection(engine: Arc<Engine>, stream: TcpStream, self_addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx): (Sender<String>, Receiver<String>) = channel();
    let writer = spawn_writer(write_half, rx);
    let reader = BufReader::new(stream);
    let mut shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if engine.handle_line(&line, &tx) {
            shutdown = true;
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
    if shutdown {
        // Wake the accept loop so it observes the shutdown flag; the
        // throwaway connection is closed immediately.
        let _ = TcpStream::connect(self_addr);
    }
}

/// Serves `engine` on `listener` until a client sends `shutdown` (or the
/// engine is shut down externally). Each connection gets its own reader
/// and writer thread; responses stream in completion order, tagged with
/// the client's job ids. Returns after the queue has drained and every
/// connection thread has finished.
pub fn serve_tcp(engine: Arc<Engine>, listener: TcpListener) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if engine.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let e = Arc::clone(&engine);
        conns.push(std::thread::spawn(move || {
            handle_connection(e, stream, addr)
        }));
    }
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// Serves `engine` over stdin/stdout: one request per input line, one
/// response per output line (streamed in completion order). End of
/// input triggers the same graceful drain as a `shutdown` request, so
/// piping a batch of submissions through this mode always yields every
/// result.
pub fn serve_stdio(engine: Arc<Engine>) {
    let (tx, rx): (Sender<String>, Receiver<String>) = channel();
    let writer = spawn_writer(std::io::stdout(), rx);
    let stdin = std::io::stdin();
    let mut shutdown = false;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if engine.handle_line(&line, &tx) {
            shutdown = true;
            break;
        }
    }
    if !shutdown {
        // EOF: drain in-flight jobs so every submitted result is
        // delivered before the writer closes.
        engine.shutdown();
    }
    drop(tx);
    let _ = writer.join();
}
