//! A bounded MPMC job queue with *explicit* backpressure: submission
//! never blocks — a full queue is reported to the caller (who turns it
//! into a `busy` protocol reply) instead of being absorbed into hidden
//! latency. Workers block on [`Bounded::pop`]; [`Bounded::close`] +
//! [`Bounded::drain`] implement graceful shutdown: no new work is
//! admitted, queued and in-flight jobs run to completion, then the
//! drain-waiter is released and poppers see `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; carries `(queued, cap)`.
    Full(usize, usize),
    /// The queue has been closed (server shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    in_flight: usize,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    cap: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes (wakes `pop`).
    pop_cv: Condvar,
    /// Signalled when the queue may have fully drained (wakes `drain`).
    drain_cv: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` queued (not yet popped) items.
    ///
    /// # Panics
    ///
    /// Panics on `cap == 0`: a zero-capacity queue can never admit a
    /// job. Callers validate up front ([`crate::ServeConfig::validate`])
    /// so the capacity reported by `stats` is always the configured one
    /// — never a silently clamped substitute.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        Bounded {
            cap,
            state: Mutex::new(State {
                items: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            pop_cv: Condvar::new(),
            drain_cv: Condvar::new(),
        }
    }

    /// Queue capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Items currently queued (not yet claimed by a worker).
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Non-blocking push: `Err(Full)` is the backpressure signal.
    pub fn try_push(&self, item: T) -> Result<(), SubmitError> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(SubmitError::Closed);
        }
        if s.items.len() >= self.cap {
            return Err(SubmitError::Full(s.items.len(), self.cap));
        }
        s.items.push_back(item);
        drop(s);
        self.pop_cv.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (claiming it and marking it
    /// in-flight) or the queue is closed *and* empty (`None`). Every
    /// popped item must be balanced by one [`Bounded::task_done`] call.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                s.in_flight += 1;
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.pop_cv.wait(s).unwrap();
        }
    }

    /// Marks one previously popped item finished.
    pub fn task_done(&self) {
        let mut s = self.state.lock().unwrap();
        debug_assert!(s.in_flight > 0, "task_done without a matching pop");
        s.in_flight -= 1;
        let drained = s.items.is_empty() && s.in_flight == 0;
        drop(s);
        if drained {
            self.drain_cv.notify_all();
        }
    }

    /// Stops admitting new items and wakes all blocked poppers (which
    /// drain the backlog and then observe `None`).
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        let drained = s.items.is_empty() && s.in_flight == 0;
        drop(s);
        self.pop_cv.notify_all();
        if drained {
            self.drain_cv.notify_all();
        }
    }

    /// True once [`Bounded::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Blocks until the queue is closed, empty and nothing is in flight.
    pub fn drain(&self) {
        let mut s = self.state.lock().unwrap();
        while !(s.closed && s.items.is_empty() && s.in_flight == 0) {
            s = self.drain_cv.wait(s).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_is_explicit() {
        let q: Bounded<u32> = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(SubmitError::Full(2, 2)));
        assert_eq!(q.pop(), Some(1));
        q.task_done();
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn closed_queue_rejects_and_unblocks() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(q.try_push(1), Err(SubmitError::Closed));
    }

    #[test]
    fn drain_waits_for_in_flight_work() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        q.try_push(7).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let item = q.pop().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(30));
                q.task_done();
                item
            })
        };
        q.close();
        q.drain(); // must not return before task_done
        assert_eq!(worker.join().unwrap(), 7);
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn workers_drain_backlog_after_close() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(8));
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(x) = q.pop() {
            got.push(x);
            q.task_done();
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        q.drain();
    }
}
