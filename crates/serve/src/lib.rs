//! **esyn-serve** — the long-running batch synthesis service behind
//! `esyn serve` (ROADMAP item 2: amortise e-graph construction and model
//! loading across queries instead of paying a cold start per request).
//!
//! The service speaks a JSON-lines protocol ([`protocol`]) over plain
//! `std::net` TCP or stdin/stdout ([`server`]) — the JSON codec is
//! hand-rolled in-repo ([`json`]) because crates.io is unreachable (see
//! DESIGN.md). Jobs flow through a bounded queue with explicit
//! backpressure ([`queue`]) into a worker pool behind a two-tier,
//! byte-accounted, single-flight cache path ([`cache`], [`engine`]):
//! finished results are content-addressed by [`esyn_core::cache_key`]
//! (circuit structural hash × canonical config), identical concurrent
//! submits coalesce onto one computation, and saturated e-graphs are
//! shared across jobs that differ only downstream of saturation
//! ([`esyn_core::saturation_cache_key`]). Both tiers charge entries by
//! measured bytes against configurable budgets with deterministic LRU
//! eviction.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use esyn_serve::{Engine, ServeConfig};
//! use esyn_core::{train_cost_models, TrainConfig};
//! use esyn_techmap::Library;
//! use std::sync::mpsc::channel;
//!
//! let lib = Library::asap7_like();
//! let models = train_cost_models(&TrainConfig::tiny(), &lib);
//! let engine = Engine::new(models, lib, ServeConfig::default());
//! let (tx, rx) = channel();
//! engine.handle_line(r#"{"op":"ping"}"#, &tx);
//! assert_eq!(rx.recv().unwrap(), "{\"reply\":\"pong\",\"ok\":true}");
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod engine;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{ByteLru, ResultCache, ENTRY_OVERHEAD};
pub use engine::{Engine, ServeConfig};
pub use json::{Json, JsonError};
pub use protocol::{
    parse_request, CircuitFormat, JobOverrides, ObjectiveSel, ProtocolError, Request,
    ResultPayload, StatsSnapshot, SubmitRequest,
};
pub use queue::{Bounded, SubmitError};
pub use server::{serve_stdio, serve_tcp};
