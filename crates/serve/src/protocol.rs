//! The `esyn serve` JSON-lines protocol: one request per line in, one
//! response per line out, in either direction of a TCP stream or a
//! stdin/stdout pipe.
//!
//! # Requests
//!
//! ```text
//! {"op":"submit","id":"j1","format":"eqn|blif|name","circuit":"...",
//!  "objective":"delay|area|balanced|<esyn-objective name>","config":{...}}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! `objective` accepts the three builtin model-driven objectives
//! (`delay`, `area`, `balanced` — learned GBDT scoring) or any
//! registered `esyn-objective` name (`unit`, `inv-weighted`, `techmap`,
//! `activity`, … — deterministic feature scoring). Builtin names win
//! on collision: `"area"` is the builtin model-driven objective, not
//! the registry's gate-count objective (whose close proxies `unit` and
//! `techmap` remain reachable). Unknown names are rejected with the
//! full list — never silently defaulted, since the objective
//! participates in the cache key.
//!
//! The optional `config` object overrides the server's per-job defaults
//! field by field: `iter_limit`, `node_limit`, `time_limit_ms`,
//! `samples`, `seed`, `extractor` (an `esyn_extract::ENGINE_NAMES`
//! entry), `threads` (a positive worker count for the job's internal
//! parallel stages), `verify` and `use_choices`. Unknown keys are
//! rejected — a typo must not silently fall back to defaults *and*
//! silently alias the cache key of the default config.
//!
//! # Responses
//!
//! ```text
//! {"reply":"result","id":"j1","cached":false,"result":{...}}
//! {"reply":"busy","id":"j1","ok":false,"error":"..."}        ← backpressure
//! {"reply":"error","id":"j1","ok":false,"error":"...","position":17}
//! {"reply":"stats","ok":true,...}
//! {"reply":"pong","ok":true}
//! {"reply":"shutdown","ok":true,"completed":N}
//! ```
//!
//! The `result` object is the *content-addressed payload*: it is
//! byte-identical between a cold computation and a warm cache hit, and
//! byte-identical to encoding a one-shot [`esyn_core::esyn_optimize`]
//! run of the same circuit and configuration (`tests/serve_e2e.rs` pins
//! this). The `cached` flag lives outside it on purpose; it is `false`
//! only on the reply of the job that actually ran the pipeline —
//! result-cache hits *and* single-flight waiters that joined an
//! in-flight identical computation report `cached:true`, since neither
//! paid for a computation of its own.
//!
//! The `stats` reply reports both cache tiers: `cache_*` fields cover
//! the result tier and `sat_*` fields the saturated-e-graph tier, each
//! with byte accounting (`*_bytes` charged vs `*_bytes_cap` budget).
//! `computed` counts jobs that ran the full pipeline; `coalesced`
//! counts jobs answered by joining an in-flight leader.

use crate::json::{self, Json};
use esyn_core::{CacheKey, EsynConfig, EsynResult, Objective, Parallelism, SaturationLimits};
use std::fmt;
use std::time::Duration;

/// A decoded request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a circuit for optimisation.
    Submit(SubmitRequest),
    /// Report queue/cache/counter statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight jobs, then stop the server.
    Shutdown,
}

/// The payload of a `submit` request.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen job id, echoed on every response for this job.
    pub id: String,
    /// How to interpret [`circuit`](Self::circuit).
    pub format: CircuitFormat,
    /// Circuit text (`eqn`/`blif`) or registry name (`name`).
    pub circuit: String,
    /// Optimisation objective.
    pub objective: ObjectiveSel,
    /// Per-job config overrides (applied to the server's defaults).
    pub overrides: JobOverrides,
}

/// The objective a submit request runs under: a builtin model-driven
/// [`Objective`] or a named `esyn-objective` registry entry (already
/// canonicalized by the parser).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectiveSel {
    /// A builtin objective scored by the learned cost models.
    Builtin(Objective),
    /// A registered `esyn-objective`, scored by its feature function.
    Named(&'static str),
}

/// Accepted circuit encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitFormat {
    /// ABC equation format.
    Eqn,
    /// Combinational BLIF.
    Blif,
    /// A named `esyn-circuits` registry benchmark.
    Name,
}

/// Field-by-field overrides of the server's default [`EsynConfig`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobOverrides {
    /// `iter_limit` — saturation iteration cap.
    pub iter_limit: Option<usize>,
    /// `node_limit` — saturation e-node cap.
    pub node_limit: Option<usize>,
    /// `time_limit_ms` — saturation wall-clock safety net.
    pub time_limit_ms: Option<u64>,
    /// `samples` — stochastic pool samples.
    pub samples: Option<usize>,
    /// `seed` — pool RNG seed.
    pub seed: Option<u64>,
    /// `extractor` — gym engine for the pool's DAG-cost extreme.
    pub extractor: Option<&'static str>,
    /// `threads` — worker count for the job's internal parallel stages.
    pub threads: Option<usize>,
    /// `verify` — CEC-check the winning candidate.
    pub verify: Option<bool>,
    /// `use_choices` — map through the choice-aware backend.
    pub use_choices: Option<bool>,
}

impl JobOverrides {
    /// The job's effective configuration: `base` with every `Some`
    /// override applied.
    pub fn apply(&self, base: &EsynConfig) -> EsynConfig {
        let mut cfg = base.clone();
        let limits = SaturationLimits {
            iter_limit: self.iter_limit.unwrap_or(cfg.limits.iter_limit),
            node_limit: self.node_limit.unwrap_or(cfg.limits.node_limit),
            time_limit: self
                .time_limit_ms
                .map(Duration::from_millis)
                .unwrap_or(cfg.limits.time_limit),
        };
        cfg.limits = limits;
        if let Some(n) = self.samples {
            cfg.pool.num_samples = n;
        }
        if let Some(s) = self.seed {
            cfg.pool.seed = s;
        }
        if let Some(engine) = self.extractor {
            cfg.pool.include_dag_extreme = true;
            cfg.pool.dag_engine = engine;
        }
        if let Some(t) = self.threads {
            cfg.parallelism = Parallelism::Fixed(t);
            cfg.pool.parallelism = Parallelism::Fixed(t);
        }
        if let Some(v) = self.verify {
            cfg.verify = v;
        }
        if let Some(c) = self.use_choices {
            cfg.use_choices = c;
        }
        cfg
    }
}

/// A protocol decode error; `position` is the byte offset for JSON
/// syntax errors (semantic errors — unknown op, missing field — have
/// none), mirroring `esyn_egraph::RecExprParseError`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending token, when known.
    pub position: Option<usize>,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "protocol error at byte {p}: {}", self.message),
            None => write!(f, "protocol error: {}", self.message),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
            position: None,
        }
    }
}

impl From<json::JsonError> for ProtocolError {
    fn from(e: json::JsonError) -> Self {
        ProtocolError {
            message: e.message,
            position: Some(e.position),
        }
    }
}

fn str_field<'j>(obj: &'j Json, key: &str) -> Result<&'j str, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(format!("missing or non-string field `{key}`")))
}

/// Decodes one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = json::parse(line)?;
    if !matches!(v, Json::Obj(_)) {
        return Err(ProtocolError::new("request must be a JSON object"));
    }
    let op = str_field(&v, "op")?;
    match op {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let id = str_field(&v, "id")?.to_owned();
            let format = match str_field(&v, "format")? {
                "eqn" => CircuitFormat::Eqn,
                "blif" => CircuitFormat::Blif,
                "name" => CircuitFormat::Name,
                other => {
                    return Err(ProtocolError::new(format!(
                        "unknown format `{other}` (expected eqn, blif or name)"
                    )))
                }
            };
            let circuit = str_field(&v, "circuit")?.to_owned();
            let objective = match v.get("objective").map(|o| o.as_str()) {
                None => ObjectiveSel::Builtin(Objective::Delay),
                Some(Some("delay")) => ObjectiveSel::Builtin(Objective::Delay),
                Some(Some("area")) => ObjectiveSel::Builtin(Objective::Area),
                Some(Some("balanced")) => ObjectiveSel::Builtin(Objective::Balanced),
                Some(Some(other)) => match esyn_objective::canonical_objective_name(other) {
                    Some(name) => ObjectiveSel::Named(name),
                    None => {
                        return Err(ProtocolError::new(format!(
                            "unknown objective `{other}` (builtin: delay, area, balanced; \
                             registry: {})",
                            esyn_objective::OBJECTIVE_NAMES.join(", ")
                        )))
                    }
                },
                Some(None) => return Err(ProtocolError::new("field `objective` must be a string")),
            };
            let overrides = match v.get("config") {
                None | Some(Json::Null) => JobOverrides::default(),
                Some(cfg) => parse_overrides(cfg)?,
            };
            Ok(Request::Submit(SubmitRequest {
                id,
                format,
                circuit,
                objective,
                overrides,
            }))
        }
        other => Err(ProtocolError::new(format!("unknown op `{other}`"))),
    }
}

fn usize_field(v: &Json, key: &str) -> Result<usize, ProtocolError> {
    v.as_u64().map(|n| n as usize).ok_or_else(|| {
        ProtocolError::new(format!(
            "config field `{key}` must be a non-negative integer"
        ))
    })
}

fn parse_overrides(cfg: &Json) -> Result<JobOverrides, ProtocolError> {
    let Json::Obj(fields) = cfg else {
        return Err(ProtocolError::new("`config` must be an object"));
    };
    let mut o = JobOverrides::default();
    for (key, value) in fields {
        match key.as_str() {
            "iter_limit" => o.iter_limit = Some(usize_field(value, key)?),
            "node_limit" => o.node_limit = Some(usize_field(value, key)?),
            "time_limit_ms" => o.time_limit_ms = Some(usize_field(value, key)? as u64),
            "samples" => o.samples = Some(usize_field(value, key)?),
            "seed" => o.seed = Some(usize_field(value, key)? as u64),
            "extractor" => {
                let name = value.as_str().ok_or_else(|| {
                    ProtocolError::new("config field `extractor` must be a string")
                })?;
                let canonical = esyn_extract::canonical_engine_name(name).ok_or_else(|| {
                    ProtocolError::new(format!(
                        "unknown extractor `{name}` (available: {})",
                        esyn_extract::ENGINE_NAMES.join(", ")
                    ))
                })?;
                o.extractor = Some(canonical);
            }
            "threads" => {
                let t = usize_field(value, key)?;
                if t == 0 {
                    return Err(ProtocolError::new(
                        "config field `threads` must be positive",
                    ));
                }
                o.threads = Some(t);
            }
            "verify" => {
                o.verify =
                    Some(value.as_bool().ok_or_else(|| {
                        ProtocolError::new("config field `verify` must be a boolean")
                    })?)
            }
            "use_choices" => {
                o.use_choices = Some(value.as_bool().ok_or_else(|| {
                    ProtocolError::new("config field `use_choices` must be a boolean")
                })?)
            }
            other => {
                return Err(ProtocolError::new(format!(
                    "unknown config field `{other}`"
                )))
            }
        }
    }
    Ok(o)
}

/// The content-addressed result payload — everything a one-shot
/// `esyn optimize` reports, minus wall-clock.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultPayload {
    /// The optimised network, in equation format.
    pub eqn: String,
    /// Post-mapping area (µm²).
    pub area: f64,
    /// Post-mapping delay (ps).
    pub delay: f64,
    /// Mapped gate count.
    pub gates: usize,
    /// Mapped logic depth.
    pub levels: usize,
    /// Candidate-pool size.
    pub pool_size: usize,
    /// E-graph size at extraction time.
    pub egraph_nodes: usize,
    /// E-class count at extraction time.
    pub egraph_classes: usize,
    /// Why saturation stopped (debug rendering of `StopReason`).
    pub stop: String,
    /// CEC verdict (`None` when verification was off).
    pub verified: Option<bool>,
    /// Model score of the winning candidate.
    pub predicted_cost: f64,
    /// The job's cache key.
    pub key: CacheKey,
}

impl ResultPayload {
    /// Builds the payload from a finished optimize run.
    pub fn from_result(r: &EsynResult, key: CacheKey) -> Self {
        ResultPayload {
            eqn: r.network.to_eqn(),
            area: r.qor.area,
            delay: r.qor.delay,
            gates: r.qor.gates,
            levels: r.qor.levels,
            pool_size: r.pool_size,
            egraph_nodes: r.egraph_nodes,
            egraph_classes: r.egraph_classes,
            stop: format!("{:?}", r.stop_reason),
            verified: r.verified,
            predicted_cost: r.predicted_cost,
            key,
        }
    }

    /// Encodes the payload as its canonical JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("eqn".into(), Json::Str(self.eqn.clone())),
            ("area".into(), Json::Num(self.area)),
            ("delay".into(), Json::Num(self.delay)),
            ("gates".into(), Json::Num(self.gates as f64)),
            ("levels".into(), Json::Num(self.levels as f64)),
            ("pool".into(), Json::Num(self.pool_size as f64)),
            ("egraph_nodes".into(), Json::Num(self.egraph_nodes as f64)),
            (
                "egraph_classes".into(),
                Json::Num(self.egraph_classes as f64),
            ),
            ("stop".into(), Json::Str(self.stop.clone())),
            (
                "verified".into(),
                match self.verified {
                    Some(b) => Json::Bool(b),
                    None => Json::Null,
                },
            ),
            ("predicted_cost".into(), Json::Num(self.predicted_cost)),
            (
                "circuit_hash".into(),
                Json::Str(format!("{:016x}", self.key.circuit)),
            ),
            (
                "config_hash".into(),
                Json::Str(format!("{:016x}", self.key.config)),
            ),
        ])
    }
}

/// A `result` line. `result_json` is the pre-encoded payload object
/// (cached results splice their stored bytes verbatim, so a warm hit is
/// byte-identical to the cold response that filled it).
pub fn result_line(id: &str, cached: bool, result_json: &str) -> String {
    format!(
        "{{\"reply\":\"result\",\"id\":{},\"cached\":{cached},\"result\":{result_json}}}",
        json::quote(id),
    )
}

/// A backpressure rejection: the bounded queue is full.
/// `retry_after_ms` is the server's estimate of when capacity will free
/// up — queue depth times the recent mean job wall time, scaled by the
/// worker count (see `Engine::retry_after_ms`). A hint, not a promise:
/// clients that resubmit sooner just risk another `busy`.
pub fn busy_line(id: &str, queued: usize, cap: usize, retry_after_ms: u64) -> String {
    format!(
        "{{\"reply\":\"busy\",\"id\":{},\"ok\":false,\"retry_after_ms\":{retry_after_ms},\"error\":{}}}",
        json::quote(id),
        json::quote(&format!("queue full ({queued}/{cap} jobs queued)")),
    )
}

/// An error response; `id` is echoed when the request carried one.
pub fn error_line(id: Option<&str>, message: &str, position: Option<usize>) -> String {
    let mut fields = vec![("reply".to_owned(), Json::Str("error".into()))];
    if let Some(id) = id {
        fields.push(("id".into(), Json::Str(id.to_owned())));
    }
    fields.push(("ok".into(), Json::Bool(false)));
    fields.push(("error".into(), Json::Str(message.to_owned())));
    if let Some(p) = position {
        fields.push(("position".into(), Json::Num(p as f64)));
    }
    Json::Obj(fields).encode()
}

/// The `pong` liveness reply.
pub fn pong_line() -> String {
    "{\"reply\":\"pong\",\"ok\":true}".to_owned()
}

/// Server counters for the `stats` reply and the load-test bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs completed (including cache hits).
    pub completed: u64,
    /// Jobs rejected with a `busy` reply.
    pub rejected: u64,
    /// Jobs that failed with an error.
    pub errors: u64,
    /// Jobs that actually ran the optimize pipeline (single-flight
    /// leaders and uncoalesced jobs; excludes cache hits and waiters).
    pub computed: u64,
    /// Jobs answered by joining an in-flight identical computation.
    pub coalesced: u64,
    /// Result-tier cache hits.
    pub cache_hits: u64,
    /// Result-tier cache misses.
    pub cache_misses: u64,
    /// Result-tier evictions.
    pub cache_evictions: u64,
    /// Result-tier entries currently cached.
    pub cache_len: usize,
    /// Result-tier bytes currently charged.
    pub cache_bytes: usize,
    /// Result-tier byte budget.
    pub cache_bytes_cap: usize,
    /// Saturated-e-graph-tier hits.
    pub sat_hits: u64,
    /// Saturated-e-graph-tier misses.
    pub sat_misses: u64,
    /// Saturated-e-graph-tier evictions.
    pub sat_evictions: u64,
    /// Saturated e-graphs currently cached.
    pub sat_len: usize,
    /// Saturated-e-graph-tier bytes currently charged.
    pub sat_bytes: usize,
    /// Saturated-e-graph-tier byte budget.
    pub sat_bytes_cap: usize,
    /// Jobs currently queued.
    pub queued: usize,
    /// Queue capacity (always the configured value — zero is rejected
    /// at validation, never silently clamped).
    pub queue_cap: usize,
    /// Worker-thread count.
    pub workers: usize,
}

/// The `stats` reply.
pub fn stats_line(s: &StatsSnapshot) -> String {
    Json::Obj(vec![
        ("reply".into(), Json::Str("stats".into())),
        ("ok".into(), Json::Bool(true)),
        ("submitted".into(), Json::Num(s.submitted as f64)),
        ("completed".into(), Json::Num(s.completed as f64)),
        ("rejected".into(), Json::Num(s.rejected as f64)),
        ("errors".into(), Json::Num(s.errors as f64)),
        ("computed".into(), Json::Num(s.computed as f64)),
        ("coalesced".into(), Json::Num(s.coalesced as f64)),
        ("cache_hits".into(), Json::Num(s.cache_hits as f64)),
        ("cache_misses".into(), Json::Num(s.cache_misses as f64)),
        (
            "cache_evictions".into(),
            Json::Num(s.cache_evictions as f64),
        ),
        ("cache_len".into(), Json::Num(s.cache_len as f64)),
        ("cache_bytes".into(), Json::Num(s.cache_bytes as f64)),
        (
            "cache_bytes_cap".into(),
            Json::Num(s.cache_bytes_cap as f64),
        ),
        ("sat_hits".into(), Json::Num(s.sat_hits as f64)),
        ("sat_misses".into(), Json::Num(s.sat_misses as f64)),
        ("sat_evictions".into(), Json::Num(s.sat_evictions as f64)),
        ("sat_len".into(), Json::Num(s.sat_len as f64)),
        ("sat_bytes".into(), Json::Num(s.sat_bytes as f64)),
        ("sat_bytes_cap".into(), Json::Num(s.sat_bytes_cap as f64)),
        ("queued".into(), Json::Num(s.queued as f64)),
        ("queue_cap".into(), Json::Num(s.queue_cap as f64)),
        ("workers".into(), Json::Num(s.workers as f64)),
    ])
    .encode()
}

/// The `shutdown` acknowledgement, sent after the queue has drained.
pub fn shutdown_line(completed: u64) -> String {
    format!("{{\"reply\":\"shutdown\",\"ok\":true,\"completed\":{completed}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_submit_with_overrides() {
        let line = r#"{"op":"submit","id":"j1","format":"name","circuit":"adder",
            "objective":"area","config":{"iter_limit":4,"samples":8,"seed":7,
            "extractor":"greedy-dag","threads":2,"verify":false}}"#;
        let Request::Submit(s) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(s.id, "j1");
        assert_eq!(s.format, CircuitFormat::Name);
        assert_eq!(s.objective, ObjectiveSel::Builtin(Objective::Area));
        assert_eq!(s.overrides.iter_limit, Some(4));
        assert_eq!(s.overrides.threads, Some(2));
        assert_eq!(s.overrides.extractor, Some("greedy-dag"));
        let cfg = s.overrides.apply(&EsynConfig::default());
        assert_eq!(cfg.limits.iter_limit, 4);
        assert_eq!(cfg.pool.num_samples, 8);
        assert!(cfg.pool.include_dag_extreme);
        assert_eq!(cfg.parallelism, Parallelism::Fixed(2));
        assert!(!cfg.verify);
    }

    #[test]
    fn named_objectives_parse_and_builtins_shadow_the_registry() {
        let submit = |obj: &str| {
            let line = format!(
                r#"{{"op":"submit","id":"j","format":"name","circuit":"adder","objective":"{obj}"}}"#
            );
            match parse_request(&line) {
                Ok(Request::Submit(s)) => Ok(s.objective),
                Ok(_) => panic!("expected submit"),
                Err(e) => Err(e),
            }
        };
        assert_eq!(submit("techmap").unwrap(), ObjectiveSel::Named("techmap"));
        // Underscore spellings canonicalize, like `extractor` names.
        assert_eq!(
            submit("inv_weighted").unwrap(),
            ObjectiveSel::Named("inv-weighted")
        );
        // The builtin wins the `area` collision.
        assert_eq!(
            submit("area").unwrap(),
            ObjectiveSel::Builtin(Objective::Area)
        );
    }

    #[test]
    fn unknown_objectives_are_rejected_with_the_full_list() {
        let line = r#"{"op":"submit","id":"j","format":"name","circuit":"adder",
            "objective":"powerr"}"#;
        let e = parse_request(line).unwrap_err();
        assert!(e.message.contains("powerr"), "{e}");
        assert!(e.message.contains("balanced"), "lists builtins: {e}");
        assert!(e.message.contains("techmap"), "lists registry names: {e}");
        // Non-string objectives are a type error, not a default.
        let e = parse_request(
            r#"{"op":"submit","id":"j","format":"name","circuit":"adder","objective":7}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("must be a string"), "{e}");
    }

    #[test]
    fn rejects_unknown_config_keys_and_ops() {
        let e = parse_request(
            r#"{"op":"submit","id":"x","format":"eqn","circuit":"","config":{"iter_limt":3}}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("iter_limt"), "{e}");
        let e = parse_request(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn json_syntax_errors_carry_positions() {
        let e = parse_request("{\"op\": ").unwrap_err();
        assert_eq!(e.position, Some(7));
    }

    #[test]
    fn control_lines_are_stable() {
        assert_eq!(pong_line(), "{\"reply\":\"pong\",\"ok\":true}");
        assert!(busy_line("a\"b", 3, 3, 250).contains("\\\""));
        let busy = json::parse(&busy_line("j", 3, 3, 750)).unwrap();
        assert_eq!(busy.get("reply").and_then(Json::as_str), Some("busy"));
        assert_eq!(busy.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(busy.get("retry_after_ms").and_then(Json::as_u64), Some(750));
        let line = result_line("j", true, "{\"x\":1}");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("reply").and_then(Json::as_str), Some("result"));
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
        assert!(v.get("result").is_some());
    }
}
