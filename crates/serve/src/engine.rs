//! The serve engine: a worker pool over the bounded job queue, the
//! two-tier byte-accounted cache, the single-flight table, and the
//! request dispatcher shared by the TCP and stdio front-ends.
//!
//! One [`Engine`] owns everything long-lived: the technology library and
//! trained cost models (loaded once, amortised over every request), the
//! [`Bounded`] queue, both cache tiers and the worker threads. Front
//! ends feed it request lines plus a per-connection reply channel; jobs
//! are answered asynchronously on that channel as workers finish them,
//! control requests synchronously.
//!
//! # The cache path
//!
//! Three structures sit under one lock (the engine's cache state) and
//! are consulted in order:
//!
//! 1. **Result tier** — pre-encoded payload JSON keyed by the full
//!    [`cache_key`] (circuit × objective × complete config). A hit
//!    replays the stored bytes verbatim.
//! 2. **Single-flight table** — jobs whose key is already being
//!    computed park as waiters instead of recomputing; when the leader
//!    finishes, the one encoded result fans out to every waiter
//!    byte-identically (`cached:true` on the waiters, since they did
//!    not pay for the computation).
//! 3. **Saturated-e-graph tier** — the expensive saturation product
//!    keyed by [`saturation_cache_key`] (circuit ×
//!    saturation-relevant config only), shared across jobs that differ
//!    only downstream (objective, extractor, samples, seed, verify).
//!    A warm hit skips straight to extraction; results stay
//!    byte-identical to cold runs because cold runs funnel through the
//!    same [`esyn_saturate`]-then-resume split.
//!
//! Both tiers charge entries by measured byte size against configurable
//! budgets with deterministic LRU eviction (see [`crate::cache`]).
//!
//! The saturated tier deliberately has *no* single-flight of its own:
//! two racing leaders with different downstream configs over the same
//! circuit may both saturate, and the second insert overwrites the
//! first with identical content. Coalescing there would serialise
//! unrelated jobs for a rare, harmless duplication.
//!
//! # Determinism
//!
//! A job's result is a pure function of `(circuit, objective, config)` —
//! the same contract as one-shot [`esyn_core::esyn_optimize`] — regardless of queue
//! interleaving, worker count or which tier (if any) served it
//! (`tests/parallel_determinism.rs` sweeps this). Wall-clock never
//! appears in a `result` payload, and eviction order never depends on
//! it either.

use crate::cache::{ByteLru, ResultCache};
use crate::protocol::{
    self, CircuitFormat, ObjectiveSel, Request, ResultPayload, StatsSnapshot, SubmitRequest,
};
use crate::queue::{Bounded, SubmitError};
use esyn_core::{
    cache_key, cache_key_tagged, esyn_optimize_saturated, esyn_optimize_with_cost_saturated,
    esyn_saturate, saturation_cache_key, CacheKey, CostModels, EsynConfig, Parallelism,
    SaturatedEgraph, SaturationLimits,
};
use esyn_egraph::FxHashMap;
use esyn_eqn::{parse_blif, parse_eqn, Network};
use esyn_objective::{objective_by_name, ScoreOf};
use esyn_techmap::Library;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Server-side configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs (each job itself runs its parallel
    /// stages per its own config; the default job config is serial so
    /// job-level and stage-level parallelism do not multiply).
    pub workers: usize,
    /// Bounded-queue capacity; a full queue answers `busy`. Must be
    /// positive — [`ServeConfig::validate`] rejects 0 instead of
    /// silently clamping it.
    pub queue_cap: usize,
    /// Result-tier byte budget (0 disables result caching).
    pub cache_bytes: usize,
    /// Saturated-e-graph-tier byte budget (0 disables the tier).
    pub sat_cache_bytes: usize,
    /// Per-job default configuration; `submit` requests override fields.
    pub base: EsynConfig,
    /// Element-wise ceiling on per-job saturation budgets: a job may
    /// lower its limits but never raise them past this, so one request
    /// cannot capture the server. Stops at these limits keep the
    /// Runner's deterministic semantics (iteration/node caps bind before
    /// the wall-clock safety net in every test configuration).
    pub limit_ceiling: SaturationLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let mut base = EsynConfig::small();
        base.parallelism = Parallelism::Serial;
        base.pool.parallelism = Parallelism::Serial;
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_bytes: 32 << 20,
            sat_cache_bytes: 64 << 20,
            base,
            limit_ceiling: SaturationLimits {
                iter_limit: 64,
                node_limit: 500_000,
                time_limit: std::time::Duration::from_secs(120),
            },
        }
    }
}

impl ServeConfig {
    /// Checks the configuration for values the engine cannot honour.
    /// `queue_cap = 0` is rejected here with a clear message rather than
    /// silently clamped to 1 deep inside the queue — config and
    /// observed behaviour must agree.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_cap == 0 {
            return Err(
                "queue_cap must be positive: a zero-capacity queue would reject every job \
                 (use a small cap for tight backpressure instead)"
                    .to_owned(),
            );
        }
        Ok(())
    }
}

struct Job {
    id: String,
    net: Network,
    objective: ObjectiveSel,
    cfg: EsynConfig,
    reply: Sender<String>,
}

/// A job parked on the single-flight table, waiting for the leader's
/// encoded result.
struct Waiter {
    id: String,
    reply: Sender<String>,
}

/// Everything the cache path mutates, under one lock so the
/// hit / in-flight / leader decision is atomic.
struct CacheState {
    results: ResultCache,
    sat: ByteLru<Arc<SaturatedEgraph>>,
    inflight: FxHashMap<CacheKey, Vec<Waiter>>,
}

/// Locks `m`, recovering from poison: a worker that panicked while
/// holding the lock left the data in a consistent state (every critical
/// section here completes its updates or makes none), so later lockers
/// proceed instead of cascading the panic and killing the whole pool.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The long-running batch synthesis service.
pub struct Engine {
    lib: Library,
    models: CostModels,
    cfg: ServeConfig,
    queue: Bounded<Job>,
    state: Mutex<CacheState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    workers_joined: AtomicBool,
    shutting_down: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    computed: AtomicU64,
    coalesced: AtomicU64,
    /// Wall-clock milliseconds spent by single-flight leaders actually
    /// computing (cache hits and coalesced waiters excluded — they do
    /// not occupy a worker for any meaningful time). Together with
    /// `job_ms_count` this gives the running mean job time behind the
    /// `retry_after_ms` backpressure hint. Wall-clock feeds *only* that
    /// hint, never a `result` payload — determinism is untouched.
    job_ms_sum: AtomicU64,
    job_ms_count: AtomicU64,
}

/// Mean job time assumed for the `retry_after_ms` hint before any job
/// has completed (a cold server has nothing to measure).
const DEFAULT_JOB_MS: u64 = 250;
/// Bounds on the `retry_after_ms` hint: never so small that clients
/// hammer a loaded server, never longer than a minute.
const RETRY_MS_RANGE: (u64, u64) = (25, 60_000);

impl Engine {
    /// Builds the engine and starts its worker pool.
    ///
    /// # Panics
    ///
    /// Panics when [`ServeConfig::validate`] rejects `cfg` (the CLI
    /// validates before construction, so its users see an error message
    /// instead).
    pub fn new(models: CostModels, lib: Library, cfg: ServeConfig) -> Arc<Self> {
        if let Err(msg) = cfg.validate() {
            panic!("invalid ServeConfig: {msg}");
        }
        let workers = cfg.workers.max(1);
        let engine = Arc::new(Engine {
            lib,
            models,
            queue: Bounded::new(cfg.queue_cap),
            state: Mutex::new(CacheState {
                results: ResultCache::new(cfg.cache_bytes),
                sat: ByteLru::new(cfg.sat_cache_bytes),
                inflight: FxHashMap::default(),
            }),
            cfg,
            workers: Mutex::new(Vec::new()),
            workers_joined: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            job_ms_sum: AtomicU64::new(0),
            job_ms_count: AtomicU64::new(0),
        });
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || e.worker_loop())
            })
            .collect();
        *engine.workers.lock().unwrap() = handles;
        engine
    }

    /// The server's defaults (what `submit` overrides apply to).
    pub fn base_config(&self) -> &EsynConfig {
        &self.cfg.base
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// True once the worker pool has fully terminated (every worker
    /// joined) — guaranteed by the time any [`Engine::shutdown`] call
    /// returns, including concurrent ones.
    pub fn is_terminated(&self) -> bool {
        self.workers_joined.load(Ordering::SeqCst)
    }

    /// Handles one request line, sending every response through `reply`.
    /// Returns `true` when the line was a shutdown request — by then the
    /// queue has fully drained, all in-flight results have been
    /// delivered, and the acknowledgement has been sent; the front-end
    /// should stop its accept/read loop.
    pub fn handle_line(self: &Arc<Self>, line: &str, reply: &Sender<String>) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        match protocol::parse_request(line) {
            Err(e) => {
                // Best effort: recover the job id for the error echo.
                let id = crate::json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(|j| j.as_str().map(str::to_owned)));
                let _ = reply.send(protocol::error_line(id.as_deref(), &e.message, e.position));
                false
            }
            Ok(Request::Ping) => {
                let _ = reply.send(protocol::pong_line());
                false
            }
            Ok(Request::Stats) => {
                let _ = reply.send(protocol::stats_line(&self.stats()));
                false
            }
            Ok(Request::Shutdown) => {
                self.shutdown();
                let _ = reply.send(protocol::shutdown_line(
                    self.completed.load(Ordering::SeqCst),
                ));
                true
            }
            Ok(Request::Submit(submit)) => {
                self.submit(submit, reply);
                false
            }
        }
    }

    fn submit(&self, req: SubmitRequest, reply: &Sender<String>) {
        let SubmitRequest {
            id,
            format,
            circuit,
            objective,
            overrides,
        } = req;
        let net = match load_circuit(format, &circuit) {
            Ok(net) => net,
            Err(msg) => {
                self.errors.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(protocol::error_line(Some(&id), &msg, None));
                return;
            }
        };
        if net.num_outputs() == 0 {
            self.errors.fetch_add(1, Ordering::SeqCst);
            let _ = reply.send(protocol::error_line(
                Some(&id),
                "circuit has no outputs",
                None,
            ));
            return;
        }
        let mut cfg = overrides.apply(&self.cfg.base);
        let ceil = self.cfg.limit_ceiling;
        cfg.limits.iter_limit = cfg.limits.iter_limit.min(ceil.iter_limit);
        cfg.limits.node_limit = cfg.limits.node_limit.min(ceil.node_limit);
        cfg.limits.time_limit = cfg.limits.time_limit.min(ceil.time_limit);
        let job_id = id.clone();
        let job = Job {
            id,
            net,
            objective,
            cfg,
            reply: reply.clone(),
        };
        // Count the submission before the push so the increment is
        // causally ordered before the job's completion — a stats read
        // taken after a result reply always shows it (undone below when
        // the queue refuses the job).
        self.submitted.fetch_add(1, Ordering::SeqCst);
        match self.queue.try_push(job) {
            Ok(()) => {}
            Err(SubmitError::Full(queued, cap)) => {
                self.submitted.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                let retry = self.retry_after_ms(queued);
                let _ = reply.send(protocol::busy_line(&job_id, queued, cap, retry));
            }
            Err(SubmitError::Closed) => {
                self.submitted.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(protocol::error_line(
                    Some(&job_id),
                    "server is shutting down",
                    None,
                ));
            }
        }
    }

    /// When a rejected client should retry: the backlog ahead of it
    /// (`queued` jobs spread over the worker pool, plus the slot it
    /// needs) times the running mean leader job time, clamped to
    /// [`RETRY_MS_RANGE`]. Before any job has finished the mean falls
    /// back to [`DEFAULT_JOB_MS`].
    fn retry_after_ms(&self, queued: usize) -> u64 {
        let count = self.job_ms_count.load(Ordering::SeqCst);
        let mean = if count == 0 {
            DEFAULT_JOB_MS
        } else {
            (self.job_ms_sum.load(Ordering::SeqCst) / count).max(1)
        };
        let workers = self.cfg.workers.max(1) as u64;
        let rounds = (queued as u64) / workers + 1;
        rounds
            .saturating_mul(mean)
            .clamp(RETRY_MS_RANGE.0, RETRY_MS_RANGE.1)
    }

    fn worker_loop(self: Arc<Self>) {
        while let Some(job) = self.queue.pop() {
            self.run_job(job);
            self.queue.task_done();
        }
    }

    fn run_job(&self, job: Job) {
        // Builtin objectives keep the original key derivation
        // byte-for-byte; named objectives key under a namespaced tag
        // (`named:<name>`) that can never alias a builtin rendering, so
        // two requests differing only in `objective` never share an
        // entry.
        let key = match job.objective {
            ObjectiveSel::Builtin(obj) => cache_key(&job.net, obj, &job.cfg),
            ObjectiveSel::Named(name) => {
                cache_key_tagged(&job.net, &format!("named:{name}"), &job.cfg)
            }
        };
        // Admission is atomic under the state lock: result hit, join an
        // in-flight computation, or become that key's leader.
        {
            let mut state = lock_recover(&self.state);
            if let Some(cached) = state.results.get(&key) {
                drop(state);
                self.completed.fetch_add(1, Ordering::SeqCst);
                let _ = job
                    .reply
                    .send(protocol::result_line(&job.id, true, &cached));
                return;
            }
            if let Some(waiters) = state.inflight.get_mut(&key) {
                self.coalesced.fetch_add(1, Ordering::SeqCst);
                waiters.push(Waiter {
                    id: job.id,
                    reply: job.reply,
                });
                return;
            }
            state.inflight.insert(key, Vec::new());
        }
        // Leader: compute outside the lock — a slow job must not stall
        // cache hits or coalescing on other workers.
        self.computed.fetch_add(1, Ordering::SeqCst);
        let sat_key = saturation_cache_key(&job.net, &job.cfg);
        let warm_sat = lock_recover(&self.state).sat.get(&sat_key);
        let sat_was_cached = warm_sat.is_some();
        // Payload encoding happens inside the panic guard too: a
        // non-finite number or similar encoding failure must unwind into
        // an error reply, not kill the worker with the key stuck
        // in-flight.
        let run = || -> (Arc<SaturatedEgraph>, String) {
            let sat = warm_sat
                .clone()
                .unwrap_or_else(|| Arc::new(esyn_saturate(&job.net, &job.cfg)));
            let result = match job.objective {
                ObjectiveSel::Builtin(obj) => {
                    esyn_optimize_saturated(&job.net, &sat, &self.models, &self.lib, obj, &job.cfg)
                }
                ObjectiveSel::Named(name) => {
                    let obj = objective_by_name(name).expect("parser canonicalized the name");
                    esyn_optimize_with_cost_saturated(
                        &job.net,
                        &sat,
                        &ScoreOf(obj),
                        &self.lib,
                        obj.backend(),
                        &job.cfg,
                    )
                }
            };
            let payload = ResultPayload::from_result(&result, key);
            (sat, payload.to_json().encode())
        };
        let started = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
        // Panicking jobs count too: they occupied a worker just the same.
        let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.job_ms_sum.fetch_add(elapsed_ms, Ordering::SeqCst);
        self.job_ms_count.fetch_add(1, Ordering::SeqCst);
        match outcome {
            Ok((sat, encoded)) => {
                let encoded: Arc<str> = Arc::from(encoded);
                let waiters = {
                    let mut state = lock_recover(&self.state);
                    if !sat_was_cached {
                        let bytes = sat.approx_bytes();
                        state.sat.insert(sat_key, sat, bytes);
                    }
                    state
                        .results
                        .insert(key, Arc::clone(&encoded), encoded.len());
                    state.inflight.remove(&key).unwrap_or_default()
                };
                self.completed
                    .fetch_add(1 + waiters.len() as u64, Ordering::SeqCst);
                let _ = job
                    .reply
                    .send(protocol::result_line(&job.id, false, &encoded));
                // Waiters receive the exact bytes the leader computed;
                // `cached:true` because they did not run the pipeline.
                for w in waiters {
                    let _ = w.reply.send(protocol::result_line(&w.id, true, &encoded));
                }
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                let waiters = lock_recover(&self.state)
                    .inflight
                    .remove(&key)
                    .unwrap_or_default();
                self.errors
                    .fetch_add(1 + waiters.len() as u64, Ordering::SeqCst);
                let err =
                    |id: &str| protocol::error_line(Some(id), &format!("job failed: {msg}"), None);
                let _ = job.reply.send(err(&job.id));
                for w in waiters {
                    let _ = w.reply.send(err(&w.id));
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let state = lock_recover(&self.state);
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            computed: self.computed.load(Ordering::SeqCst),
            coalesced: self.coalesced.load(Ordering::SeqCst),
            cache_hits: state.results.hits(),
            cache_misses: state.results.misses(),
            cache_evictions: state.results.evictions(),
            cache_len: state.results.len(),
            cache_bytes: state.results.bytes(),
            cache_bytes_cap: state.results.budget(),
            sat_hits: state.sat.hits(),
            sat_misses: state.sat.misses(),
            sat_evictions: state.sat.evictions(),
            sat_len: state.sat.len(),
            sat_bytes: state.sat.bytes(),
            sat_bytes_cap: state.sat.budget(),
            queued: self.queue.queued(),
            queue_cap: self.queue.cap(),
            workers: self.cfg.workers.max(1),
        }
    }

    /// Graceful shutdown: stop admitting jobs, run the backlog and all
    /// in-flight work to completion (results are still delivered), then
    /// join the worker pool. Idempotent, and safe to race: the workers
    /// mutex is held across the whole join, so a concurrent second
    /// caller blocks until the first caller's join finishes — no call
    /// returns while a worker thread is still running.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue.close();
        self.queue.drain();
        let mut workers = lock_recover(&self.workers);
        for h in workers.drain(..) {
            let _ = h.join();
        }
        // Set under the lock: any shutdown() that returns observes it.
        self.workers_joined.store(true, Ordering::SeqCst);
    }

    /// Poisons the internal state mutex by panicking while holding it —
    /// the exact failure mode of a worker dying mid-critical-section.
    /// Test-only hook for the poison-recovery regression test.
    #[doc(hidden)]
    pub fn poison_state_for_test(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.state.lock().unwrap();
            panic!("injected poison");
        }));
    }
}

fn load_circuit(format: CircuitFormat, text: &str) -> Result<Network, String> {
    match format {
        CircuitFormat::Eqn => parse_eqn(text).map_err(|e| e.to_string()),
        CircuitFormat::Blif => parse_blif(text).map_err(|e| e.to_string()),
        CircuitFormat::Name => {
            esyn_circuits::by_name(text).ok_or_else(|| format!("unknown registry circuit `{text}`"))
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_owned()
    }
}
