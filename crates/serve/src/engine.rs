//! The serve engine: a worker pool over the bounded job queue, the
//! content-addressed result cache, and the request dispatcher shared by
//! the TCP and stdio front-ends.
//!
//! One [`Engine`] owns everything long-lived: the technology library and
//! trained cost models (loaded once, amortised over every request), the
//! [`Bounded`] queue, the [`ResultCache`] and the worker threads. Front
//! ends feed it request lines plus a per-connection reply channel; jobs
//! are answered asynchronously on that channel as workers finish them,
//! control requests synchronously.
//!
//! # Determinism
//!
//! A job's result is a pure function of `(circuit, objective, config)` —
//! the same contract as one-shot [`esyn_optimize`] — regardless of queue
//! interleaving, worker count or whether the result came from the cache
//! (`tests/parallel_determinism.rs` sweeps this). Wall-clock never
//! appears in a `result` payload.

use crate::cache::ResultCache;
use crate::protocol::{
    self, CircuitFormat, ObjectiveSel, Request, ResultPayload, StatsSnapshot, SubmitRequest,
};
use crate::queue::{Bounded, SubmitError};
use esyn_core::{
    cache_key, cache_key_tagged, esyn_optimize, esyn_optimize_with_cost, CostModels, EsynConfig,
    EsynResult, Parallelism, SaturationLimits,
};
use esyn_eqn::{parse_blif, parse_eqn, Network};
use esyn_objective::{objective_by_name, ScoreOf};
use esyn_techmap::Library;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server-side configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs (each job itself runs its parallel
    /// stages per its own config; the default job config is serial so
    /// job-level and stage-level parallelism do not multiply).
    pub workers: usize,
    /// Bounded-queue capacity; a full queue answers `busy`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Per-job default configuration; `submit` requests override fields.
    pub base: EsynConfig,
    /// Element-wise ceiling on per-job saturation budgets: a job may
    /// lower its limits but never raise them past this, so one request
    /// cannot capture the server. Stops at these limits keep the
    /// Runner's deterministic semantics (iteration/node caps bind before
    /// the wall-clock safety net in every test configuration).
    pub limit_ceiling: SaturationLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let mut base = EsynConfig::small();
        base.parallelism = Parallelism::Serial;
        base.pool.parallelism = Parallelism::Serial;
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_cap: 256,
            base,
            limit_ceiling: SaturationLimits {
                iter_limit: 64,
                node_limit: 500_000,
                time_limit: std::time::Duration::from_secs(120),
            },
        }
    }
}

struct Job {
    id: String,
    net: Network,
    objective: ObjectiveSel,
    cfg: EsynConfig,
    reply: Sender<String>,
}

/// The long-running batch synthesis service.
pub struct Engine {
    lib: Library,
    models: CostModels,
    cfg: ServeConfig,
    queue: Bounded<Job>,
    cache: Mutex<ResultCache>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shutting_down: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

impl Engine {
    /// Builds the engine and starts its worker pool.
    pub fn new(models: CostModels, lib: Library, cfg: ServeConfig) -> Arc<Self> {
        let workers = cfg.workers.max(1);
        let engine = Arc::new(Engine {
            lib,
            models,
            queue: Bounded::new(cfg.queue_cap),
            cache: Mutex::new(ResultCache::new(cfg.cache_cap)),
            cfg,
            workers: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || e.worker_loop())
            })
            .collect();
        *engine.workers.lock().unwrap() = handles;
        engine
    }

    /// The server's defaults (what `submit` overrides apply to).
    pub fn base_config(&self) -> &EsynConfig {
        &self.cfg.base
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Handles one request line, sending every response through `reply`.
    /// Returns `true` when the line was a shutdown request — by then the
    /// queue has fully drained, all in-flight results have been
    /// delivered, and the acknowledgement has been sent; the front-end
    /// should stop its accept/read loop.
    pub fn handle_line(self: &Arc<Self>, line: &str, reply: &Sender<String>) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        match protocol::parse_request(line) {
            Err(e) => {
                // Best effort: recover the job id for the error echo.
                let id = crate::json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(|j| j.as_str().map(str::to_owned)));
                let _ = reply.send(protocol::error_line(id.as_deref(), &e.message, e.position));
                false
            }
            Ok(Request::Ping) => {
                let _ = reply.send(protocol::pong_line());
                false
            }
            Ok(Request::Stats) => {
                let _ = reply.send(protocol::stats_line(&self.stats()));
                false
            }
            Ok(Request::Shutdown) => {
                self.shutdown();
                let _ = reply.send(protocol::shutdown_line(
                    self.completed.load(Ordering::SeqCst),
                ));
                true
            }
            Ok(Request::Submit(submit)) => {
                self.submit(submit, reply);
                false
            }
        }
    }

    fn submit(&self, req: SubmitRequest, reply: &Sender<String>) {
        let SubmitRequest {
            id,
            format,
            circuit,
            objective,
            overrides,
        } = req;
        let net = match load_circuit(format, &circuit) {
            Ok(net) => net,
            Err(msg) => {
                self.errors.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(protocol::error_line(Some(&id), &msg, None));
                return;
            }
        };
        if net.num_outputs() == 0 {
            self.errors.fetch_add(1, Ordering::SeqCst);
            let _ = reply.send(protocol::error_line(
                Some(&id),
                "circuit has no outputs",
                None,
            ));
            return;
        }
        let mut cfg = overrides.apply(&self.cfg.base);
        let ceil = self.cfg.limit_ceiling;
        cfg.limits.iter_limit = cfg.limits.iter_limit.min(ceil.iter_limit);
        cfg.limits.node_limit = cfg.limits.node_limit.min(ceil.node_limit);
        cfg.limits.time_limit = cfg.limits.time_limit.min(ceil.time_limit);
        let job_id = id.clone();
        let job = Job {
            id,
            net,
            objective,
            cfg,
            reply: reply.clone(),
        };
        // Count the submission before the push so the increment is
        // causally ordered before the job's completion — a stats read
        // taken after a result reply always shows it (undone below when
        // the queue refuses the job).
        self.submitted.fetch_add(1, Ordering::SeqCst);
        match self.queue.try_push(job) {
            Ok(()) => {}
            Err(SubmitError::Full(queued, cap)) => {
                self.submitted.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(protocol::busy_line(&job_id, queued, cap));
            }
            Err(SubmitError::Closed) => {
                self.submitted.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(protocol::error_line(
                    Some(&job_id),
                    "server is shutting down",
                    None,
                ));
            }
        }
    }

    fn worker_loop(self: Arc<Self>) {
        while let Some(job) = self.queue.pop() {
            self.run_job(job);
            self.queue.task_done();
        }
    }

    fn run_job(&self, job: Job) {
        // Builtin objectives keep the original key derivation
        // byte-for-byte; named objectives key under a namespaced tag
        // (`named:<name>`) that can never alias a builtin rendering, so
        // two requests differing only in `objective` never share an
        // entry.
        let key = match job.objective {
            ObjectiveSel::Builtin(obj) => cache_key(&job.net, obj, &job.cfg),
            ObjectiveSel::Named(name) => {
                cache_key_tagged(&job.net, &format!("named:{name}"), &job.cfg)
            }
        };
        if let Some(cached) = self.cache.lock().unwrap().get(&key) {
            self.completed.fetch_add(1, Ordering::SeqCst);
            let _ = job
                .reply
                .send(protocol::result_line(&job.id, true, &cached));
            return;
        }
        // Compute outside the cache lock: a slow job must not stall
        // cache hits on other workers. Two racing identical jobs may
        // both compute — their results are bit-identical, so the second
        // insert is a no-op value-wise.
        let run = || -> EsynResult {
            match job.objective {
                ObjectiveSel::Builtin(obj) => {
                    esyn_optimize(&job.net, &self.models, &self.lib, obj, &job.cfg)
                }
                ObjectiveSel::Named(name) => {
                    let obj = objective_by_name(name).expect("parser canonicalized the name");
                    esyn_optimize_with_cost(
                        &job.net,
                        &ScoreOf(obj),
                        &self.lib,
                        obj.backend(),
                        &job.cfg,
                    )
                }
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
        match outcome {
            Ok(result) => {
                let payload = ResultPayload::from_result(&result, key);
                let encoded: Arc<str> = Arc::from(payload.to_json().encode());
                self.cache.lock().unwrap().insert(key, Arc::clone(&encoded));
                self.completed.fetch_add(1, Ordering::SeqCst);
                let _ = job
                    .reply
                    .send(protocol::result_line(&job.id, false, &encoded));
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                self.errors.fetch_add(1, Ordering::SeqCst);
                let _ = job.reply.send(protocol::error_line(
                    Some(&job.id),
                    &format!("job failed: {msg}"),
                    None,
                ));
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let cache = self.cache.lock().unwrap();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
            cache_len: cache.len(),
            queued: self.queue.queued(),
            queue_cap: self.queue.cap(),
            workers: self.cfg.workers.max(1),
        }
    }

    /// Graceful shutdown: stop admitting jobs, run the backlog and all
    /// in-flight work to completion (results are still delivered), then
    /// join the worker pool. Idempotent; later calls return once the
    /// first drain finishes.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue.close();
        self.queue.drain();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn load_circuit(format: CircuitFormat, text: &str) -> Result<Network, String> {
    match format {
        CircuitFormat::Eqn => parse_eqn(text).map_err(|e| e.to_string()),
        CircuitFormat::Blif => parse_blif(text).map_err(|e| e.to_string()),
        CircuitFormat::Name => {
            esyn_circuits::by_name(text).ok_or_else(|| format!("unknown registry circuit `{text}`"))
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_owned()
    }
}
