//! A tiny, dependency-free, *deterministic* PRNG crate exposing the subset
//! of the `rand` crate surface this workspace uses: [`rngs::StdRng`],
//! [`Rng`] and [`SeedableRng`].
//!
//! The build environment has no access to crates.io, so workspace members
//! depend on this crate under the name `rand` (via a Cargo dependency
//! rename) and keep their `use rand::…` imports unchanged.
//!
//! Two deliberate differences from upstream `rand`:
//!
//! 1. **No entropy-based constructors.** There is no `from_entropy`,
//!    `thread_rng` or `OsRng`; the only way to build a generator is from an
//!    explicit seed. Every RNG-consuming path in the workspace is therefore
//!    reproducible by construction.
//! 2. **A fixed, documented algorithm.** `StdRng` is xoshiro256** seeded by
//!    SplitMix64, so streams are stable across compilers and platforms and
//!    test expectations never rot.
//!
//! # Thread safety and parallel pre-splitting
//!
//! Every generator in this crate is plain owned data (`u64` words, no
//! interior mutability, no pointers), so [`SplitMix64`] and
//! [`rngs::StdRng`] are `Send + Sync` by auto-trait — state can move into
//! `esyn-par` workers freely. That property is load-bearing for the
//! parallel subsystem and is pinned by a compile-time assertion in this
//! crate's tests so a future field can't silently revoke it.
//!
//! Workers must still never *share* one generator (a `Mutex<StdRng>`
//! would make results depend on scheduling order). The workspace
//! convention is to pre-split instead: derive one independent seed per
//! work item with [`split_seeds`] and give each item its own
//! [`rngs::StdRng`] via [`SeedableRng::seed_from_u64`]. Results are then
//! a pure function of `(master seed, item index)` — identical at any
//! thread count.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Expands a 64-bit seed into well-mixed 64-bit words (Steele et al.,
/// *Fast splittable pseudorandom number generators*, OOPSLA 2014).
///
/// Used to initialise [`rngs::StdRng`] state from a single `u64` so that
/// nearby seeds (0, 1, 2, …) still produce uncorrelated streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives `n` independent seeds from one master seed — the workspace
/// convention for handing each parallel work item its own generator.
///
/// Seed `k` is the `k`-th output of the [`SplitMix64`] stream over
/// `seed`, so the result is a pure function of `(seed, n)`: prefixes
/// agree (`split_seeds(s, 10)[..4] == split_seeds(s, 4)`), which keeps
/// sample streams prefix-closed when a caller grows its pool.
///
/// ```
/// use esyn_rand::{split_seeds, Rng, SeedableRng, StdRng};
///
/// let seeds = split_seeds(0xE5F1, 3);
/// assert_eq!(seeds[..2], split_seeds(0xE5F1, 2)[..]); // prefix-closed
///
/// // Each worker owns its own generator; no state is shared.
/// let draws: Vec<u64> = seeds
///     .iter()
///     .map(|&s| StdRng::seed_from_u64(s).gen())
///     .collect();
/// assert_eq!(draws.len(), 3);
/// ```
pub fn split_seeds(seed: u64, n: usize) -> Vec<u64> {
    let mut mix = SplitMix64::new(seed);
    (0..n).map(|_| mix.next_u64()).collect()
}

/// A source of raw 64-bit randomness; object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seed-only construction, mirroring `rand::SeedableRng`.
///
/// Unlike upstream there is deliberately no `from_entropy`: determinism is
/// a workspace-wide invariant and every generator must be handed its seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a "standard-distribution" value, backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias (rejection sampling
/// on the widening-multiply scheme of Lemire 2019).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        let lo = m as u64;
        // Reject iff lo < (2^64 - span) % span; that threshold is < span,
        // so `lo >= span` short-circuits the modulo in the common case.
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

// Signed types work through the same macro: `as u64` sign-extends, so the
// wrapping span/offset arithmetic is exact in two's complement.
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // The scale-and-shift can round up to `end` (e.g. a near-1 unit
        // against a wide range); keep the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
///
/// Blanket-implemented for every [`RngCore`], so `use rand::Rng;` brings
/// `gen`, `gen_bool` and `gen_range` into scope exactly as with upstream.
pub trait Rng: RngCore {
    /// Draws a standard-distribution value (`u64`/`u32`: uniform over the
    /// full domain, `bool`: fair coin, `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard generator: xoshiro256** (Blackman &
    /// Vigna), state seeded via [`SplitMix64`].
    ///
    /// Constructible **only** from an explicit seed — see the crate docs
    /// for why there is no entropy-based constructor.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut mix = SplitMix64::new(seed);
            StdRng {
                s: [
                    mix.next_u64(),
                    mix.next_u64(),
                    mix.next_u64(),
                    mix.next_u64(),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time audit: generator state must stay `Send + Sync` (and
    /// seed-constructible) so `esyn-par` workers can own pre-split RNGs.
    /// If a future field (an `Rc`, a raw pointer, interior mutability)
    /// breaks the auto-traits, this stops compiling rather than
    /// surfacing as a distant trait-bound error in a parallel call site.
    #[test]
    fn generators_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<StdRng>();
        assert_send_sync::<SplitMix64>();

        fn assert_worker_usable<T: SeedableRng + RngCore + Send>() {}
        assert_worker_usable::<StdRng>();

        // And prove the pre-split pattern end to end: per-item streams
        // drawn on worker threads equal the same streams drawn serially.
        let seeds = split_seeds(0xFEED, 8);
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&s| StdRng::seed_from_u64(s).next_u64())
            .collect();
        let parallel: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&s| scope.spawn(move || StdRng::seed_from_u64(s).next_u64()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn split_seeds_is_prefix_closed_and_decorrelated() {
        let a = split_seeds(7, 100);
        let b = split_seeds(7, 40);
        assert_eq!(a[..40], b[..]);
        // distinct master seeds give disjoint streams in practice
        let c = split_seeds(8, 100);
        assert!(a.iter().zip(&c).all(|(x, y)| x != y));
        // all 100 seeds distinct
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "adjacent seeds should decorrelate, {same}/64 equal"
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..10 should appear: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_range_never_hits_exclusive_bound() {
        // A wide range where scale-and-shift of a near-1 unit rounds up
        // to the bound; the sampler must still honour [start, end).
        let mut rng = StdRng::seed_from_u64(23);
        let (start, end) = (1e16, 1e16 + 4.0);
        for _ in 0..100_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "{v} outside [{start}, {end})");
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values from the public-domain splitmix64.c with seed 0.
        let mut mix = SplitMix64::new(0);
        assert_eq!(mix.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
