//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, issued densely by [`crate::Solver::new_var`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`
/// (sign bit set means negated).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal with an explicit sign; `negated = false` gives the
    /// positive literal.
    pub fn with_sign(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True when this is a negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index (distinct for the two polarities), used for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!v{}", self.0 >> 1)
        } else {
            write!(f, "v{}", self.0 >> 1)
        }
    }
}

/// Three-valued assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    pub(crate) fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_ne!(p.index(), n.index());
        assert_eq!(Lit::with_sign(v, true), n);
        assert_eq!(Lit::with_sign(v, false), p);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Lit::pos(Var(3))), "v3");
        assert_eq!(format!("{:?}", Lit::neg(Var(3))), "!v3");
    }
}
