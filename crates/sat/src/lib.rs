//! A CDCL SAT solver in the MiniSat lineage.
//!
//! Implements the standard modern architecture: two-watched-literal unit
//! propagation, first-UIP conflict analysis with recursive clause
//! minimisation, VSIDS variable activity with an indexed binary heap,
//! phase saving, Luby-sequence restarts, and activity-driven deletion of
//! learnt clauses. Assumption-based incremental solving
//! ([`Solver::solve_with_assumptions`]) supports the combinational
//! equivalence checker's per-output queries, and the conflict-budgeted
//! variant ([`Solver::solve_limited`]) supports anytime optimization
//! loops such as exact e-graph extraction (`esyn-extract`).
//!
//! This crate is the workspace's substitute for the SAT engine embedded in
//! ABC (`cec`), as described in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use esyn_sat::{Lit, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a | b) & (!a | b) & (a | !b)
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::pos(a), Lit::neg(b)]);
//! assert!(s.solve());
//! assert!(s.value(a).unwrap() && s.value(b).unwrap());
//! // adding (!a | !b) makes it unsatisfiable
//! s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
//! assert!(!s.solve());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dimacs;
mod heap;
mod solver;
mod types;

pub use dimacs::{Cnf, DimacsError};
pub use solver::Solver;
pub use types::{Lit, Var};
