//! The CDCL solver core.

use crate::heap::ActivityHeap;
use crate::types::{LBool, Lit, Var};

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: usize,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watch scan can be skipped.
    blocker: Lit,
}

/// A CDCL SAT solver. See the [crate docs](crate) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>, // indexed by Lit::index
    assigns: Vec<LBool>,        // per var
    phase: Vec<bool>,           // saved phase per var
    level: Vec<u32>,            // per var
    reason: Vec<Option<usize>>, // per var
    activity: Vec<f64>,         // per var
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: ActivityHeap,
    var_inc: f64,
    cla_inc: f64,
    seen: Vec<bool>,
    unsat: bool,
    num_learnts: usize,
    model: Vec<bool>,
    /// Total conflicts seen (exposed for statistics).
    conflicts: u64,
    /// Total decisions made (exposed for statistics).
    decisions: u64,
    /// Total literals propagated (exposed for statistics).
    propagations: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            order: ActivityHeap::new(),
            ..Default::default()
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt) clauses currently alive.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Total conflicts across all `solve` calls.
    pub fn conflict_count(&self) -> u64 {
        self.conflicts
    }

    /// Total decisions across all `solve` calls.
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Total propagated literals across all `solve` calls.
    pub fn propagation_count(&self) -> u64 {
        self.propagations
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v.0, &self.activity);
        v
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// The model value of `var` from the last satisfiable [`Solver::solve`]
    /// call, or `None` if no model is available.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied()
    }

    /// Adds a clause (an OR of literals).
    ///
    /// Returns `false` if the formula is already unsatisfiable at level 0
    /// (further calls are no-ops and `solve` will return `false`).
    ///
    /// # Panics
    ///
    /// Panics if called while a solve is in progress (never possible
    /// through the public API) or with literals of unknown variables.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if self.unsat {
            return false;
        }
        // Sort/dedup; detect tautology; drop false lits; detect satisfied.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut filtered = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            assert!(l.var().index() < self.num_vars(), "unknown variable");
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and !l
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(filtered, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        let w0 = Watcher {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        cref
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(!l.is_neg());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<usize> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;

            let ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = Vec::with_capacity(ws.len());
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == LBool::True {
                    kept.push(w);
                    continue;
                }
                let cref = w.clause;
                if self.clauses[cref].deleted {
                    continue; // lazily drop watchers of deleted clauses
                }
                // Ensure the false literal (!p) is at position 1.
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    kept.push(Watcher {
                        clause: cref,
                        blocker: first,
                    });
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            clause: cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                kept.push(Watcher {
                    clause: cref,
                    blocker: first,
                });
                if self.value_lit(first) == LBool::False {
                    // Conflict: keep remaining watchers and bail out.
                    kept.extend_from_slice(&ws[i..]);
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
            }
            // Merge: new watchers may have been pushed for p while scanning.
            let slot = &mut self.watches[p.index()];
            kept.append(slot);
            *slot = kept;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bubble_up(v as u32, &self.activity);
    }

    fn cla_bump(&mut self, cref: usize) {
        let c = &mut self.clauses[cref];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backtrack level).
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut path_c = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<usize> = Vec::new();

        loop {
            if self.clauses[confl].learnt {
                self.cla_bump(confl);
            }
            let start = usize::from(p.is_some());
            for j in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[j];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.var_bump(v);
                    self.seen[v] = true;
                    to_clear.push(v);
                    if self.level[v] as usize >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            let v = pl.var().index();
            self.seen[v] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                break;
            }
            confl = self.reason[v].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("analysis visits at least one literal");

        // Conflict-clause minimisation (basic, local): a literal is
        // redundant if its reason clause is fully covered by the learnt
        // clause / level-0 assignments.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&q| !self.literal_redundant(q))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        for v in to_clear {
            self.seen[v] = false;
        }

        // Backtrack level: highest level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt)
    }

    fn literal_redundant(&self, q: Lit) -> bool {
        let v = q.var().index();
        let Some(cref) = self.reason[v] else {
            return false;
        };
        self.clauses[cref].lits[1..].iter().all(|&l| {
            let lv = l.var().index();
            self.seen[lv] || self.level[lv] == 0
        })
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for idx in (lim..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var().index();
            self.phase[v] = !l.is_neg();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            if !self.order.contains(v as u32) {
                self.order.insert(v as u32, &self.activity);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v as usize] == LBool::Undef {
                return Some(Var(v));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_locked(i)
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .expect("activities are finite")
        });
        let to_delete = learnt_refs.len() / 2;
        for &cref in &learnt_refs[..to_delete] {
            self.clauses[cref].deleted = true;
            self.num_learnts -= 1;
        }
        // Watchers of deleted clauses are dropped lazily in propagate.
    }

    fn is_locked(&self, cref: usize) -> bool {
        let first = self.clauses[cref].lits[0];
        self.value_lit(first) == LBool::True && self.reason[first.var().index()] == Some(cref)
    }

    /// Solves the formula; returns `true` when satisfiable (the model is
    /// then available through [`Solver::value`]).
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. The assumptions are
    /// treated as temporary unit decisions; the solver state is reusable
    /// afterwards (incremental solving).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        self.solve_limited(assumptions, u64::MAX)
            .expect("an unlimited solve always decides")
    }

    /// [`Solver::solve_with_assumptions`] with a conflict budget: gives up
    /// and returns `None` once `max_conflicts` further conflicts have been
    /// spent without deciding the query (checked at restart boundaries, so
    /// the overshoot is at most one Luby segment). The solver state stays
    /// reusable either way — clauses learnt before the budget ran out are
    /// kept, so a retry resumes stronger rather than from scratch.
    ///
    /// This is the entry point for *optimization* loops (e.g. exact
    /// e-graph extraction in `esyn-extract`) that probe a sequence of
    /// tightening bounds and must degrade to their incumbent rather than
    /// hang on a hard instance.
    pub fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<bool> {
        if self.unsat {
            return Some(false);
        }
        let start = self.conflicts;
        let mut restarts = 0u32;
        let result = loop {
            if self.conflicts - start >= max_conflicts {
                self.cancel_until(0);
                return None;
            }
            let budget = 100 * luby(2, restarts);
            match self.search(budget, assumptions) {
                Some(sat) => break sat,
                None => restarts += 1, // restart
            }
        };
        if result {
            self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
        }
        self.cancel_until(0);
        Some(result)
    }

    /// Runs CDCL until a result or `budget` conflicts (then returns `None`
    /// to signal a restart).
    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> Option<bool> {
        let mut conflicts_here = 0u64;
        let max_learnts = (self.clauses.len() / 3).max(1000) + (self.conflicts / 2) as usize;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Some(false);
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.cla_bump(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= 0.95; // var activity decay
                self.cla_inc /= 0.999;
            } else {
                if conflicts_here >= budget {
                    self.cancel_until(0);
                    return None; // restart
                }
                if self.num_learnts > max_learnts {
                    self.reduce_db();
                }
                // Honor assumptions as forced decisions.
                let mut next: Option<Lit> = None;
                while self.decision_level() < assumptions.len() {
                    let a = assumptions[self.decision_level()];
                    match self.value_lit(a) {
                        LBool::True => {
                            // already satisfied; open a dummy level
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // conflicts with current trail → UNSAT under
                            // assumptions
                            self.cancel_until(0);
                            return Some(false);
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(l) => l,
                    None => match self.pick_branch_var() {
                        Some(v) => Lit::with_sign(v, !self.phase[v.index()]),
                        None => return Some(true), // all assigned: SAT
                    },
                };
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 ... scaled by powers of `y`.
fn luby(y: u64, mut x: u32) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < (x as u64) + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) / 2;
        seq -= 1;
        x = (x as u64 % size) as u32;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, idx: usize, neg: bool) -> Lit {
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::with_sign(vars[idx], neg)
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (0..15).map(|i| luby(2, i)).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(s.solve());
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a)]));
        assert!(!s.add_clause(&[Lit::neg(a)]));
        assert!(!s.solve());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert!(!s.solve());
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::neg(a)]));
        assert!(s.solve());
    }

    #[test]
    fn no_clauses_is_sat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(s.solve());
    }

    #[test]
    fn three_sat_instance() {
        // (a|b|c) & (!a|b) & (!b|c) & (!c|a) & (!a|!b|!c) is satisfiable?
        // a=T,b=T,c=T violates the last clause; try a=F: then !c|a → !c,
        // c=F; !b|c → !b, b=F; a|b|c=F → conflict. a=T,b=T,c=T fails last.
        // a=T,b=F: !a|b fails. So UNSAT.
        let mut s = Solver::new();
        let mut v = Vec::new();
        let c = |s: &mut Solver, v: &mut Vec<Var>, spec: &[(usize, bool)]| {
            let lits: Vec<Lit> = spec.iter().map(|&(i, n)| lit(s, v, i, n)).collect();
            s.add_clause(&lits);
        };
        c(&mut s, &mut v, &[(0, false), (1, false), (2, false)]);
        c(&mut s, &mut v, &[(0, true), (1, false)]);
        c(&mut s, &mut v, &[(1, true), (2, false)]);
        c(&mut s, &mut v, &[(2, true), (0, false)]);
        c(&mut s, &mut v, &[(0, true), (1, true), (2, true)]);
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon somewhere; no two share.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p[i][0]), Lit::pos(p[i][1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
        assert!(s.conflict_count() > 0);
    }

    #[test]
    fn pigeonhole_3_into_3_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..3).map(|_| s.new_var()).collect())
            .collect();
        for i in 0..3 {
            let row: Vec<Lit> = (0..3).map(|j| Lit::pos(p[i][j])).collect();
            s.add_clause(&row);
        }
        for j in 0..3 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve());
        // verify model: each pigeon in >=1 hole, no hole with two pigeons
        for i in 0..3 {
            assert!((0..3).any(|j| s.value(p[i][j]).unwrap()));
        }
        for j in 0..3 {
            let count = (0..3).filter(|&i| s.value(p[i][j]).unwrap()).count();
            assert!(count <= 1);
        }
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert!(s.solve_with_assumptions(&[Lit::neg(a)]));
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(b), Some(true));
        // Contradictory assumptions: UNSAT, but state is reusable.
        assert!(!s.solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)]));
        assert!(s.solve());
    }

    #[test]
    fn assumption_conflicting_with_unit_clause() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(!s.solve_with_assumptions(&[Lit::neg(a)]));
        assert!(s.solve_with_assumptions(&[Lit::pos(a)]));
    }

    #[test]
    fn solve_limited_honors_budget_and_resumes() {
        // Pigeonhole 5-into-4: hard enough to burn real conflicts.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..5)
            .map(|_| (0..4).map(|_| s.new_var()).collect())
            .collect();
        for pigeon in &p {
            let row: Vec<Lit> = pigeon.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&row);
        }
        for j in 0..4 {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        // A zero budget gives up before deciding anything.
        assert_eq!(s.solve_limited(&[], 0), None);
        // An unlimited retry still decides (UNSAT), reusing learnt state.
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(false));
        // Once level-0 UNSAT is known, even a zero budget reports it.
        assert_eq!(s.solve_limited(&[], 0), Some(false));
    }

    #[test]
    fn xor_chain_instance() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., and x0 = x_{n} forced equal ends:
        // for odd chain lengths this is UNSAT when ends are tied equal.
        let n = 12;
        let mut s = Solver::new();
        let xs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for i in 0..n - 1 {
            // xi ^ xi+1 = 1  ⇔  (xi | xi+1) & (!xi | !xi+1)
            s.add_clause(&[Lit::pos(xs[i]), Lit::pos(xs[i + 1])]);
            s.add_clause(&[Lit::neg(xs[i]), Lit::neg(xs[i + 1])]);
        }
        // tie ends equal: x0 = x_{n-1}
        s.add_clause(&[Lit::neg(xs[0]), Lit::pos(xs[n - 1])]);
        s.add_clause(&[Lit::pos(xs[0]), Lit::neg(xs[n - 1])]);
        // chain of 11 xors flips parity 11 times → x0 != x11, so UNSAT.
        assert!(!s.solve());
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        // Deterministic xorshift RNG; 3-SAT on 8 vars, compare to brute force.
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..30 {
            let nv = 8usize;
            let nc = 30usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nc {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push(((rnd() as usize) % nv, rnd() % 2 == 0));
                }
                clauses.push(cl);
            }
            // brute force
            let mut expect = false;
            'outer: for m in 0..(1u32 << nv) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, neg)| ((m >> v) & 1 == 1) != neg) {
                        continue 'outer;
                    }
                }
                expect = true;
                break;
            }
            // solver
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
            for cl in &clauses {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|&(v, neg)| Lit::with_sign(vars[v], neg))
                    .collect();
                s.add_clause(&lits);
            }
            let got = s.solve();
            assert_eq!(got, expect, "clauses: {clauses:?}");
            if got {
                // model must satisfy every clause
                for cl in &clauses {
                    assert!(cl.iter().any(|&(v, neg)| s.value(vars[v]).unwrap() != neg));
                }
            }
        }
    }
}
