//! DIMACS CNF parsing and printing.

use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::fmt;

/// Error parsing DIMACS text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError(pub String);

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs error: {}", self.0)
    }
}

impl std::error::Error for DimacsError {}

/// A parsed CNF: variable count plus clauses of DIMACS-style literals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses; literals use the solver's [`Lit`] encoding.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Parses DIMACS text (`c` comments, `p cnf V C` header, clauses
    /// terminated by `0`).
    ///
    /// # Errors
    ///
    /// Returns [`DimacsError`] on missing/malformed headers, literals out
    /// of the declared range, or unterminated clauses.
    pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                if num_vars.is_some() {
                    return Err(DimacsError("duplicate `p` header".into()));
                }
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(DimacsError("expected `p cnf V C`".into()));
                }
                let v: usize = parts
                    .next()
                    .ok_or_else(|| DimacsError("missing variable count".into()))?
                    .parse()
                    .map_err(|_| DimacsError("bad variable count".into()))?;
                declared_clauses = parts
                    .next()
                    .ok_or_else(|| DimacsError("missing clause count".into()))?
                    .parse()
                    .map_err(|_| DimacsError("bad clause count".into()))?;
                num_vars = Some(v);
                continue;
            }
            let v = num_vars.ok_or_else(|| DimacsError("clause before header".into()))?;
            for tok in line.split_whitespace() {
                let x: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError(format!("bad literal `{tok}`")))?;
                if x == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let var_idx = x.unsigned_abs() as usize;
                    if var_idx > v {
                        return Err(DimacsError(format!(
                            "literal {x} exceeds declared variable count {v}"
                        )));
                    }
                    current.push(Lit::with_sign(Var((var_idx - 1) as u32), x < 0));
                }
            }
        }
        if !current.is_empty() {
            return Err(DimacsError("unterminated clause (missing 0)".into()));
        }
        let num_vars = num_vars.ok_or_else(|| DimacsError("missing `p cnf` header".into()))?;
        if clauses.len() != declared_clauses {
            // Tolerated in the wild, but flag gross mismatches.
            if clauses.len() > declared_clauses * 2 + 8 {
                return Err(DimacsError(format!(
                    "clause count {} far from declared {declared_clauses}",
                    clauses.len()
                )));
            }
        }
        Ok(Cnf { num_vars, clauses })
    }

    /// Renders DIMACS text.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for &l in clause {
                let v = l.var().index() as i64 + 1;
                let _ = write!(s, "{} ", if l.is_neg() { -v } else { v });
            }
            let _ = writeln!(s, "0");
        }
        s
    }

    /// Loads this CNF into a fresh solver.
    pub fn into_solver(&self) -> Solver {
        let mut solver = Solver::new();
        for _ in 0..self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            solver.add_clause(clause);
        }
        solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_solve_sat() {
        let cnf = Cnf::parse("c demo\np cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.into_solver();
        assert!(s.solve());
        assert_eq!(s.value(Var(1)), Some(true));
    }

    #[test]
    fn parse_and_solve_unsat() {
        let cnf = Cnf::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let mut s = cnf.into_solver();
        assert!(!s.solve());
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 3 3\n1 -2 0\n2 3 0\n-1 -3 0\n";
        let cnf = Cnf::parse(src).unwrap();
        let printed = cnf.to_dimacs();
        let again = Cnf::parse(&printed).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn multi_clause_per_line_and_split_clauses() {
        let cnf = Cnf::parse("p cnf 2 2\n1 0 -1 2 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 2);
        let cnf2 = Cnf::parse("p cnf 2 1\n1\n2 0\n").unwrap();
        assert_eq!(cnf2.clauses.len(), 1);
        assert_eq!(cnf2.clauses[0].len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(Cnf::parse("").is_err());
        assert!(Cnf::parse("1 2 0").is_err(), "clause before header");
        assert!(Cnf::parse("p cnf 1 1\n5 0\n").is_err(), "var out of range");
        assert!(Cnf::parse("p cnf 1 1\n1\n").is_err(), "unterminated");
        assert!(Cnf::parse("p dnf 1 1\n1 0\n").is_err(), "bad format tag");
    }
}
