//! Indexed max-heap over variable activities (the VSIDS order).

/// A binary max-heap of variable indices keyed by an external activity
/// array, with an index map for `decrease`/`increase` in O(log n).
#[derive(Clone, Debug, Default)]
pub(crate) struct ActivityHeap {
    heap: Vec<u32>,
    /// position of var in `heap`, or `usize::MAX` when absent
    index: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.index.len() < num_vars {
            self.index.resize(num_vars, ABSENT);
        }
    }

    pub(crate) fn contains(&self, v: u32) -> bool {
        self.index[v as usize] != ABSENT
    }

    pub(crate) fn insert(&mut self, v: u32, act: &[f64]) {
        debug_assert!(!self.contains(v));
        self.index[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    pub(crate) fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("heap non-empty");
        self.index[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn bubble_up(&mut self, v: u32, act: &[f64]) {
        if let Some(&pos) = self.index.get(v as usize) {
            if pos != ABSENT {
                self.sift_up(pos, act);
            }
        }
    }

    fn sift_up(&mut self, mut pos: usize, act: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if act[self.heap[pos] as usize] > act[self.heap[parent] as usize] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, act: &[f64]) {
        loop {
            let l = 2 * pos + 1;
            let r = 2 * pos + 2;
            let mut best = pos;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a] as usize] = a;
        self.index[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.grow_to(4);
        for v in 0..4 {
            h.insert(v, &act);
        }
        assert_eq!(h.pop_max(&act), Some(1));
        assert_eq!(h.pop_max(&act), Some(3));
        assert_eq!(h.pop_max(&act), Some(2));
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn bubble_up_after_activity_bump() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        h.grow_to(3);
        for v in 0..3 {
            h.insert(v, &act);
        }
        act[0] = 10.0; // bump var 0 to the top
        h.bubble_up(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
    }

    #[test]
    fn contains_tracks_membership() {
        let act = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.grow_to(2);
        h.insert(0, &act);
        assert!(h.contains(0));
        assert!(!h.contains(1));
        h.pop_max(&act);
        assert!(!h.contains(0));
    }
}
