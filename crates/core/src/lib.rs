//! **E-Syn**: e-graph rewriting with technology-aware cost functions for
//! logic synthesis — the core of the DAC 2024 paper reproduction.
//!
//! The workflow mirrors the paper's Figure 2:
//!
//! 1. a combinational circuit in equation format becomes a Boolean
//!    S-expression term ([`lang::network_to_recexpr`]);
//! 2. equality saturation with the Boolean-algebra rules of Table 1
//!    ([`rules::all_rules`]) grows an e-graph of equivalent forms
//!    ([`saturate`]);
//! 3. *pool extraction* ([`pool::extract_pool`]) collects candidate ASTs:
//!    the size-optimal and depth-optimal trees plus stochastic samples
//!    (strategy (a): random among cost-tied e-nodes; strategy (b):
//!    sub-optimal exploration with probability 0.2; ratio 1:3);
//! 4. each candidate is scored by a *technology-aware cost model* —
//!    gradient-boosted regression trees over AST features
//!    ([`features::Features`], [`cost`], [`train`]) — and the best is
//!    selected;
//! 5. the winner is verified by combinational equivalence checking and
//!    evaluated through the shared mapping backend (`esyn-techmap`),
//!    yielding post-mapping area/delay ([`flow::esyn_optimize`]).
//!
//! The baseline it is compared against ([`flow::abc_baseline`]) is the
//! AIG-based flow of §4.3 built from `esyn-aig` passes.
//!
//! # Example
//!
//! ```
//! use esyn_core::{flow, lang, rules, pool};
//! use esyn_eqn::parse_eqn;
//!
//! let net = parse_eqn("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n")?;
//! let expr = lang::network_to_recexpr(&net);
//! let runner = flow::saturate(&expr, &rules::all_rules(), &flow::SaturationLimits::small());
//! let pool = pool::extract_pool(&runner.egraph, runner.roots[0], &pool::PoolConfig::small(7));
//! assert!(pool.len() >= 2); // best-size + best-depth at minimum
//! # Ok::<(), esyn_eqn::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod cache;
pub mod cost;
pub mod features;
pub mod flow;
pub mod lang;
pub mod pareto;
pub mod pool;
pub mod rules;
pub mod train;

pub use analysis::ConstFold;
pub use cache::{
    cache_key, cache_key_tagged, canonical_config, canonical_config_tagged,
    canonical_saturation_config, config_hash, config_hash_tagged, saturation_cache_key,
    saturation_config_hash, structural_hash, CacheKey,
};
pub use cost::{AstDepthCost, AstSizeCost, CandidateCost, GbdtCost, WeightedOpsCost};
pub use esyn_egraph::{IterationStats, StopReason};
pub use esyn_par::Parallelism;
pub use features::Features;
pub use flow::{
    abc_baseline, abc_baseline_choices, esyn_backend, esyn_backend_choices, esyn_optimize,
    esyn_optimize_saturated, esyn_optimize_with_cost, esyn_optimize_with_cost_saturated,
    esyn_saturate, saturate, saturate_par, EsynConfig, EsynResult, Objective, SaturatedEgraph,
    SaturationLimits,
};
pub use lang::{network_to_recexpr, recexpr_to_network, BoolLang, Symbol};
pub use pareto::pareto_front;
pub use pool::{extract_pool, extract_pool_with, PoolConfig};
pub use rules::{all_rules, rules_for, RuleClass};
pub use train::{train_cost_models, CostModels, TrainConfig};
