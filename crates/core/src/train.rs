//! Cost-model training (§3.2.1): fuzzed circuits are mapped through the
//! shared backend; the reported delay/area label a GBDT regression over
//! the AST features.
//!
//! The paper trains on 50 000 aigfuzz circuits; the defaults here are
//! laptop-sized (hundreds of circuits) and reach comparable fit quality
//! (R ≈ 0.8) because the synthetic library is less noisy than a real PDK.

use crate::cost::GbdtCost;
use crate::features::Features;
use crate::lang::{network_to_recexpr, recexpr_to_network};
use crate::pool::{extract_pool_with, PoolConfig};
use esyn_aig::fuzz::{random_network, FuzzConfig};
use esyn_aig::{scripts, Aig};
use esyn_gbdt::{pearson_r, Dataset, GbdtParams, GbdtRegressor};
use esyn_techmap::{map_aig, Library, MapMode};
use std::io;
use std::path::Path;

/// Training-set generation and regression parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of random circuits to generate.
    pub num_circuits: usize,
    /// Base RNG seed (circuit `i` uses `seed + i`).
    pub seed: u64,
    /// AND-count range of generated circuits (inclusive bounds).
    pub ands: (usize, usize),
    /// Primary-input count range.
    pub pis: (usize, usize),
    /// Primary-output count range.
    pub pos: (usize, usize),
    /// Regression hyper-parameters (paper: 200 estimators, depth 5).
    pub gbdt: GbdtParams,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            num_circuits: 240,
            seed: 0x7274_7261,
            // The size range must cover the *candidate* regime at
            // inference time — gradient-boosted trees cannot extrapolate
            // beyond the training support (the paper trains on circuits
            // averaging 6305 AIG nodes for the same reason).
            ands: (60, 2400),
            pis: (6, 24),
            pos: (2, 10),
            gbdt: GbdtParams::default(),
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            num_circuits: 24,
            ands: (20, 100),
            gbdt: GbdtParams {
                n_estimators: 60,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// The two trained technology-aware models plus their held-out fit
/// quality (Pearson R, the paper's metric).
#[derive(Clone, Debug)]
pub struct CostModels {
    /// Delay predictor.
    pub delay: GbdtCost,
    /// Area predictor.
    pub area: GbdtCost,
    /// Held-out Pearson R of the delay model.
    pub r_delay: f64,
    /// Held-out Pearson R of the area model.
    pub r_area: f64,
}

impl CostModels {
    /// Persists both models (plus the R metrics) into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("delay.model"), self.delay.model().to_text())?;
        std::fs::write(dir.join("area.model"), self.area.model().to_text())?;
        std::fs::write(
            dir.join("metrics.txt"),
            format!("r_delay={}\nr_area={}\n", self.r_delay, self.r_area),
        )?;
        Ok(())
    }

    /// Loads models previously written by [`CostModels::save`]; `None` when
    /// absent or malformed.
    pub fn load(dir: &Path) -> Option<CostModels> {
        let delay =
            GbdtRegressor::from_text(&std::fs::read_to_string(dir.join("delay.model")).ok()?)
                .ok()?;
        let area = GbdtRegressor::from_text(&std::fs::read_to_string(dir.join("area.model")).ok()?)
            .ok()?;
        let metrics = std::fs::read_to_string(dir.join("metrics.txt")).ok()?;
        let mut r_delay = f64::NAN;
        let mut r_area = f64::NAN;
        for line in metrics.lines() {
            if let Some(v) = line.strip_prefix("r_delay=") {
                r_delay = v.parse().ok()?;
            } else if let Some(v) = line.strip_prefix("r_area=") {
                r_area = v.parse().ok()?;
            }
        }
        Some(CostModels {
            delay: GbdtCost::new(delay),
            area: GbdtCost::new(area),
            r_delay,
            r_area,
        })
    }
}

/// Generates the training corpus and fits the delay and area models.
///
/// Labels come from the same backend used for evaluation: delay from a
/// delay-oriented mapping, area from an area-oriented mapping (no sizing,
/// which only shifts labels by a roughly constant factor).
pub fn train_cost_models(cfg: &TrainConfig, lib: &Library) -> CostModels {
    let rows_labels = generate_corpus(cfg, lib);
    let rows: Vec<Vec<f64>> = rows_labels.iter().map(|(r, _, _)| r.clone()).collect();
    let delays: Vec<f64> = rows_labels.iter().map(|&(_, d, _)| d).collect();
    let areas: Vec<f64> = rows_labels.iter().map(|&(_, _, a)| a).collect();

    let delay_data = Dataset::new(rows.clone(), delays).expect("non-empty corpus");
    let area_data = Dataset::new(rows, areas).expect("non-empty corpus");

    let fit = |data: &Dataset, seed: u64| -> (GbdtRegressor, f64) {
        let (train, test) = data.split_every_kth(5);
        let eval_model = GbdtRegressor::fit(&train, &cfg.gbdt, seed);
        let preds: Vec<f64> = (0..test.len())
            .map(|i| eval_model.predict(test.row(i)))
            .collect();
        let r = pearson_r(&preds, test.labels());
        // final model uses the full corpus
        let final_model = GbdtRegressor::fit(data, &cfg.gbdt, seed);
        (final_model, r)
    };
    let (delay_model, r_delay) = fit(&delay_data, cfg.seed ^ 0xD31A);
    let (area_model, r_area) = fit(&area_data, cfg.seed ^ 0xA3EA);

    CostModels {
        delay: GbdtCost::new(delay_model),
        area: GbdtCost::new(area_model),
        r_delay,
        r_area,
    }
}

/// `(features, delay_label, area_label)` per generated circuit.
///
/// Circuits are generated by parallel workers; each circuit's rows are a
/// pure function of `(cfg, lib, index)`, and the order-preserving map
/// plus serial flatten keep the corpus identical at any thread count.
fn generate_corpus(cfg: &TrainConfig, lib: &Library) -> Vec<(Vec<f64>, f64, f64)> {
    let indices: Vec<u64> = (0..cfg.num_circuits as u64).collect();
    let per_circuit = esyn_par::par_map(esyn_par::Parallelism::Auto, &indices, |_, &i| {
        generate_rows(cfg, lib, i)
    });
    per_circuit.into_iter().flatten().collect()
}

/// Generates the training rows for one random circuit: the raw form plus
/// several *equivalent structural variants* (AIG-optimised forms and
/// e-graph pool samples). Within-circuit variation is what teaches the
/// model to *rank* equivalent candidates — the exact task pool extraction
/// asks of it. The paper's 50 000-circuit corpus gets this diversity from
/// sheer volume; this smaller corpus injects it explicitly.
fn generate_rows(cfg: &TrainConfig, lib: &Library, idx: u64) -> Vec<(Vec<f64>, f64, f64)> {
    // Derive per-circuit shape deterministically from the index.
    let mix = idx
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cfg.seed);
    let span = |lo: usize, hi: usize, salt: u64| -> usize {
        lo + (mix.rotate_left(salt as u32) as usize) % (hi - lo + 1)
    };
    let fc = FuzzConfig {
        num_pis: span(cfg.pis.0, cfg.pis.1, 7),
        num_ands: span(cfg.ands.0, cfg.ands.1, 19),
        num_pos: span(cfg.pos.0, cfg.pos.1, 31),
        locality: 0.4 + 0.5 * ((mix >> 17) % 100) as f64 / 100.0,
    };
    // Mixed-operator networks: the distribution candidates live in
    // (equation-format circuits use free AND/OR/NOT, §3.1).
    let net = random_network(&fc, cfg.seed.wrapping_add(idx));
    let aig = Aig::from_network(&net);

    let mut rows = Vec::new();
    let label = |aig: &Aig, feats: Vec<f64>, rows: &mut Vec<(Vec<f64>, f64, f64)>| {
        // Labels follow the paper: technology mapping of the form as-is
        // (delay from a delay-oriented map, area from an area-oriented
        // one).
        let nl_delay = map_aig(aig, lib, MapMode::Delay);
        let delay = esyn_techmap::sta(&nl_delay, lib, esyn_techmap::PO_CAP).delay;
        let nl_area = map_aig(aig, lib, MapMode::Area);
        let area = nl_area.area(lib);
        rows.push((feats, delay, area));
    };
    let feats_of = |aig: &Aig| -> Vec<f64> {
        Features::from_expr(&network_to_recexpr(&aig.to_network())).to_vec()
    };

    // The raw mixed-operator form, with features computed on its own AST.
    let expr = network_to_recexpr(&net);
    label(&aig, Features::from_expr(&expr).to_vec(), &mut rows);

    // AIG-level structural variants (AND/NOT-shaped features, which pool
    // samples can also exhibit after heavy De Morgan rewriting). The
    // heavier resynthesis passes are skipped on very large circuits to
    // bound corpus-generation time.
    let mut variants = vec![aig.balance()];
    if aig.num_ands() <= 900 {
        variants.push(scripts::dc2(&aig));
        variants.push(aig.rewrite(false));
        variants.push(aig.refactor(false, 8));
    }
    for v in &variants {
        label(v, feats_of(v), &mut rows);
    }

    // E-graph pool samples of the same function (short saturation).
    let limits = crate::flow::SaturationLimits {
        iter_limit: 6,
        node_limit: 4_000,
        time_limit: std::time::Duration::from_secs(2),
    };
    let runner = crate::flow::saturate(&expr, &crate::rules::all_rules(), &limits);
    let pool = extract_pool_with(
        &runner.egraph,
        runner.roots[0],
        Some(&expr),
        &PoolConfig::with_samples(6, mix),
    );
    let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    for cand in pool.iter().take(6) {
        let cand_net = recexpr_to_network(cand, &names);
        let cand_aig = Aig::from_network(&cand_net);
        // Features come from the candidate term itself, exactly as the
        // selector computes them at extraction time.
        label(&cand_aig, Features::from_expr(cand).to_vec(), &mut rows);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reaches_useful_fit() {
        let lib = Library::asap7_like();
        let models = train_cost_models(&TrainConfig::tiny(), &lib);
        // The paper reports R ≈ 0.78/0.76; on the synthetic backend a tiny
        // corpus should already beat 0.6.
        assert!(models.r_delay > 0.6, "delay R = {}", models.r_delay);
        assert!(models.r_area > 0.6, "area R = {}", models.r_area);
    }

    #[test]
    fn save_load_roundtrip() {
        let lib = Library::asap7_like();
        let cfg = TrainConfig {
            num_circuits: 30,
            gbdt: GbdtParams {
                n_estimators: 20,
                ..Default::default()
            },
            ..TrainConfig::tiny()
        };
        let models = train_cost_models(&cfg, &lib);
        let dir = std::env::temp_dir().join("esyn-test-models");
        models.save(&dir).unwrap();
        let loaded = CostModels::load(&dir).expect("reload");
        assert_eq!(loaded.r_delay, models.r_delay);
        // predictions identical
        let feats = vec![5.0, 4.0, 3.0, 12.0, 6.0, 0.1, 11.0];
        assert_eq!(
            loaded.delay.model().predict(&feats),
            models.delay.model().predict(&feats)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_is_deterministic() {
        let lib = Library::asap7_like();
        let cfg = TrainConfig {
            num_circuits: 8,
            ..TrainConfig::tiny()
        };
        let a = generate_corpus(&cfg, &lib);
        let b = generate_corpus(&cfg, &lib);
        assert!(
            a.len() >= 8 * 5,
            "several variants per circuit: {}",
            a.len()
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
            assert_eq!(x.2, y.2);
        }
    }
}
