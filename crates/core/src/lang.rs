//! The Boolean e-graph language `{AND, OR, NOT, constants, variables}`
//! plus the variadic `outs` wrapper that turns a multi-output network into
//! a single e-graph term (rules never touch `outs`).

use esyn_egraph::{Id, Language, RecExpr};
use esyn_eqn::{Network, Node as EqnNode, NodeId};
use std::collections::HashMap;
use std::sync::OnceLock;

// The interner moved into `esyn-egraph` when operators became interned
// engine-wide; re-exported here so `esyn_core::{lang::,}Symbol` keeps
// working.
pub use esyn_egraph::Symbol;

/// The fixed operator symbols of [`BoolLang`], interned once.
struct OpSyms {
    zero: Symbol,
    one: Symbol,
    not: Symbol,
    and: Symbol,
    or: Symbol,
    outs: Symbol,
}

fn ops() -> &'static OpSyms {
    static OPS: OnceLock<OpSyms> = OnceLock::new();
    OPS.get_or_init(|| OpSyms {
        zero: Symbol::intern("0"),
        one: Symbol::intern("1"),
        not: Symbol::intern("!"),
        and: Symbol::intern("*"),
        or: Symbol::intern("+"),
        outs: Symbol::intern("outs"),
    })
}

/// E-node operators of the Boolean language, matching the paper's choice
/// of free {AND, OR, NOT} over input variables (§3.1, Figure 3 notation:
/// `*` for AND, `+` for OR).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BoolLang {
    /// Constant false (`0`) / true (`1`).
    Const(bool),
    /// A named input variable.
    Var(Symbol),
    /// Negation.
    Not([Id; 1]),
    /// Conjunction.
    And([Id; 2]),
    /// Disjunction.
    Or([Id; 2]),
    /// Multi-output wrapper; only ever the root.
    Outs(Vec<Id>),
}

impl BoolLang {
    /// Convenience constructor for NOT.
    pub fn not(x: Id) -> Self {
        BoolLang::Not([x])
    }

    /// Convenience constructor for AND.
    pub fn and(a: Id, b: Id) -> Self {
        BoolLang::And([a, b])
    }

    /// Convenience constructor for OR.
    pub fn or(a: Id, b: Id) -> Self {
        BoolLang::Or([a, b])
    }

    /// Convenience constructor for a variable leaf.
    pub fn var(name: &str) -> Self {
        BoolLang::Var(Symbol::intern(name))
    }
}

impl Language for BoolLang {
    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (BoolLang::Const(a), BoolLang::Const(b)) => a == b,
            (BoolLang::Var(a), BoolLang::Var(b)) => a == b,
            (BoolLang::Not(_), BoolLang::Not(_)) => true,
            (BoolLang::And(_), BoolLang::And(_)) => true,
            (BoolLang::Or(_), BoolLang::Or(_)) => true,
            (BoolLang::Outs(a), BoolLang::Outs(b)) => a.len() == b.len(),
            _ => false,
        }
    }

    fn children(&self) -> &[Id] {
        match self {
            BoolLang::Const(_) | BoolLang::Var(_) => &[],
            BoolLang::Not(c) => c,
            BoolLang::And(c) | BoolLang::Or(c) => c,
            BoolLang::Outs(c) => c,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            BoolLang::Const(_) | BoolLang::Var(_) => &mut [],
            BoolLang::Not(c) => c,
            BoolLang::And(c) | BoolLang::Or(c) => c,
            BoolLang::Outs(c) => c,
        }
    }

    fn op_str(&self) -> &str {
        match self {
            BoolLang::Const(false) => "0",
            BoolLang::Const(true) => "1",
            BoolLang::Var(s) => s.as_str(),
            BoolLang::Not(_) => "!",
            BoolLang::And(_) => "*",
            BoolLang::Or(_) => "+",
            BoolLang::Outs(_) => "outs",
        }
    }

    fn op_sym(&self) -> Symbol {
        // Variable names may not shadow an operator spelling (`from_op`
        // only accepts alphanumeric-leading names and maps `0`/`1` to
        // constants first), so together with the arity this discriminates
        // exactly like `matches` — the invariant `op_key` needs.
        match self {
            BoolLang::Const(false) => ops().zero,
            BoolLang::Const(true) => ops().one,
            BoolLang::Var(s) => *s,
            BoolLang::Not(_) => ops().not,
            BoolLang::And(_) => ops().and,
            BoolLang::Or(_) => ops().or,
            BoolLang::Outs(_) => ops().outs,
        }
    }

    fn from_op(op: Symbol, children: Vec<Id>) -> Result<Self, String> {
        let op = op.as_str();
        let arity = |n: usize| {
            if children.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "`{op}` expects {n} children, got {}",
                    children.len()
                ))
            }
        };
        match op {
            "0" | "false" => {
                arity(0)?;
                Ok(BoolLang::Const(false))
            }
            "1" | "true" => {
                arity(0)?;
                Ok(BoolLang::Const(true))
            }
            "!" | "~" | "NOT" | "not" => {
                arity(1)?;
                Ok(BoolLang::Not([children[0]]))
            }
            "*" | "&" | "AND" | "and" => {
                arity(2)?;
                Ok(BoolLang::And([children[0], children[1]]))
            }
            "+" | "|" | "OR" | "or" => {
                arity(2)?;
                Ok(BoolLang::Or([children[0], children[1]]))
            }
            "outs" | "OUTS" => {
                if children.is_empty() {
                    return Err("`outs` expects at least one child".into());
                }
                Ok(BoolLang::Outs(children))
            }
            var => {
                arity(0)?;
                if var.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
                    Ok(BoolLang::Var(Symbol::intern(var)))
                } else {
                    Err(format!("unknown operator `{var}`"))
                }
            }
        }
    }
}

/// Converts a network into a single e-graph term, preserving DAG sharing.
/// The root is always an `outs` node whose children follow the network's
/// output order.
pub fn network_to_recexpr(net: &Network) -> RecExpr<BoolLang> {
    let mut expr = RecExpr::new();
    let mut map: HashMap<NodeId, Id> = HashMap::new();
    for id in net.topo_order() {
        let node = match net.node(id) {
            EqnNode::Const(v) => BoolLang::Const(v),
            EqnNode::Input(idx) => BoolLang::var(net.input_name(idx)),
            EqnNode::Not(a) => BoolLang::not(map[&a]),
            EqnNode::And(a, b) => BoolLang::and(map[&a], map[&b]),
            EqnNode::Or(a, b) => BoolLang::or(map[&a], map[&b]),
        };
        map.insert(id, expr.add(node));
    }
    let outs: Vec<Id> = net.outputs().iter().map(|(_, id)| map[id]).collect();
    expr.add(BoolLang::Outs(outs));
    expr
}

/// Converts a term back into a network. `output_names` supplies the PO
/// names (padding with `poK` when too short); a non-`outs` root becomes a
/// single output.
pub fn recexpr_to_network(expr: &RecExpr<BoolLang>, output_names: &[String]) -> Network {
    let mut net = Network::new();
    let nodes = expr.as_ref();
    let mut ids: Vec<Option<NodeId>> = vec![None; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        let built = match node {
            BoolLang::Const(v) => net.constant(*v),
            BoolLang::Var(s) => net.input(s.as_str()),
            BoolLang::Not([a]) => {
                let x = ids[usize::from(*a)].expect("child built");
                net.not(x)
            }
            BoolLang::And([a, b]) => {
                let (x, y) = (
                    ids[usize::from(*a)].expect("child built"),
                    ids[usize::from(*b)].expect("child built"),
                );
                net.and(x, y)
            }
            BoolLang::Or([a, b]) => {
                let (x, y) = (
                    ids[usize::from(*a)].expect("child built"),
                    ids[usize::from(*b)].expect("child built"),
                );
                net.or(x, y)
            }
            BoolLang::Outs(_) => net.constant(false), // placeholder; handled below
        };
        ids[i] = Some(built);
    }
    let root = expr.root();
    let name_of = |k: usize| -> String {
        output_names
            .get(k)
            .cloned()
            .unwrap_or_else(|| format!("po{k}"))
    };
    match &nodes[usize::from(root)] {
        BoolLang::Outs(children) => {
            for (k, c) in children.iter().enumerate() {
                let id = ids[usize::from(*c)].expect("child built");
                net.output(name_of(k), id);
            }
        }
        _ => {
            let id = ids[usize::from(root)].expect("root built");
            net.output(name_of(0), id);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    #[test]
    fn symbols_intern_uniquely() {
        let a1 = Symbol::intern("alpha");
        let a2 = Symbol::intern("alpha");
        let b = Symbol::intern("beta");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.as_str(), "alpha");
        assert_eq!(format!("{b}"), "beta");
    }

    #[test]
    fn language_parsing_and_display() {
        let e: RecExpr<BoolLang> = "(+ (* x y) (! (+ x 0)))".parse().unwrap();
        assert_eq!(e.to_string(), "(+ (* x y) (! (+ x 0)))");
        assert!("(* x)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("(! x y)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("(outs)".parse::<RecExpr<BoolLang>>().is_err());
    }

    #[test]
    fn matches_distinguishes_leaf_payloads() {
        let t = BoolLang::Const(true);
        let f = BoolLang::Const(false);
        assert!(!t.matches(&f));
        assert!(t.matches(&BoolLang::Const(true)));
        let x = BoolLang::var("x");
        let y = BoolLang::var("y");
        assert!(!x.matches(&y));
        assert!(x.matches(&BoolLang::var("x")));
    }

    #[test]
    fn network_roundtrip_preserves_function() {
        let net =
            parse_eqn("INORDER = a b c;\nOUTORDER = f g;\nf = (a*b) + !c;\ng = !(a + b*c);\n")
                .unwrap();
        let expr = network_to_recexpr(&net);
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let back = recexpr_to_network(&expr, &names);
        assert_eq!(back.outputs()[0].0, "f");
        assert_eq!(back.outputs()[1].0, "g");
        // align stimulus by input name
        let patterns: Vec<u64> = (0..net.num_inputs() as u64)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
            .collect();
        let lookup: HashMap<&str, u64> = net
            .input_names()
            .iter()
            .map(String::as_str)
            .zip(patterns.iter().copied())
            .collect();
        let back_patterns: Vec<u64> = back
            .input_names()
            .iter()
            .map(|n| lookup[n.as_str()])
            .collect();
        assert_eq!(net.simulate(&patterns), back.simulate(&back_patterns));
    }

    #[test]
    fn sharing_is_preserved_in_conversion() {
        // (a*b) feeds two outputs: the term must reference it once.
        let net = parse_eqn("INORDER = a b;\nOUTORDER = f g;\nf = (a*b);\ng = !(a*b);\n").unwrap();
        let expr = network_to_recexpr(&net);
        // nodes: a, b, and, not, outs = 5 (no duplicate AND)
        assert_eq!(expr.len(), 5);
    }

    #[test]
    fn single_output_without_outs_root() {
        let e: RecExpr<BoolLang> = "(* a b)".parse().unwrap();
        let net = recexpr_to_network(&e, &[]);
        assert_eq!(net.num_outputs(), 1);
        assert_eq!(net.outputs()[0].0, "po0");
    }

    #[test]
    fn constants_roundtrip() {
        let net = parse_eqn("INORDER = a;\nOUTORDER = f;\nf = a * 0;\n").unwrap();
        let expr = network_to_recexpr(&net);
        let back = recexpr_to_network(&expr, &["f".to_owned()]);
        assert!(back.truth_tables()[0].is_zero());
    }
}
