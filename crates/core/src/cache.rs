//! Content-addressing for optimize results: a structural hash over
//! [`Network`]s and a canonical rendering of the full run configuration.
//!
//! `esyn-serve` keys its result cache on [`CacheKey`] — the pair of the
//! circuit's [`structural_hash`] and the [`config_hash`] of
//! `(Objective, EsynConfig)`. The contract the serve-layer cache tests
//! pin down:
//!
//! * parsing the same circuit text twice yields the same circuit hash
//!   (parsers and the hash-consed [`Network`] arena are deterministic);
//! * *any* field of [`EsynConfig`] (or the objective) that differs
//!   produces a different canonical string, and therefore — up to 64-bit
//!   collisions — a different key: extractor choice, thread policy and
//!   saturation budgets all separate, even though the thread policy
//!   cannot change results (the `esyn-par` contract). Keys are
//!   deliberately conservative: a wall-clock `time_limit` stop *is*
//!   schedule-dependent, so aliasing configs that differ only in
//!   scheduling knobs would be unsound.
//!
//! [`canonical_config`] destructures both structs exhaustively — adding
//! a field to either without extending the rendering is a compile error,
//! so the key can never silently under-approximate the configuration.

use crate::flow::{EsynConfig, Objective, SaturationLimits};
use crate::pool::PoolConfig;
use esyn_egraph::FxHasher;
use esyn_eqn::{Network, Node};
use esyn_par::Parallelism;
use std::hash::Hasher;

/// The content address of one optimize request: circuit × configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`structural_hash`] of the input network.
    pub circuit: u64,
    /// [`config_hash`] of the objective and full [`EsynConfig`].
    pub config: u64,
}

/// Computes the [`CacheKey`] for optimising `net` under `(objective, cfg)`.
pub fn cache_key(net: &Network, objective: Objective, cfg: &EsynConfig) -> CacheKey {
    CacheKey {
        circuit: structural_hash(net),
        config: config_hash(objective, cfg),
    }
}

/// [`cache_key`] with a free-form objective tag instead of a builtin
/// [`Objective`] — how named `esyn-objective` objectives participate in
/// content addressing. Callers must namespace their tags (serve uses
/// `named:<registry-name>`) so they can never collide with the builtin
/// `Delay`/`Area`/`Balanced` renderings.
pub fn cache_key_tagged(net: &Network, objective_tag: &str, cfg: &EsynConfig) -> CacheKey {
    CacheKey {
        circuit: structural_hash(net),
        config: config_hash_tagged(objective_tag, cfg),
    }
}

/// Hashes the reachable structure of `net`: ordered input names, the
/// reachable operator DAG (nodes renumbered densely in topological
/// order, so arena garbage and absolute [`esyn_eqn::NodeId`] values do
/// not leak in), and the named outputs. Uses the workspace's
/// deterministic [`FxHasher`] — stable across processes and platforms.
///
/// Two parses of the same circuit text always collide (everything on the
/// path from text to [`Network`] is deterministic); functionally equal
/// but structurally different circuits intentionally do *not*.
pub fn structural_hash(net: &Network) -> u64 {
    let order = net.topo_order();
    // Dense renumbering: position in topo order. `topo_order` is
    // ascending-id, so a node's fanins always precede it.
    let mut dense = vec![u64::MAX; net.len()];
    let mut h = FxHasher::default();
    h.write_usize(net.num_inputs());
    for name in net.input_names() {
        h.write(name.as_bytes());
        h.write_u8(0xFF); // name terminator (names cannot contain 0xFF)
    }
    for (pos, &id) in order.iter().enumerate() {
        dense[id.index()] = pos as u64;
        match net.node(id) {
            Node::Const(v) => {
                h.write_u8(1);
                h.write_u8(u8::from(v));
            }
            Node::Input(i) => {
                h.write_u8(2);
                h.write_u32(i);
            }
            Node::Not(a) => {
                h.write_u8(3);
                h.write_u64(dense[a.index()]);
            }
            Node::And(a, b) => {
                h.write_u8(4);
                h.write_u64(dense[a.index()]);
                h.write_u64(dense[b.index()]);
            }
            Node::Or(a, b) => {
                h.write_u8(5);
                h.write_u64(dense[a.index()]);
                h.write_u64(dense[b.index()]);
            }
        }
    }
    h.write_usize(net.num_outputs());
    for (name, id) in net.outputs() {
        h.write(name.as_bytes());
        h.write_u8(0xFE);
        h.write_u64(dense[id.index()]);
    }
    h.finish()
}

/// The content address of the *saturation phase* only: circuit
/// structural hash × saturation-relevant configuration
/// ([`canonical_saturation_config`]).
///
/// This is the key of `esyn-serve`'s saturated-e-graph cache tier. Two
/// jobs share it exactly when they would build the same e-graph: the
/// circuit, the saturation limits, the rule set and the thread policy
/// all match. Everything downstream of saturation — pool sampling
/// (samples, seed, ratio, extractor engine), the objective, CEC
/// verification, the mapping backend and its choice mode — is
/// deliberately *excluded*, so jobs differing only in those fields reuse
/// the expensive saturated e-graph instead of re-running it.
///
/// The thread policy is included for the same conservative reason as in
/// [`cache_key`]: a wall-clock `time_limit` stop is schedule-dependent,
/// so aliasing configs that differ only in scheduling knobs would be
/// unsound. `use_choices` is also keyed conservatively (it selects the
/// choice-aware e-graph/backend path), which costs sharing but never
/// soundness.
pub fn saturation_cache_key(net: &Network, cfg: &EsynConfig) -> CacheKey {
    CacheKey {
        circuit: structural_hash(net),
        config: saturation_config_hash(cfg),
    }
}

/// [`canonical_saturation_config`], hashed with the deterministic
/// [`FxHasher`].
pub fn saturation_config_hash(cfg: &EsynConfig) -> u64 {
    let mut h = FxHasher::default();
    h.write(canonical_saturation_config(cfg).as_bytes());
    h.finish()
}

/// Renders only the saturation-relevant slice of [`EsynConfig`] as a
/// canonical string: the limits, the (fixed) rule set, the choice mode
/// and the thread policy. The destructuring is exhaustive like
/// [`canonical_config`]'s — adding a config field forces a decision here
/// about whether it affects saturation — with the downstream-only fields
/// (`pool`, `verify`, `target_delay`) explicitly discarded.
pub fn canonical_saturation_config(cfg: &EsynConfig) -> String {
    let EsynConfig {
        limits:
            SaturationLimits {
                iter_limit,
                node_limit,
                time_limit,
            },
        pool: _,         // sampling happens after saturation
        verify: _,       // CEC happens after extraction
        target_delay: _, // mapping happens after extraction
        use_choices,
        parallelism,
    } = cfg;
    format!(
        "sat1;rules=all;iter={iter_limit};nodes={node_limit};time_ns={};choices={use_choices};par={}",
        time_limit.as_nanos(),
        par_str(*parallelism),
    )
}

/// [`canonical_config`], hashed with the deterministic [`FxHasher`].
pub fn config_hash(objective: Objective, cfg: &EsynConfig) -> u64 {
    let mut h = FxHasher::default();
    h.write(canonical_config(objective, cfg).as_bytes());
    h.finish()
}

/// [`canonical_config_tagged`], hashed with the deterministic
/// [`FxHasher`].
pub fn config_hash_tagged(objective_tag: &str, cfg: &EsynConfig) -> u64 {
    let mut h = FxHasher::default();
    h.write(canonical_config_tagged(objective_tag, cfg).as_bytes());
    h.finish()
}

fn par_str(p: Parallelism) -> String {
    match p {
        Parallelism::Auto => "auto".to_owned(),
        Parallelism::Serial => "serial".to_owned(),
        Parallelism::Fixed(n) => format!("fixed{n}"),
    }
}

/// Renders `(objective, cfg)` as a canonical `key=value` string: a fixed
/// field order, exact bit-patterns for floats, and exhaustive
/// destructuring so a new config field cannot be forgotten. Two configs
/// produce the same string iff every field is identical.
///
/// ```
/// use esyn_core::{canonical_config, EsynConfig, Objective};
///
/// let a = EsynConfig::default();
/// let mut b = EsynConfig::default();
/// b.pool.num_samples += 1;
/// assert_ne!(
///     canonical_config(Objective::Delay, &a),
///     canonical_config(Objective::Delay, &b),
/// );
/// assert_eq!(
///     canonical_config(Objective::Area, &a),
///     canonical_config(Objective::Area, &EsynConfig::default()),
/// );
/// ```
pub fn canonical_config(objective: Objective, cfg: &EsynConfig) -> String {
    // The builtin rendering is the tagged rendering of the `Debug`
    // name — byte-identical to the pre-tag `v1` strings, so existing
    // cached entries and the serve byte-replay contract are preserved.
    canonical_config_tagged(&format!("{objective:?}"), cfg)
}

/// [`canonical_config`] with a free-form objective tag: the canonical
/// string for named (non-builtin) objectives. The tag is embedded
/// verbatim, so distinct tags always produce distinct strings.
pub fn canonical_config_tagged(objective_tag: &str, cfg: &EsynConfig) -> String {
    let EsynConfig {
        limits:
            SaturationLimits {
                iter_limit,
                node_limit,
                time_limit,
            },
        pool:
            PoolConfig {
                num_samples,
                p_suboptimal,
                ratio,
                seed,
                include_original,
                include_dag_extreme,
                dag_engine,
                parallelism: pool_par,
            },
        verify,
        target_delay,
        use_choices,
        parallelism,
    } = cfg;
    let target = match target_delay {
        None => "none".to_owned(),
        Some(t) => format!("{:016x}", t.to_bits()),
    };
    format!(
        "v1;obj={objective_tag};iter={iter_limit};nodes={node_limit};time_ns={};\
         samples={num_samples};p={:016x};ratio={}:{};seed={seed};orig={include_original};\
         dagx={include_dag_extreme};engine={dag_engine};pool_par={};verify={verify};\
         target={target};choices={use_choices};par={}",
        time_limit.as_nanos(),
        p_suboptimal.to_bits(),
        ratio.0,
        ratio.1,
        par_str(*pool_par),
        par_str(*parallelism),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;
    use std::time::Duration;

    fn net(src: &str) -> Network {
        parse_eqn(src).unwrap()
    }

    #[test]
    fn same_text_same_hash() {
        let src = "INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n";
        assert_eq!(structural_hash(&net(src)), structural_hash(&net(src)));
    }

    #[test]
    fn structure_names_and_outputs_separate() {
        let base = net("INORDER = a b;\nOUTORDER = f;\nf = a*b;\n");
        let or_gate = net("INORDER = a b;\nOUTORDER = f;\nf = a+b;\n");
        let renamed_out = net("INORDER = a b;\nOUTORDER = g;\ng = a*b;\n");
        let renamed_in = net("INORDER = a c;\nOUTORDER = f;\nf = a*c;\n");
        let h = structural_hash(&base);
        assert_ne!(h, structural_hash(&or_gate));
        assert_ne!(h, structural_hash(&renamed_out));
        assert_ne!(h, structural_hash(&renamed_in));
    }

    #[test]
    fn arena_garbage_does_not_leak_into_the_hash() {
        // Build the same reachable function with and without a dead node.
        let mut a = Network::new();
        let x = a.input("x");
        let y = a.input("y");
        let f = a.and(x, y);
        a.output("f", f);

        let mut b = Network::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.and(x, y);
        let _dead = b.or(x, y);
        b.output("f", f);

        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn every_config_knob_separates_the_key() {
        let base = EsynConfig::default();
        let k = |c: &EsynConfig| config_hash(Objective::Delay, c);
        let base_key = k(&base);

        let variants: Vec<EsynConfig> = vec![
            EsynConfig {
                limits: SaturationLimits {
                    iter_limit: base.limits.iter_limit + 1,
                    ..base.limits
                },
                ..base.clone()
            },
            EsynConfig {
                limits: SaturationLimits {
                    node_limit: base.limits.node_limit + 1,
                    ..base.limits
                },
                ..base.clone()
            },
            EsynConfig {
                limits: SaturationLimits {
                    time_limit: base.limits.time_limit + Duration::from_millis(1),
                    ..base.limits
                },
                ..base.clone()
            },
            EsynConfig {
                pool: PoolConfig {
                    num_samples: base.pool.num_samples + 1,
                    ..base.pool
                },
                ..base.clone()
            },
            EsynConfig {
                pool: PoolConfig {
                    seed: base.pool.seed ^ 1,
                    ..base.pool
                },
                ..base.clone()
            },
            EsynConfig {
                pool: PoolConfig {
                    dag_engine: "exact",
                    ..base.pool
                },
                ..base.clone()
            },
            EsynConfig {
                verify: !base.verify,
                ..base.clone()
            },
            EsynConfig {
                target_delay: Some(123.5),
                ..base.clone()
            },
            EsynConfig {
                use_choices: !base.use_choices,
                ..base.clone()
            },
            EsynConfig {
                parallelism: Parallelism::Fixed(2),
                ..base.clone()
            },
            EsynConfig {
                parallelism: Parallelism::Fixed(4),
                ..base.clone()
            },
            EsynConfig {
                parallelism: Parallelism::Serial,
                ..base.clone()
            },
        ];
        let mut seen = vec![base_key];
        for v in &variants {
            let key = k(v);
            assert_ne!(key, base_key, "variant aliases base: {v:?}");
            assert!(!seen.contains(&key), "two variants alias: {v:?}");
            seen.push(key);
        }
        // The objective is part of the key too.
        assert_ne!(config_hash(Objective::Area, &base), base_key);
        assert_ne!(config_hash(Objective::Balanced, &base), base_key);
    }

    #[test]
    fn tagged_keys_extend_but_never_alias_builtin_keys() {
        let cfg = EsynConfig::default();
        // The builtin rendering is exactly the Debug-name tag — the
        // pre-tag `v1` byte format is preserved.
        for (obj, tag) in [
            (Objective::Delay, "Delay"),
            (Objective::Area, "Area"),
            (Objective::Balanced, "Balanced"),
        ] {
            assert_eq!(
                canonical_config(obj, &cfg),
                canonical_config_tagged(tag, &cfg)
            );
        }
        // Namespaced named-objective tags are distinct from builtins
        // and from each other.
        let mut seen = vec![
            config_hash(Objective::Delay, &cfg),
            config_hash(Objective::Area, &cfg),
            config_hash(Objective::Balanced, &cfg),
        ];
        for tag in ["named:area", "named:techmap", "named:activity"] {
            let h = config_hash_tagged(tag, &cfg);
            assert!(!seen.contains(&h), "tag `{tag}` aliases another objective");
            seen.push(h);
        }
    }

    #[test]
    fn saturation_key_shares_across_downstream_knobs_only() {
        let net = net("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n");
        let base = EsynConfig::default();
        let k = |c: &EsynConfig| saturation_cache_key(&net, c);
        let base_key = k(&base);

        // Downstream-of-saturation knobs must alias: jobs differing only
        // here reuse the saturated e-graph.
        let mut samples = base.clone();
        samples.pool.num_samples += 3;
        let mut seed = base.clone();
        seed.pool.seed ^= 0xBEEF;
        let mut engine = base.clone();
        engine.pool.dag_engine = "exact";
        let mut verify = base.clone();
        verify.verify = !base.verify;
        let mut target = base.clone();
        target.target_delay = Some(77.0);
        for (label, cfg) in [
            ("samples", &samples),
            ("seed", &seed),
            ("dag_engine", &engine),
            ("verify", &verify),
            ("target_delay", &target),
        ] {
            assert_eq!(k(cfg), base_key, "`{label}` must not re-key saturation");
        }

        // Saturation-relevant knobs must separate.
        let mut iter = base.clone();
        iter.limits.iter_limit += 1;
        let mut nodes = base.clone();
        nodes.limits.node_limit += 1;
        let mut time = base.clone();
        time.limits.time_limit += Duration::from_millis(1);
        let mut choices = base.clone();
        choices.use_choices = !base.use_choices;
        let mut par = base.clone();
        par.parallelism = Parallelism::Fixed(2);
        let mut seen = vec![base_key];
        for (label, cfg) in [
            ("iter_limit", &iter),
            ("node_limit", &nodes),
            ("time_limit", &time),
            ("use_choices", &choices),
            ("parallelism", &par),
        ] {
            let key = k(cfg);
            assert!(!seen.contains(&key), "`{label}` aliases another sat key");
            seen.push(key);
        }

        // The saturation key never collides with the whole-result key
        // space (distinct version prefixes: `sat1;` vs `v1;`).
        assert_ne!(
            canonical_saturation_config(&base),
            canonical_config(Objective::Delay, &base)
        );
    }

    #[test]
    fn cache_key_combines_both_halves() {
        let a = net("INORDER = a b;\nOUTORDER = f;\nf = a*b;\n");
        let b = net("INORDER = a b;\nOUTORDER = f;\nf = a+b;\n");
        let cfg = EsynConfig::default();
        let mut cfg2 = EsynConfig::default();
        cfg2.pool.seed ^= 0xDEAD;
        let k = cache_key(&a, Objective::Delay, &cfg);
        assert_eq!(k, cache_key(&a, Objective::Delay, &cfg));
        assert_ne!(k, cache_key(&b, Objective::Delay, &cfg));
        assert_ne!(k, cache_key(&a, Objective::Delay, &cfg2));
        assert_ne!(k, cache_key(&a, Objective::Area, &cfg));
    }
}
