//! Pareto-frontier helpers for the design-space comparison (Figure 6).

/// True when `p` dominates `q` under minimization of both coordinates
/// (no worse in both, strictly better in at least one).
pub fn dominates(p: (f64, f64), q: (f64, f64)) -> bool {
    p.0 <= q.0 && p.1 <= q.1 && (p.0 < q.0 || p.1 < q.1)
}

/// The Pareto frontier of `(x, y)` points under minimization of both
/// coordinates, sorted by `x` ascending. Duplicate points collapse to one.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite coordinates")
            .then(a.1.partial_cmp(&b.1).expect("finite coordinates"))
    });
    sorted.dedup();
    let mut front: Vec<(f64, f64)> = Vec::new();
    let mut best_y = f64::INFINITY;
    for p in sorted {
        if p.1 < best_y {
            best_y = p.1;
            front.push(p);
        }
    }
    front
}

/// True when frontier `a` weakly dominates frontier `b`: every point of
/// `b` is dominated by (or equal to) some point of `a`.
pub fn frontier_dominates(a: &[(f64, f64)], b: &[(f64, f64)]) -> bool {
    b.iter().all(|&q| {
        a.iter()
            .any(|&p| dominates(p, q) || (p.0 == q.0 && p.1 == q.1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_basics() {
        assert!(dominates((1.0, 1.0), (2.0, 2.0)));
        assert!(dominates((1.0, 2.0), (1.0, 3.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0)), "equal never dominates");
        assert!(!dominates((1.0, 3.0), (2.0, 2.0)), "trade-off");
    }

    #[test]
    fn frontier_of_scatter() {
        let pts = [
            (3.0, 1.0),
            (1.0, 3.0),
            (2.0, 2.0),
            (3.0, 3.0), // dominated
            (2.5, 2.5), // dominated
            (1.0, 3.5), // dominated by (1,3)
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]);
    }

    #[test]
    fn frontier_single_point() {
        let front = pareto_front(&[(5.0, 5.0)]);
        assert_eq!(front, vec![(5.0, 5.0)]);
    }

    #[test]
    fn frontier_dominance_check() {
        let better = pareto_front(&[(1.0, 2.0), (2.0, 1.0)]);
        let worse = pareto_front(&[(2.0, 3.0), (3.0, 2.0)]);
        assert!(frontier_dominates(&better, &worse));
        assert!(!frontier_dominates(&worse, &better));
    }

    #[test]
    fn duplicates_collapse() {
        let front = pareto_front(&[(1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }
}
