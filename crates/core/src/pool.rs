//! Pool extraction (§3.2.2) — the paper's extraction method for
//! non-local, non-monotone (technology-aware) cost functions.
//!
//! The candidate pool consists of:
//!
//! * the AST with the fewest nodes (greedy extractor, AST-size cost);
//! * the AST with the least depth (greedy extractor, AST-depth cost);
//! * `num_samples` stochastic samples drawn by traversing the e-classes
//!   bottom-up with two strategies, mixed at the paper's 1:3 ratio:
//!   * **(a)** choose uniformly at random among the e-nodes tied for the
//!     best local cost (unlike the default extractor, which always takes
//!     the first);
//!   * **(b)** with probability `p = 0.2`, deliberately choose an e-node
//!     with sub-optimal local cost.
//!
//! The local cost alternates among AST depth, AST size, and a weighted
//! operator sum (NOT cheaper than AND/OR), per the paper.
//!
//! Every candidate is returned for scoring by an arbitrary cost model —
//! which is the whole point: the model need not be linear or monotone.
//!
//! # Parallel sampling
//!
//! Samples are drawn in parallel ([`PoolConfig::parallelism`]): sample
//! `k` owns a private RNG seeded from `split_seeds(cfg.seed, …)[k]`, so
//! each draw is a pure function of `(e-graph, seed, k)` and the pool is
//! bit-identical at any thread count (deduplication runs serially over
//! the order-preserving [`esyn_par::par_map`] output). Pre-splitting
//! also makes sample streams prefix-closed: growing `num_samples` never
//! changes the samples already drawn.

use crate::cost::WeightedOpsCost;
use crate::lang::BoolLang;
use esyn_egraph::{Analysis, AstDepth, AstSize, EGraph, Extractor, Id, Language, RecExpr};
use esyn_extract::{engine_by_name, extract_best, UnitCost};
use esyn_par::{par_map, Parallelism};
use rand::rngs::StdRng;
use rand::{split_seeds, Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// Pool-extraction parameters; defaults follow the paper (p = 0.2,
/// strategy ratio 1:3, pool size ≈ 100 suffices per Figure 4).
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of stochastic samples (on top of best-size and best-depth).
    pub num_samples: usize,
    /// Probability of a sub-optimal exploration step in strategy (b).
    pub p_suboptimal: f64,
    /// Ratio of strategy (a) to strategy (b) samples.
    pub ratio: (u32, u32),
    /// RNG seed (samples are deterministic given the seed).
    pub seed: u64,
    /// Also keep the *input* form as a candidate. The greedy extremes
    /// optimise tree cost and may trade away DAG sharing; retaining the
    /// original guarantees the pool never regresses below the un-rewritten
    /// circuit (see DESIGN.md, pool-composition note).
    pub include_original: bool,
    /// Also add the greedy *DAG-cost* extreme (the [`dag_engine`] gym
    /// engine under unit node costs): the candidate with the fewest
    /// *shared* nodes. Complements the tree-cost extremes on sharing-heavy
    /// circuits. Off by default so the calibrated paper experiments are
    /// unchanged; the `ablation_pool` bench measures its effect.
    ///
    /// [`dag_engine`]: PoolConfig::dag_engine
    pub include_dag_extreme: bool,
    /// Which `esyn-extract` gym engine draws the DAG-cost extreme when
    /// [`include_dag_extreme`](PoolConfig::include_dag_extreme) is set.
    /// Any name from [`esyn_extract::ENGINE_NAMES`]; the default
    /// `"greedy-dag"` is the engine the former private extractor
    /// implemented, so existing pools are unchanged.
    pub dag_engine: &'static str,
    /// Worker threads for stochastic sampling. The pool is bit-identical
    /// at any setting (see the module docs); this knob trades wall-clock
    /// only. Defaults to [`Parallelism::Auto`] (`ESYN_THREADS` override,
    /// else the hardware count).
    pub parallelism: Parallelism,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            num_samples: 100,
            p_suboptimal: 0.2,
            ratio: (1, 3),
            seed: 0xE5F1,
            include_original: true,
            include_dag_extreme: false,
            dag_engine: "greedy-dag",
            parallelism: Parallelism::Auto,
        }
    }
}

impl PoolConfig {
    /// A small pool for unit tests and examples.
    pub fn small(seed: u64) -> Self {
        PoolConfig {
            num_samples: 12,
            seed,
            ..Default::default()
        }
    }

    /// A pool of `n` samples with the given seed.
    pub fn with_samples(n: usize, seed: u64) -> Self {
        PoolConfig {
            num_samples: n,
            seed,
            ..Default::default()
        }
    }
}

/// Extracts the candidate pool for `root`. Candidates are deduplicated;
/// the two deterministic extremes (best size, best depth) come first.
///
/// # Panics
///
/// Panics if the e-graph is dirty (call `rebuild` first; the runner does)
/// or if `root`'s class is not extractable.
pub fn extract_pool<N>(
    egraph: &EGraph<BoolLang, N>,
    root: Id,
    cfg: &PoolConfig,
) -> Vec<RecExpr<BoolLang>>
where
    N: Analysis<BoolLang> + Sync,
    N::Data: Sync,
{
    extract_pool_with(egraph, root, None, cfg)
}

/// Below this much total sampling work (samples × e-nodes) the samples
/// are drawn inline: spawning workers would cost more than the draws.
const PAR_MIN_WORK: usize = 1 << 16;

/// [`extract_pool`] with the input form available: when
/// `cfg.include_original` is set and `original` is provided, the input
/// term joins the pool (deduplicated like every other candidate).
pub fn extract_pool_with<N>(
    egraph: &EGraph<BoolLang, N>,
    root: Id,
    original: Option<&RecExpr<BoolLang>>,
    cfg: &PoolConfig,
) -> Vec<RecExpr<BoolLang>>
where
    N: Analysis<BoolLang> + Sync,
    N::Data: Sync,
{
    assert!(egraph.is_clean(), "rebuild the e-graph before extraction");
    let mut pool: Vec<RecExpr<BoolLang>> = Vec::new();
    let mut seen: HashSet<RecExpr<BoolLang>> = HashSet::new();

    if cfg.include_original {
        if let Some(orig) = original {
            if seen.insert(orig.clone()) {
                pool.push(orig.clone());
            }
        }
    }

    let (_, best_size) = Extractor::new(egraph, AstSize)
        .find_best(root)
        .expect("root must be extractable");
    if seen.insert(best_size.clone()) {
        pool.push(best_size);
    }
    let (_, best_depth) = Extractor::new(egraph, AstDepth)
        .find_best(root)
        .expect("root must be extractable");
    if seen.insert(best_depth.clone()) {
        pool.push(best_depth);
    }
    if cfg.include_dag_extreme {
        let (_, engine) = engine_by_name::<BoolLang>(cfg.dag_engine)
            .unwrap_or_else(|| panic!("unknown extraction engine `{}`", cfg.dag_engine));
        let (_, best_dag) = extract_best(engine.as_ref(), egraph, root, &UnitCost)
            .expect("root must be extractable");
        if seen.insert(best_dag.clone()) {
            pool.push(best_dag);
        }
    }

    let index = SampleIndex::build(egraph);
    let (ra, rb) = cfg.ratio;
    let cycle = (ra + rb).max(1);
    // One private seed per sample: draw k is a pure function of
    // (e-graph, cfg.seed, k), so the par_map below is schedule-invariant.
    let seeds = split_seeds(cfg.seed, cfg.num_samples);
    let par = cfg
        .parallelism
        .when(cfg.num_samples.saturating_mul(egraph.total_nodes()) >= PAR_MIN_WORK);
    let samples = par_map(par, &seeds, |k, &sample_seed| {
        let strategy = if (k as u32) % cycle < ra {
            Strategy::RandomTiedBest
        } else {
            Strategy::SubOptimal(cfg.p_suboptimal)
        };
        let cost_kind = match k % 3 {
            0 => LocalCost::Depth,
            1 => LocalCost::Size,
            _ => LocalCost::WeightedOps,
        };
        let mut rng = StdRng::seed_from_u64(sample_seed);
        index.sample(egraph, root, strategy, cost_kind, &mut rng)
    });
    for expr in samples.into_iter().flatten() {
        if seen.insert(expr.clone()) {
            pool.push(expr);
        }
    }
    pool
}

#[derive(Clone, Copy, Debug)]
enum Strategy {
    RandomTiedBest,
    SubOptimal(f64),
}

#[derive(Clone, Copy, Debug)]
enum LocalCost {
    Depth,
    Size,
    WeightedOps,
}

impl LocalCost {
    fn of(self, node: &BoolLang, child_cost: impl Fn(Id) -> f64) -> f64 {
        match self {
            LocalCost::Depth => {
                1.0 + node
                    .children()
                    .iter()
                    .map(|&c| child_cost(c))
                    .fold(0.0, f64::max)
            }
            LocalCost::Size => 1.0 + node.children().iter().map(|&c| child_cost(c)).sum::<f64>(),
            LocalCost::WeightedOps => {
                let w = WeightedOpsCost::default();
                let own = match node {
                    BoolLang::And(_) => w.w_and,
                    BoolLang::Or(_) => w.w_or,
                    BoolLang::Not(_) => w.w_not,
                    _ => 0.0,
                };
                own + node.children().iter().map(|&c| child_cost(c)).sum::<f64>()
            }
        }
    }
}

/// Precomputed traversal structure shared by all samples: per-class e-node
/// lists with deduplicated child classes, and a reverse (parent) index.
struct SampleIndex {
    class_ids: Vec<Id>,
    class_pos: HashMap<Id, usize>,
    /// enodes[class][k] = (enode, distinct child class positions)
    enodes: Vec<Vec<(BoolLang, Vec<usize>)>>,
    /// parents[class] = list of (parent class pos, parent enode pos)
    parents: Vec<Vec<(usize, usize)>>,
}

impl SampleIndex {
    fn build<N: Analysis<BoolLang>>(egraph: &EGraph<BoolLang, N>) -> Self {
        let class_ids: Vec<Id> = egraph.classes().map(|c| c.id).collect();
        let class_pos: HashMap<Id, usize> = class_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut enodes: Vec<Vec<(BoolLang, Vec<usize>)>> = Vec::with_capacity(class_ids.len());
        for &cid in &class_ids {
            let class = egraph.class(cid);
            let list = class
                .nodes()
                .iter()
                .map(|n| {
                    let mut kids: Vec<usize> = n
                        .children()
                        .iter()
                        .map(|&c| class_pos[&egraph.find(c)])
                        .collect();
                    kids.sort_unstable();
                    kids.dedup();
                    (n.clone(), kids)
                })
                .collect();
            enodes.push(list);
        }
        let mut parents: Vec<Vec<(usize, usize)>> = vec![Vec::new(); class_ids.len()];
        for (ci, list) in enodes.iter().enumerate() {
            for (ni, (_, kids)) in list.iter().enumerate() {
                for &k in kids {
                    parents[k].push((ci, ni));
                }
            }
        }
        SampleIndex {
            class_ids,
            class_pos,
            enodes,
            parents,
        }
    }

    /// Draws one sample: resolves classes bottom-up in wave order, choosing
    /// an e-node per class according to `strategy` under `cost_kind`.
    fn sample<N: Analysis<BoolLang>>(
        &self,
        egraph: &EGraph<BoolLang, N>,
        root: Id,
        strategy: Strategy,
        cost_kind: LocalCost,
        rng: &mut StdRng,
    ) -> Option<RecExpr<BoolLang>> {
        let n = self.class_ids.len();
        let mut remaining: Vec<Vec<u32>> = self
            .enodes
            .iter()
            .map(|list| list.iter().map(|(_, kids)| kids.len() as u32).collect())
            .collect();
        let mut resolved_cost: Vec<Option<f64>> = vec![None; n];
        let mut chosen: Vec<Option<usize>> = vec![None; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut enqueued = vec![false; n];

        for ci in 0..n {
            if self.enodes[ci].iter().any(|(_, kids)| kids.is_empty()) {
                queue.push_back(ci);
                enqueued[ci] = true;
            }
        }

        while let Some(ci) = queue.pop_front() {
            if chosen[ci].is_some() {
                continue;
            }
            // ready e-nodes right now
            let ready: Vec<usize> = (0..self.enodes[ci].len())
                .filter(|&ni| remaining[ci][ni] == 0)
                .collect();
            if ready.is_empty() {
                enqueued[ci] = false;
                continue;
            }
            let costs: Vec<f64> = ready
                .iter()
                .map(|&ni| {
                    let (node, _) = &self.enodes[ci][ni];
                    cost_kind.of(node, |id| {
                        resolved_cost[self.class_pos[&egraph.find(id)]]
                            .expect("ready e-node has resolved children")
                    })
                })
                .collect();
            let pick = match strategy {
                Strategy::RandomTiedBest => pick_tied_best(&ready, &costs, rng),
                Strategy::SubOptimal(p) => {
                    if ready.len() > 1 && rng.gen_bool(p) {
                        ready[rng.gen_range(0..ready.len())]
                    } else {
                        pick_tied_best(&ready, &costs, rng)
                    }
                }
            };
            let pick_cost = costs[ready.iter().position(|&r| r == pick).expect("picked")];
            chosen[ci] = Some(pick);
            resolved_cost[ci] = Some(pick_cost);
            // release parents
            for &(pci, pni) in &self.parents[ci] {
                let r = &mut remaining[pci][pni];
                if *r > 0 {
                    *r -= 1;
                    if *r == 0 && chosen[pci].is_none() && !enqueued[pci] {
                        queue.push_back(pci);
                        enqueued[pci] = true;
                    }
                }
            }
        }

        // Materialize the chosen term from the root.
        let root_pos = self.class_pos[&egraph.find(root)];
        chosen[root_pos]?;
        let mut expr = RecExpr::new();
        let mut built: HashMap<usize, Id> = HashMap::new();
        self.materialize(root_pos, &chosen, &mut built, &mut expr);
        Some(expr)
    }

    fn materialize(
        &self,
        ci: usize,
        chosen: &[Option<usize>],
        built: &mut HashMap<usize, Id>,
        expr: &mut RecExpr<BoolLang>,
    ) -> Id {
        if let Some(&id) = built.get(&ci) {
            return id;
        }
        let ni = chosen[ci].expect("resolved class");
        let (node, _) = &self.enodes[ci][ni];
        let remapped = node.map_children(|c| {
            // children here are canonical ids; translate to class positions
            let pos = self.class_pos[&c];
            self.materialize(pos, chosen, built, expr)
        });
        let id = expr.add(remapped);
        built.insert(ci, id);
        id
    }
}

fn pick_tied_best(ready: &[usize], costs: &[f64], rng: &mut StdRng) -> usize {
    let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let tied: Vec<usize> = ready
        .iter()
        .zip(costs)
        .filter(|(_, &c)| c <= best + 1e-12)
        .map(|(&r, _)| r)
        .collect();
    tied[rng.gen_range(0..tied.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ConstFold;
    use crate::lang::{network_to_recexpr, recexpr_to_network};
    use crate::rules::all_rules;
    use esyn_cec::{check_equivalence, EquivResult};
    use esyn_egraph::Runner;
    use esyn_eqn::parse_eqn;

    fn saturated_runner(src: &str) -> Runner<BoolLang, ConstFold> {
        let net = parse_eqn(src).unwrap();
        let expr = network_to_recexpr(&net);
        Runner::with_analysis(ConstFold)
            .with_expr(&expr)
            .with_iter_limit(10)
            .with_node_limit(20_000)
            .run(&all_rules())
    }

    #[test]
    fn pool_contains_extremes_and_samples() {
        let runner = saturated_runner("INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n");
        let pool = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(40, 3),
        );
        assert!(pool.len() >= 3, "pool has only {} candidates", pool.len());
        // all candidates distinct
        let set: HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), pool.len());
    }

    #[test]
    fn every_candidate_is_equivalent_to_the_input() {
        let src = "INORDER = a b c d;\nOUTORDER = f g;\nf = (a*b) + (!a*c);\ng = (a+d)*(b+c);\n";
        let original = parse_eqn(src).unwrap();
        let runner = saturated_runner(src);
        let pool = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(30, 11),
        );
        let names: Vec<String> = original.outputs().iter().map(|(n, _)| n.clone()).collect();
        for (i, cand) in pool.iter().enumerate() {
            let net = recexpr_to_network(cand, &names);
            assert_eq!(
                check_equivalence(&original, &net),
                EquivResult::Equivalent,
                "candidate {i} not equivalent: {cand}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let src = "INORDER = a b c;\nOUTORDER = f;\nf = (a + b) * (a + c);\n";
        let runner = saturated_runner(src);
        let p1 = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(20, 5),
        );
        let p2 = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(20, 5),
        );
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_seeds_reach_different_pools() {
        let src = "INORDER = a b c d;\nOUTORDER = f;\nf = (a*b) + (c*d) + (a*c) + (b*d);\n";
        let runner = saturated_runner(src);
        let p1 = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(25, 1),
        );
        let p2 = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(25, 2),
        );
        // The deterministic extremes agree; the sampled tails should differ
        // for a circuit with this many equivalent forms.
        assert_ne!(p1, p2, "distinct seeds should explore different forms");
    }

    #[test]
    fn bigger_pools_find_no_fewer_forms() {
        let src = "INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n";
        let runner = saturated_runner(src);
        let small = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(5, 9),
        );
        let large = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(80, 9),
        );
        assert!(large.len() >= small.len());
    }

    #[test]
    fn dag_extreme_joins_pool_and_stays_equivalent() {
        // Reconvergent sharing: (a+b) feeds both products.
        let src = "INORDER = a b c d;\nOUTORDER = f;\nf = ((a+b)*c) + ((a+b)*d);\n";
        let original = parse_eqn(src).unwrap();
        let runner = saturated_runner(src);
        let cfg = PoolConfig {
            include_dag_extreme: true,
            ..PoolConfig::with_samples(10, 7)
        };
        let pool = extract_pool(&runner.egraph, runner.roots[0], &cfg);
        let names: Vec<String> = original.outputs().iter().map(|(n, _)| n.clone()).collect();
        for cand in &pool {
            let net = recexpr_to_network(cand, &names);
            assert_eq!(check_equivalence(&original, &net), EquivResult::Equivalent);
        }
        // With the option off, the pool is a (non-strict) subset situation:
        // the dag extreme may add at most one extra candidate.
        let base = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(10, 7),
        );
        assert!(pool.len() >= base.len());
        assert!(pool.len() <= base.len() + 1);
    }

    #[test]
    fn dag_extreme_engine_is_selectable() {
        // The knob accepts any gym engine; the sharing-exact engine must
        // also produce an equivalent candidate.
        let src = "INORDER = a b c d;\nOUTORDER = f;\nf = ((a+b)*c) + ((a+b)*d);\n";
        let original = parse_eqn(src).unwrap();
        let runner = saturated_runner(src);
        let cfg = PoolConfig {
            include_dag_extreme: true,
            dag_engine: "global-greedy-dag",
            ..PoolConfig::with_samples(10, 7)
        };
        let pool = extract_pool(&runner.egraph, runner.roots[0], &cfg);
        let names: Vec<String> = original.outputs().iter().map(|(n, _)| n.clone()).collect();
        for cand in &pool {
            let net = recexpr_to_network(cand, &names);
            assert_eq!(check_equivalence(&original, &net), EquivResult::Equivalent);
        }
    }

    #[test]
    fn pool_is_identical_at_any_thread_count() {
        let src = "INORDER = a b c d;\nOUTORDER = f;\nf = (a*b) + (c*d) + (a*c) + (b*d);\n";
        let runner = saturated_runner(src);
        let pool_at = |par: esyn_par::Parallelism| {
            let cfg = PoolConfig {
                parallelism: par,
                ..PoolConfig::with_samples(40, 21)
            };
            extract_pool(&runner.egraph, runner.roots[0], &cfg)
        };
        let serial = pool_at(esyn_par::Parallelism::Serial);
        for t in [2, 4, 8] {
            assert_eq!(
                pool_at(esyn_par::Parallelism::Fixed(t)),
                serial,
                "pool differs at {t} threads"
            );
        }
    }

    #[test]
    fn sample_streams_are_prefix_closed() {
        // Growing the pool must never change the samples already drawn —
        // the property Figure 4's prefix sweep relies on, guaranteed by
        // per-sample seed splitting.
        let src = "INORDER = a b c d;\nOUTORDER = f;\nf = (a*b) + (c*d) + (a*c) + (b*d);\n";
        let runner = saturated_runner(src);
        let small = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(10, 9),
        );
        let large = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(60, 9),
        );
        assert_eq!(large[..small.len()], small[..]);
    }

    #[test]
    fn best_size_candidate_is_first_and_smallest() {
        let src = "INORDER = a b c;\nOUTORDER = f;\nf = (a*b) + (a*c);\n";
        let runner = saturated_runner(src);
        let pool = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(30, 17),
        );
        let first_size = pool[0].len();
        for cand in &pool {
            assert!(cand.len() >= first_size, "{cand}");
        }
    }
}
