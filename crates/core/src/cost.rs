//! Candidate cost functions for pool selection.
//!
//! The paper contrasts local heuristics (AST size / depth, usable by the
//! vanilla extractor) with learned, technology-aware models (usable only
//! through pool extraction because they are neither local nor monotone).

use crate::features::Features;
use esyn_gbdt::GbdtRegressor;

/// Scores a candidate AST from its features (lower is better).
///
/// `Sync` because pool scoring fans candidates out over `esyn-par`
/// workers that share one scorer.
pub trait CandidateCost: Sync {
    /// The cost of a candidate with features `feats`.
    fn cost(&self, feats: &Features) -> f64;
}

/// AST node count — the vanilla area proxy.
#[derive(Clone, Copy, Debug, Default)]
pub struct AstSizeCost;

impl CandidateCost for AstSizeCost {
    fn cost(&self, feats: &Features) -> f64 {
        feats.num_nodes as f64
    }
}

/// AST depth — the vanilla delay proxy.
#[derive(Clone, Copy, Debug, Default)]
pub struct AstDepthCost;

impl CandidateCost for AstDepthCost {
    fn cost(&self, feats: &Features) -> f64 {
        feats.depth as f64
    }
}

/// Weighted operator count; the paper assigns NOT a lower weight than
/// AND/OR because inverters are nearly free after mapping.
#[derive(Clone, Copy, Debug)]
pub struct WeightedOpsCost {
    /// Weight of an AND node.
    pub w_and: f64,
    /// Weight of an OR node.
    pub w_or: f64,
    /// Weight of a NOT node.
    pub w_not: f64,
}

impl Default for WeightedOpsCost {
    fn default() -> Self {
        WeightedOpsCost {
            w_and: 1.0,
            w_or: 1.0,
            w_not: 0.3,
        }
    }
}

impl CandidateCost for WeightedOpsCost {
    fn cost(&self, feats: &Features) -> f64 {
        self.w_and * feats.num_and as f64
            + self.w_or * feats.num_or as f64
            + self.w_not * feats.num_not as f64
    }
}

/// A learned technology-aware cost model (the paper's XGBoost regressor,
/// here a [`GbdtRegressor`]).
#[derive(Clone, Debug)]
pub struct GbdtCost {
    model: GbdtRegressor,
}

impl GbdtCost {
    /// Wraps a trained regressor.
    ///
    /// # Panics
    ///
    /// Panics if the model was not trained on [`Features::LEN`] features.
    pub fn new(model: GbdtRegressor) -> Self {
        assert_eq!(
            model.num_features(),
            Features::LEN,
            "cost model must consume the documented feature vector"
        );
        GbdtCost { model }
    }

    /// The wrapped regressor.
    pub fn model(&self) -> &GbdtRegressor {
        &self.model
    }
}

impl CandidateCost for GbdtCost {
    fn cost(&self, feats: &Features) -> f64 {
        self.model.predict(&feats.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::BoolLang;
    use esyn_egraph::RecExpr;
    use esyn_gbdt::{Dataset, GbdtParams};

    fn feats(s: &str) -> Features {
        let e: RecExpr<BoolLang> = s.parse().unwrap();
        Features::from_expr(&e)
    }

    #[test]
    fn heuristic_costs_rank_as_expected() {
        let small = feats("(* a b)");
        let big = feats("(+ (* a b) (* c d))");
        assert!(AstSizeCost.cost(&small) < AstSizeCost.cost(&big));
        let shallow = feats("(+ (* a b) (* c d))");
        let deep = feats("(* (* (* a b) c) d)");
        assert!(AstDepthCost.cost(&shallow) < AstDepthCost.cost(&deep));
    }

    #[test]
    fn weighted_ops_discount_inverters() {
        let w = WeightedOpsCost::default();
        let with_nots = feats("(* (! a) (! b))");
        let with_ands = feats("(* (* a b) c)");
        assert!(w.cost(&with_nots) < w.cost(&with_ands));
    }

    #[test]
    fn gbdt_cost_wraps_model() {
        // train a toy model: cost = num_nodes
        let rows: Vec<Vec<f64>> = (1..60)
            .map(|i| {
                let mut v = vec![0.0; Features::LEN];
                v[3] = i as f64; // num_nodes
                v[0] = (i / 2) as f64;
                v
            })
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[3] * 2.0).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = esyn_gbdt::GbdtRegressor::fit(
            &data,
            &GbdtParams {
                n_estimators: 50,
                ..Default::default()
            },
            1,
        );
        let cost = GbdtCost::new(model);
        let small = feats("(* a b)");
        let big = feats("(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))");
        assert!(cost.cost(&small) < cost.cost(&big));
    }

    #[test]
    #[should_panic(expected = "feature vector")]
    fn gbdt_cost_rejects_wrong_arity() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![1.0, 2.0]).unwrap();
        let model = esyn_gbdt::GbdtRegressor::fit(&data, &GbdtParams::default(), 1);
        let _ = GbdtCost::new(model);
    }
}
