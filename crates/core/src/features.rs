//! AST feature extraction for the cost-model regression (§3.2.1).
//!
//! The paper's feature set: per-operator counts, AST node count, AST
//! depth, and two graph-shape features, density and edge sum. The term is
//! a DAG here (sharing preserved), so "AST node count" counts distinct
//! nodes and "edge sum" counts parent→child references; the artificial
//! `outs` wrapper is excluded from all features.

use crate::lang::BoolLang;
use esyn_egraph::{Language, RecExpr};

/// The feature vector of one candidate AST.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Features {
    /// Number of AND operators.
    pub num_and: usize,
    /// Number of OR operators.
    pub num_or: usize,
    /// Number of NOT operators.
    pub num_not: usize,
    /// Total nodes (operators + leaves), excluding the `outs` wrapper.
    pub num_nodes: usize,
    /// Longest leaf-to-root path (leaves count 1), excluding `outs`.
    pub depth: usize,
    /// Directed graph density `E / (V·(V−1))`.
    pub density: f64,
    /// Total edge count `E`.
    pub edge_sum: usize,
}

impl Features {
    /// Extracts features from a term (with or without an `outs` root).
    pub fn from_expr(expr: &RecExpr<BoolLang>) -> Features {
        let nodes = expr.as_ref();
        let mut f = Features {
            num_and: 0,
            num_or: 0,
            num_not: 0,
            num_nodes: 0,
            depth: 0,
            density: 0.0,
            edge_sum: 0,
        };
        let mut depth = vec![0usize; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            let is_outs = matches!(node, BoolLang::Outs(_));
            if !is_outs {
                f.num_nodes += 1;
                f.edge_sum += node.children().len();
                match node {
                    BoolLang::And(_) => f.num_and += 1,
                    BoolLang::Or(_) => f.num_or += 1,
                    BoolLang::Not(_) => f.num_not += 1,
                    _ => {}
                }
            }
            let child_max = node
                .children()
                .iter()
                .map(|&c| depth[usize::from(c)])
                .max()
                .unwrap_or(0);
            depth[i] = if is_outs { child_max } else { 1 + child_max };
            f.depth = f.depth.max(depth[i]);
        }
        if f.num_nodes > 1 {
            f.density = f.edge_sum as f64 / (f.num_nodes as f64 * (f.num_nodes as f64 - 1.0));
        }
        f
    }

    /// The regression input vector, in a fixed documented order:
    /// `[num_and, num_or, num_not, num_nodes, depth, density, edge_sum]`.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.num_and as f64,
            self.num_or as f64,
            self.num_not as f64,
            self.num_nodes as f64,
            self.depth as f64,
            self.density,
            self.edge_sum as f64,
        ]
    }

    /// Number of features in [`Features::to_vec`].
    pub const LEN: usize = 7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_figure3_example() {
        // (+ (* x y) (* x z)) with shared x: 6 distinct nodes
        let e: RecExpr<BoolLang> = "(+ (* x y) (* x z))".parse().unwrap();
        let f = Features::from_expr(&e);
        assert_eq!(f.num_and, 2);
        assert_eq!(f.num_or, 1);
        assert_eq!(f.num_not, 0);
        assert_eq!(f.num_nodes, 7); // parse does not share leaves: x appears twice
        assert_eq!(f.depth, 3);
        assert_eq!(f.edge_sum, 6);
    }

    #[test]
    fn outs_wrapper_is_excluded() {
        let plain: RecExpr<BoolLang> = "(* a b)".parse().unwrap();
        let wrapped: RecExpr<BoolLang> = "(outs (* a b))".parse().unwrap();
        let fp = Features::from_expr(&plain);
        let fw = Features::from_expr(&wrapped);
        assert_eq!(fp.num_nodes, fw.num_nodes);
        assert_eq!(fp.depth, fw.depth);
        assert_eq!(fp.edge_sum, fw.edge_sum);
    }

    #[test]
    fn density_of_chain() {
        // (! (! (! a))): V=4, E=3, density = 3/12
        let e: RecExpr<BoolLang> = "(! (! (! a)))".parse().unwrap();
        let f = Features::from_expr(&e);
        assert_eq!(f.num_not, 3);
        assert!((f.density - 0.25).abs() < 1e-12);
        assert_eq!(f.depth, 4);
    }

    #[test]
    fn single_leaf_features() {
        let e: RecExpr<BoolLang> = "a".parse().unwrap();
        let f = Features::from_expr(&e);
        assert_eq!(f.num_nodes, 1);
        assert_eq!(f.depth, 1);
        assert_eq!(f.edge_sum, 0);
        assert_eq!(f.density, 0.0);
    }

    #[test]
    fn vector_layout_is_stable() {
        let e: RecExpr<BoolLang> = "(+ (* a b) (! c))".parse().unwrap();
        let f = Features::from_expr(&e);
        let v = f.to_vec();
        assert_eq!(v.len(), Features::LEN);
        assert_eq!(v[0], f.num_and as f64);
        assert_eq!(v[4], f.depth as f64);
        assert_eq!(v[6], f.edge_sum as f64);
    }
}
