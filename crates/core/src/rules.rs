//! The Boolean-algebra rewrite rules of the paper's Table 1.
//!
//! Bidirectional rules ("⇔" in the table) become two `Rewrite`s; pure
//! simplifications ("⇒") are applied left-to-right only, exactly as the
//! paper prescribes. Two rules are *added* beyond the table and called out
//! in DESIGN.md: `or-identity` (`a + 0 ⇒ a`, the obvious dual of `a*1 ⇒ a`
//! which the table lists) and `not-not` (`¬¬a ⇒ a`, required for the
//! De Morgan rules to compose — without it the e-class of `¬¬a` would
//! never rejoin `a`).

use crate::lang::BoolLang;
use esyn_egraph::Rewrite;

/// The rule classes of Table 1 (used for ablation studies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleClass {
    /// Identities, annihilators, complements (`a*1⇒a`, `(¬a)*a⇒0`, ...).
    Complements,
    /// Absorption (`a*(a+b) ⇒ a`, `a+(a*b) ⇒ a`).
    Covering,
    /// Combining (`(a*b)+(a*¬b) ⇒ a` and its dual).
    Combining,
    /// Idempotency (`a*a ⇒ a`, `a+a ⇒ a`).
    Idempotency,
    /// Commutativity (bidirectional; self-inverse, so one direction each).
    Commutativity,
    /// Associativity (bidirectional).
    Associativity,
    /// Distributivity (three directed rules).
    Distributivity,
    /// Consensus (redundant-term elimination, both polarities).
    Consensus,
    /// De Morgan (push negations inward).
    DeMorgan,
}

/// All rule classes, in Table 1 order.
pub const ALL_CLASSES: [RuleClass; 9] = [
    RuleClass::Complements,
    RuleClass::Covering,
    RuleClass::Combining,
    RuleClass::Idempotency,
    RuleClass::Commutativity,
    RuleClass::Associativity,
    RuleClass::Distributivity,
    RuleClass::Consensus,
    RuleClass::DeMorgan,
];

/// `(name, lhs, rhs)` triplets per class.
fn specs(class: RuleClass) -> &'static [(&'static str, &'static str, &'static str)] {
    match class {
        RuleClass::Complements => &[
            ("and-identity", "(* ?a 1)", "?a"),
            ("and-annihilate", "(* ?a 0)", "0"),
            ("or-annihilate", "(+ ?a 1)", "1"),
            ("or-identity", "(+ ?a 0)", "?a"), // added; see module docs
            ("and-complement", "(* (! ?a) ?a)", "0"),
            ("or-complement", "(+ (! ?a) ?a)", "1"),
            ("not-not", "(! (! ?a))", "?a"), // added; see module docs
        ],
        RuleClass::Covering => &[
            ("cover-and", "(* ?a (+ ?a ?b))", "?a"),
            ("cover-or", "(+ ?a (* ?a ?b))", "?a"),
        ],
        RuleClass::Combining => &[
            ("combine-or", "(+ (* ?a ?b) (* ?a (! ?b)))", "?a"),
            ("combine-and", "(* (+ ?a ?b) (+ ?a (! ?b)))", "?a"),
        ],
        RuleClass::Idempotency => &[
            ("idem-and", "(* ?a ?a)", "?a"),
            ("idem-or", "(+ ?a ?a)", "?a"),
        ],
        RuleClass::Commutativity => &[
            ("comm-and", "(* ?a ?b)", "(* ?b ?a)"),
            ("comm-or", "(+ ?a ?b)", "(+ ?b ?a)"),
        ],
        RuleClass::Associativity => &[
            ("assoc-and", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"),
            ("assoc-and-rev", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
            ("assoc-or", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
            ("assoc-or-rev", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        ],
        RuleClass::Distributivity => &[
            (
                "dist-and-over-or",
                "(* ?a (+ ?b ?c))",
                "(+ (* ?a ?b) (* ?a ?c))",
            ),
            (
                "dist-or-factor",
                "(* (+ ?a ?b) (+ ?a ?c))",
                "(+ ?a (* ?b ?c))",
            ),
            (
                "dist-and-factor",
                "(+ (* ?a ?b) (* ?a ?c))",
                "(* ?a (+ ?b ?c))",
            ),
        ],
        RuleClass::Consensus => &[
            (
                "consensus-or",
                "(+ (+ (* ?a ?b) (* (! ?a) ?c)) (* ?b ?c))",
                "(+ (* ?a ?b) (* (! ?a) ?c))",
            ),
            (
                "consensus-and",
                "(* (* (+ ?a ?b) (+ (! ?a) ?c)) (+ ?b ?c))",
                "(* (+ ?a ?b) (+ (! ?a) ?c))",
            ),
        ],
        RuleClass::DeMorgan => &[
            ("demorgan-and", "(! (* ?a ?b))", "(+ (! ?a) (! ?b))"),
            ("demorgan-or", "(! (+ ?a ?b))", "(* (! ?a) (! ?b))"),
        ],
    }
}

/// The rewrites of the given classes.
///
/// # Panics
///
/// Panics only if a built-in rule fails to parse (a bug caught by tests).
pub fn rules_for(classes: &[RuleClass]) -> Vec<Rewrite<BoolLang>> {
    classes
        .iter()
        .flat_map(|&c| specs(c).iter())
        .map(|(name, lhs, rhs)| Rewrite::parse(name, lhs, rhs).expect("built-in rule must parse"))
        .collect()
}

/// The complete Table 1 rule set (24 directed rewrites).
pub fn all_rules() -> Vec<Rewrite<BoolLang>> {
    rules_for(&ALL_CLASSES)
}

/// All rules except those of `excluded` — the ablation helper.
pub fn rules_without(excluded: RuleClass) -> Vec<Rewrite<BoolLang>> {
    let classes: Vec<RuleClass> = ALL_CLASSES
        .iter()
        .copied()
        .filter(|&c| c != excluded)
        .collect();
    rules_for(&classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ConstFold;
    use crate::lang::BoolLang;
    use esyn_egraph::{AstSize, Pattern, RecExpr, Runner};

    /// Evaluates a pattern under an assignment of its (≤3) variables by
    /// instantiating ?a, ?b, ?c with fresh leaves and interpreting the
    /// tree.
    fn eval_pattern(text: &str, assign: &[(&str, bool)]) -> bool {
        let concrete = text
            .replace("?a", "va")
            .replace("?b", "vb")
            .replace("?c", "vc");
        let expr: RecExpr<BoolLang> = concrete.parse().unwrap();
        fn go(nodes: &[BoolLang], idx: usize, assign: &[(&str, bool)]) -> bool {
            match &nodes[idx] {
                BoolLang::Const(v) => *v,
                BoolLang::Var(s) => {
                    assign
                        .iter()
                        .find(|(n, _)| *n == s.as_str())
                        .expect("assigned var")
                        .1
                }
                BoolLang::Not([a]) => !go(nodes, usize::from(*a), assign),
                BoolLang::And([a, b]) => {
                    go(nodes, usize::from(*a), assign) && go(nodes, usize::from(*b), assign)
                }
                BoolLang::Or([a, b]) => {
                    go(nodes, usize::from(*a), assign) || go(nodes, usize::from(*b), assign)
                }
                BoolLang::Outs(_) => unreachable!("no outs in rules"),
            }
        }
        go(expr.as_ref(), expr.as_ref().len() - 1, assign)
    }

    #[test]
    fn every_rule_is_sound() {
        // exhaustive check over all assignments of a, b, c
        for &class in &ALL_CLASSES {
            for (name, lhs, rhs) in specs(class) {
                for bits in 0..8u8 {
                    let assign = [
                        ("va", bits & 1 == 1),
                        ("vb", bits & 2 == 2),
                        ("vc", bits & 4 == 4),
                    ];
                    assert_eq!(
                        eval_pattern(lhs, &assign),
                        eval_pattern(rhs, &assign),
                        "rule {name} unsound under {assign:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rule_count_matches_table() {
        // Table 1 expands to 24 directed rules (the two "⇔" associativity
        // rows become four; commutativity is self-inverse, so one directed
        // rule per row suffices); +2 documented additions = 26.
        assert_eq!(all_rules().len(), 26);
    }

    #[test]
    fn rules_parse_as_patterns() {
        for &class in &ALL_CLASSES {
            for (name, lhs, rhs) in specs(class) {
                assert!(Pattern::<BoolLang>::parse(lhs).is_ok(), "{name} lhs parses");
                assert!(Pattern::<BoolLang>::parse(rhs).is_ok(), "{name} rhs parses");
            }
        }
    }

    #[test]
    fn rules_without_excludes_class() {
        let n_all = all_rules().len();
        let n_wo = rules_without(RuleClass::DeMorgan).len();
        assert_eq!(n_all - n_wo, specs(RuleClass::DeMorgan).len());
    }

    fn simplify(input: &str) -> String {
        let expr: RecExpr<BoolLang> = input.parse().unwrap();
        let runner = Runner::with_analysis(ConstFold)
            .with_expr(&expr)
            .with_iter_limit(12)
            .with_node_limit(30_000)
            .run(&all_rules());
        runner.extract_best(AstSize).1.to_string()
    }

    #[test]
    fn absorption_simplifies() {
        assert_eq!(simplify("(* x (+ x y))"), "x");
        assert_eq!(simplify("(+ x (* x y))"), "x");
    }

    #[test]
    fn combining_simplifies() {
        assert_eq!(simplify("(+ (* x y) (* x (! y)))"), "x");
    }

    #[test]
    fn consensus_removes_redundant_term() {
        let out = simplify("(+ (+ (* a b) (* (! a) c)) (* b c))");
        // any 7-node equivalent of ab + !a c is acceptable
        let expr: RecExpr<BoolLang> = out.parse().unwrap();
        assert!(expr.len() <= 8, "consensus term must be eliminated: {out}");
    }

    #[test]
    fn demorgan_enables_size_reduction() {
        // !(!x * !y) = x + y : 3 nodes instead of 6
        assert!(matches!(
            simplify("(! (* (! x) (! y)))").as_str(),
            "(+ x y)" | "(+ y x)"
        ));
    }

    #[test]
    fn figure3_function_explores_factored_form() {
        // xy + xz = x(y+z): the factored form has 5 nodes (x, y, z, +, *)
        // versus 7 for the SOP form.
        let out = simplify("(+ (* x y) (* x z))");
        let expr: RecExpr<BoolLang> = out.parse().unwrap();
        assert_eq!(expr.len(), 5, "expected factored form, got {out}");
    }
}
