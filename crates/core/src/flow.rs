//! End-to-end flows: equality saturation, candidate selection, the shared
//! mapping backend, and the ABC-style baseline (paper §3.3, §4.3).

use crate::analysis::ConstFold;
use crate::cost::CandidateCost;
use crate::features::Features;
use crate::lang::{network_to_recexpr, recexpr_to_network, BoolLang};
use crate::pool::{extract_pool_with, PoolConfig};
use crate::rules::all_rules;
use crate::train::CostModels;
use esyn_aig::{scripts, Aig};
use esyn_cec::{check_equivalence_par, EquivResult, DEFAULT_SIM_SEED};
use esyn_egraph::{EGraph, Id, IterationStats, RecExpr, Rewrite, Runner, RunnerLimits, StopReason};
use esyn_eqn::Network;
use esyn_par::{par_map, Parallelism};
use esyn_techmap::{map_and_size, Library, MapMode, QorReport};
use std::time::Duration;

/// Saturation resource limits.
///
/// The paper ran with a 300-second limit and 2 500 000 e-nodes (§4.1);
/// [`SaturationLimits::paper`] reproduces that, while the default is sized
/// for interactive experiments.
#[derive(Clone, Copy, Debug)]
pub struct SaturationLimits {
    /// Maximum saturation iterations.
    pub iter_limit: usize,
    /// Maximum e-nodes before stopping.
    pub node_limit: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
}

impl Default for SaturationLimits {
    fn default() -> Self {
        SaturationLimits {
            iter_limit: 16,
            node_limit: 60_000,
            time_limit: Duration::from_secs(20),
        }
    }
}

impl SaturationLimits {
    /// The paper's §4.1 setup: 2.5 M e-nodes, 300 s.
    pub fn paper() -> Self {
        SaturationLimits {
            iter_limit: usize::MAX,
            node_limit: 2_500_000,
            time_limit: Duration::from_secs(300),
        }
    }

    /// A small budget for tests and examples.
    pub fn small() -> Self {
        SaturationLimits {
            iter_limit: 8,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
        }
    }
}

/// Runs equality saturation over `expr` with the given rules and limits,
/// using the constant-folding analysis. Rule search fans out per
/// [`Parallelism::Auto`] (so `ESYN_THREADS` applies); see [`saturate_par`]
/// for an explicit policy.
pub fn saturate(
    expr: &RecExpr<BoolLang>,
    rules: &[Rewrite<BoolLang>],
    limits: &SaturationLimits,
) -> Runner<BoolLang, ConstFold> {
    saturate_par(expr, rules, limits, Parallelism::Auto)
}

/// [`saturate`] with an explicit worker-thread policy for the per-rule
/// search phase. Saturation outcomes (iteration statistics, stop reason,
/// the e-graph itself) are bit-identical at any setting — only wall-clock
/// changes; see `esyn-par`. As with any wall-clock cutoff, that holds
/// when the iteration/node caps bind: a `TimeLimit` stop is inherently
/// schedule-dependent (see `Runner::with_parallelism`).
pub fn saturate_par(
    expr: &RecExpr<BoolLang>,
    rules: &[Rewrite<BoolLang>],
    limits: &SaturationLimits,
    parallelism: Parallelism,
) -> Runner<BoolLang, ConstFold> {
    Runner::with_analysis(ConstFold)
        .with_expr(expr)
        .with_parallelism(parallelism)
        .with_limits(RunnerLimits {
            iter_limit: limits.iter_limit,
            node_limit: limits.node_limit,
            time_limit: limits.time_limit,
        })
        .run(rules)
}

/// Optimisation objective — the three columns of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimise post-mapping delay.
    Delay,
    /// Minimise post-mapping area.
    Area,
    /// Balance both (delay-oriented mapping with slack-bounded area
    /// recovery; candidates scored by the product of both models).
    Balanced,
}

impl Objective {
    fn map_mode(self) -> MapMode {
        match self {
            Objective::Delay | Objective::Balanced => MapMode::Delay,
            Objective::Area => MapMode::Area,
        }
    }
}

/// Configuration of the complete E-Syn flow.
#[derive(Clone, Debug)]
pub struct EsynConfig {
    /// Equality-saturation limits.
    pub limits: SaturationLimits,
    /// Pool-extraction parameters.
    pub pool: PoolConfig,
    /// Verify the chosen form against the input with CEC (paper §3.3).
    pub verify: bool,
    /// Optional delay target handed to the mapping backend.
    pub target_delay: Option<f64>,
    /// Map the chosen form through the choice-aware backend
    /// ([`esyn_backend_choices`]) instead of the single-structure one.
    /// This is the faithful `&dch -f` substitute; off by default so the
    /// calibrated paper experiments keep the documented `dc2`
    /// approximation (see DESIGN.md, substitution notes).
    pub use_choices: bool,
    /// Worker threads for the flow's parallel stages — saturation rule
    /// search, pool sampling, candidate scoring, and CEC verification
    /// (overriding [`PoolConfig::parallelism`] so the flow has one knob).
    /// Results are bit-identical at any setting (provided saturation
    /// stops on its iteration/node cap rather than the wall-clock
    /// [`SaturationLimits::time_limit`]); see `esyn-par`.
    pub parallelism: Parallelism,
}

impl Default for EsynConfig {
    fn default() -> Self {
        EsynConfig {
            limits: SaturationLimits::default(),
            pool: PoolConfig::default(),
            verify: true,
            target_delay: None,
            use_choices: false,
            parallelism: Parallelism::Auto,
        }
    }
}

impl EsynConfig {
    /// A fast configuration for tests and examples.
    pub fn small() -> Self {
        EsynConfig {
            limits: SaturationLimits::small(),
            pool: PoolConfig::small(0xE5),
            ..Default::default()
        }
    }
}

/// Outcome of one E-Syn run.
#[derive(Clone, Debug)]
pub struct EsynResult {
    /// The chosen logic form.
    pub network: Network,
    /// Post-mapping quality of results.
    pub qor: QorReport,
    /// Why saturation stopped.
    pub stop_reason: StopReason,
    /// Per-iteration saturation statistics (`esyn optimize --verbose`
    /// prints these).
    pub iterations: Vec<IterationStats>,
    /// Number of distinct candidates in the pool.
    pub pool_size: usize,
    /// E-graph size at extraction time.
    pub egraph_nodes: usize,
    /// E-class count at extraction time.
    pub egraph_classes: usize,
    /// CEC verdict (`None` when verification was disabled).
    pub verified: Option<bool>,
    /// The model score of the winning candidate.
    pub predicted_cost: f64,
}

/// The saturation phase's output, decoupled from the downstream
/// extract/score/verify/map stages so it can be cached and shared.
///
/// This is the artifact behind `esyn serve`'s saturated-e-graph cache
/// tier (keyed by [`crate::cache::saturation_cache_key`]): building it
/// is the expensive part of the flow, while everything after it — pool
/// sampling, candidate scoring, verification, mapping — is a pure
/// function of this struct plus the remaining configuration. Resuming
/// from a stored instance is byte-identical to a cold run because the
/// cold path ([`esyn_optimize`]) goes through exactly the same split.
pub struct SaturatedEgraph {
    /// The input term saturation started from (kept so pool extraction
    /// can include the original form).
    pub expr: RecExpr<BoolLang>,
    /// The saturated e-graph, clean (rebuilt) and ready for extraction.
    pub egraph: EGraph<BoolLang, ConstFold>,
    /// The e-class holding `expr`'s root.
    pub root: Id,
    /// Why saturation stopped.
    pub stop_reason: StopReason,
    /// Per-iteration saturation statistics.
    pub iterations: Vec<IterationStats>,
    /// [`crate::cache::structural_hash`] of the network saturation ran
    /// on; the resume entry points assert they are handed the same
    /// circuit.
    pub circuit_hash: u64,
}

impl SaturatedEgraph {
    /// Deterministic estimate of this artifact's resident size in bytes,
    /// used by the serve layer to charge it against a cache byte budget.
    ///
    /// The estimate is computed from logical quantities only (e-node and
    /// e-class counts, term length) — never from allocator state — so it
    /// is identical across runs and thread counts for the same
    /// saturation outcome, keeping byte-budget eviction deterministic.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let node = size_of::<BoolLang>();
        // Each e-node is stored once in its class vector and once as a
        // memo entry (node → class id, plus table slot overhead).
        let enodes = self.egraph.total_nodes() * (2 * node + 2 * size_of::<usize>());
        // Per-class fixed overhead: the class struct, analysis data and
        // its slot in the class table / operator index.
        let classes = self.egraph.num_classes() * 96;
        let expr = self.expr.len() * node;
        size_of::<Self>() + enodes + classes + expr
    }
}

/// Runs the saturation phase of the flow: `net` → Boolean term → equality
/// saturation under [`all_rules`] with `cfg`'s limits and thread policy.
/// Only `cfg.limits`, `cfg.parallelism` and (conservatively)
/// `cfg.use_choices` participate in the saturated artifact's identity —
/// see [`crate::cache::saturation_cache_key`].
pub fn esyn_saturate(net: &Network, cfg: &EsynConfig) -> SaturatedEgraph {
    let expr = network_to_recexpr(net);
    let runner = saturate_par(&expr, &all_rules(), &cfg.limits, cfg.parallelism);
    let stop_reason = runner.stop_reason.expect("runner finished");
    let root = runner.roots[0];
    let iterations = runner.iterations;
    SaturatedEgraph {
        expr,
        egraph: runner.egraph,
        root,
        stop_reason,
        iterations,
        circuit_hash: crate::cache::structural_hash(net),
    }
}

/// The Balanced scorer: the product of both learned models, each
/// clamped at zero so a negative prediction cannot flip the sign.
struct Balance<'a> {
    models: &'a CostModels,
}
impl CandidateCost for Balance<'_> {
    fn cost(&self, feats: &Features) -> f64 {
        self.models.delay.cost(feats).max(0.0) * self.models.area.cost(feats).max(0.0)
    }
}

/// The complete E-Syn flow of Figure 2: saturate → pool-extract → score
/// with the technology-aware model → verify → map through the shared
/// backend.
///
/// # Panics
///
/// Panics if `verify` is on and the chosen candidate fails equivalence
/// checking — that would mean an unsound rewrite and must never happen.
pub fn esyn_optimize(
    net: &Network,
    models: &CostModels,
    lib: &Library,
    objective: Objective,
    cfg: &EsynConfig,
) -> EsynResult {
    let sat = esyn_saturate(net, cfg);
    esyn_optimize_saturated(net, &sat, models, lib, objective, cfg)
}

/// [`esyn_optimize`] resumed from an already-saturated e-graph: the
/// downstream extract/score/verify/map stages only. `sat` must have been
/// built from `net` under a config whose saturation-relevant slice
/// matches `cfg`'s ([`crate::cache::saturation_cache_key`] equality) —
/// then the result is byte-identical to a cold [`esyn_optimize`] run.
///
/// # Panics
///
/// Panics if `verify` is on and the chosen candidate fails equivalence
/// checking — that would mean an unsound rewrite and must never happen.
pub fn esyn_optimize_saturated(
    net: &Network,
    sat: &SaturatedEgraph,
    models: &CostModels,
    lib: &Library,
    objective: Objective,
    cfg: &EsynConfig,
) -> EsynResult {
    match objective {
        Objective::Delay => {
            esyn_optimize_with_cost_saturated(net, sat, &models.delay, lib, objective, cfg)
        }
        Objective::Area => {
            esyn_optimize_with_cost_saturated(net, sat, &models.area, lib, objective, cfg)
        }
        Objective::Balanced => {
            esyn_optimize_with_cost_saturated(net, sat, &Balance { models }, lib, objective, cfg)
        }
    }
}

/// [`esyn_optimize`] with an explicit pool scorer: saturate →
/// pool-extract → score every candidate with `scorer` → verify → map
/// through the shared backend under `objective`'s mapping mode. This
/// is how named objectives (`esyn-objective`) drive the full flow; the
/// builtin objectives delegate here with their learned models.
///
/// # Panics
///
/// Panics if `verify` is on and the chosen candidate fails equivalence
/// checking — that would mean an unsound rewrite and must never happen.
pub fn esyn_optimize_with_cost(
    net: &Network,
    scorer: &dyn CandidateCost,
    lib: &Library,
    objective: Objective,
    cfg: &EsynConfig,
) -> EsynResult {
    let sat = esyn_saturate(net, cfg);
    esyn_optimize_with_cost_saturated(net, &sat, scorer, lib, objective, cfg)
}

/// [`esyn_optimize_with_cost`] resumed from an already-saturated
/// e-graph. The shared downstream pipeline every optimize entry point
/// funnels through: pool-extract from `sat` → score with `scorer` →
/// verify against `net` → map under `objective`'s mapping mode.
///
/// # Panics
///
/// Panics if `verify` is on and the chosen candidate fails equivalence
/// checking, or (debug builds) if `sat` was built from a different
/// circuit than `net`.
pub fn esyn_optimize_with_cost_saturated(
    net: &Network,
    sat: &SaturatedEgraph,
    scorer: &dyn CandidateCost,
    lib: &Library,
    objective: Objective,
    cfg: &EsynConfig,
) -> EsynResult {
    debug_assert_eq!(
        sat.circuit_hash,
        crate::cache::structural_hash(net),
        "saturated artifact belongs to a different circuit"
    );
    let pool_cfg = PoolConfig {
        parallelism: cfg.parallelism,
        ..cfg.pool
    };
    let pool = extract_pool_with(&sat.egraph, sat.root, Some(&sat.expr), &pool_cfg);

    let score = |cand: &RecExpr<BoolLang>| -> f64 { scorer.cost(&Features::from_expr(cand)) };
    // Feature extraction + model evaluation per candidate is independent
    // work; the serial min-reduce over the ordered scores keeps candidate
    // selection thread-count-invariant. Small pools score inline.
    let score_par = cfg.parallelism.when(pool.len() >= 32);
    let scores = par_map(score_par, &pool, |_, cand| score(cand));
    let (best_idx, predicted_cost) = scores
        .into_iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("pool is never empty");

    let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let chosen = recexpr_to_network(&pool[best_idx], &names);

    let verified = if cfg.verify {
        let verdict = check_equivalence_par(net, &chosen, DEFAULT_SIM_SEED, cfg.parallelism);
        assert_eq!(
            verdict,
            EquivResult::Equivalent,
            "E-Syn produced a non-equivalent candidate"
        );
        Some(true)
    } else {
        None
    };

    let (_, qor) = if cfg.use_choices {
        esyn_backend_choices(&chosen, lib, objective, cfg.target_delay)
    } else {
        esyn_backend(&chosen, lib, objective, cfg.target_delay)
    };
    EsynResult {
        network: chosen,
        qor,
        stop_reason: sat.stop_reason,
        iterations: sat.iterations.clone(),
        pool_size: pool.len(),
        egraph_nodes: sat.egraph.total_nodes(),
        egraph_classes: sat.egraph.num_classes(),
        verified,
        predicted_cost,
    }
}

/// The shared mapping backend applied to an E-Syn candidate — the
/// `strash; dch -f; map; topo; upsize; dnsize; stime` stage. `dch -f`
/// (choice computation, which internally reruns rewriting scripts to
/// build choice networks) is approximated by a `dc2` pass before mapping;
/// see DESIGN.md. The baseline flow additionally gets `ifraig`/`scorr`
/// (fraiging), exactly as in the paper's §4.3 script.
pub fn esyn_backend(
    net: &Network,
    lib: &Library,
    objective: Objective,
    target_delay: Option<f64>,
) -> (esyn_techmap::Netlist, QorReport) {
    let aig = scripts::baseline_tech_indep(&Aig::from_network(net), 0xABC);
    match objective {
        Objective::Balanced => {
            // delay-oriented mapping, then slack-bounded area recovery
            let (nl, q) = map_and_size(&aig, lib, MapMode::Delay, target_delay);
            balanced_recovery(nl, q, lib)
        }
        _ => map_and_size(&aig, lib, objective.map_mode(), target_delay),
    }
}

/// The choice-aware variant of [`esyn_backend`]: the tech-independent
/// result is expanded into a [`esyn_aig::ChoiceAig`] (original, balanced
/// and `dc2` structures with SAT-proven choice classes) and mapped with
/// the choice-aware mapper — the faithful substitute for the paper's
/// `&dch -f; &nf` stage.
pub fn esyn_backend_choices(
    net: &Network,
    lib: &Library,
    objective: Objective,
    target_delay: Option<f64>,
) -> (esyn_techmap::Netlist, QorReport) {
    let aig = scripts::baseline_tech_indep(&Aig::from_network(net), 0xABC);
    let choice = esyn_aig::ChoiceAig::build(&aig, 0xD0C);
    match objective {
        Objective::Balanced => {
            let (nl, q) =
                esyn_techmap::map_choices_and_size(&choice, lib, MapMode::Delay, target_delay);
            balanced_recovery(nl, q, lib)
        }
        _ => esyn_techmap::map_choices_and_size(&choice, lib, objective.map_mode(), target_delay),
    }
}

/// Slack-bounded area recovery used by the balanced objective: downsizes
/// within 8 % of the achieved delay, then re-reports.
fn balanced_recovery(
    mut nl: esyn_techmap::Netlist,
    q: QorReport,
    lib: &Library,
) -> (esyn_techmap::Netlist, QorReport) {
    let limit = q.delay * 1.08;
    let _ = esyn_techmap::dnsize(&mut nl, lib, esyn_techmap::PO_CAP, Some(limit));
    let t = esyn_techmap::sta(&nl, lib, esyn_techmap::PO_CAP);
    let report = QorReport {
        area: nl.area(lib),
        delay: t.delay,
        gates: nl.num_gates(),
        levels: nl.levels(),
    };
    (nl, report)
}

/// The paper's baseline ABC flow (§4.3): `strash; ifraig; scorr; dc2;`
/// then the same mapping backend. Sequential steps are identities on the
/// combinational benchmarks.
pub fn abc_baseline(
    net: &Network,
    lib: &Library,
    objective: Objective,
    target_delay: Option<f64>,
) -> QorReport {
    let aig = Aig::from_network(net);
    let opt = scripts::baseline_tech_indep(&aig, 0xABC);
    match objective {
        Objective::Balanced => {
            let (nl, q) = map_and_size(&opt, lib, MapMode::Delay, target_delay);
            balanced_recovery(nl, q, lib).1
        }
        _ => map_and_size(&opt, lib, objective.map_mode(), target_delay).1,
    }
}

/// The baseline flow mapped through structural choices — `strash; ifraig;
/// scorr; dc2; &dch -f; &nf` — for like-for-like comparisons against
/// [`esyn_backend_choices`].
pub fn abc_baseline_choices(
    net: &Network,
    lib: &Library,
    objective: Objective,
    target_delay: Option<f64>,
) -> QorReport {
    let opt = scripts::baseline_tech_indep(&Aig::from_network(net), 0xABC);
    let choice = esyn_aig::ChoiceAig::build(&opt, 0xD0C);
    match objective {
        Objective::Balanced => {
            let (nl, q) =
                esyn_techmap::map_choices_and_size(&choice, lib, MapMode::Delay, target_delay);
            balanced_recovery(nl, q, lib).1
        }
        _ => esyn_techmap::map_choices_and_size(&choice, lib, objective.map_mode(), target_delay).1,
    }
}

/// Maps every pool candidate through the backend and reports its
/// `(area, delay)` — the measurement behind Figures 4 and 6. Candidates
/// are measured by parallel workers ([`Parallelism::Auto`], so
/// `ESYN_THREADS` applies); order matches `pool`.
pub fn measure_pool(
    pool: &[RecExpr<BoolLang>],
    output_names: &[String],
    lib: &Library,
    objective: Objective,
    target_delay: Option<f64>,
) -> Vec<QorReport> {
    par_map(Parallelism::Auto, pool, |_, cand| {
        let net = recexpr_to_network(cand, output_names);
        let (_, q) = esyn_backend(&net, lib, objective, target_delay);
        q
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_cost_models, TrainConfig};
    use esyn_eqn::parse_eqn;
    use std::sync::OnceLock;

    fn models() -> &'static CostModels {
        static MODELS: OnceLock<CostModels> = OnceLock::new();
        MODELS.get_or_init(|| train_cost_models(&TrainConfig::tiny(), &Library::asap7_like()))
    }

    fn sample_net() -> Network {
        parse_eqn(
            "INORDER = a b c d;\nOUTORDER = f g;\n\
             f = (a*b) + (a*c) + (a*d);\n\
             g = (a + b) * (a + c) * !d;\n",
        )
        .unwrap()
    }

    #[test]
    fn esyn_flow_produces_verified_result() {
        let lib = Library::asap7_like();
        let net = sample_net();
        let res = esyn_optimize(&net, models(), &lib, Objective::Delay, &EsynConfig::small());
        assert_eq!(res.verified, Some(true));
        assert!(res.pool_size >= 2);
        assert!(res.qor.delay > 0.0);
        assert!(res.qor.area > 0.0);
        assert!(res.egraph_nodes > 0);
    }

    #[test]
    fn choices_backend_agrees_functionally_and_runs_end_to_end() {
        let lib = Library::asap7_like();
        let net = sample_net();
        let cfg = EsynConfig {
            use_choices: true,
            ..EsynConfig::small()
        };
        for objective in [Objective::Delay, Objective::Area, Objective::Balanced] {
            let res = esyn_optimize(&net, models(), &lib, objective, &cfg);
            assert_eq!(res.verified, Some(true));
            assert!(res.qor.delay > 0.0 && res.qor.area > 0.0);
        }
    }

    #[test]
    fn choice_baseline_wins_delay_on_deep_chains() {
        // A 12-deep AND chain: the choice backend sees the balanced
        // structure and must map a shorter critical path.
        let mut src = String::from("INORDER =");
        for i in 0..12 {
            src.push_str(&format!(" x{i}"));
        }
        src.push_str(";\nOUTORDER = f g;\nf = x0");
        for i in 1..12 {
            src.push_str(&format!("*x{i}"));
        }
        // a second output keeps part of the chain shared
        src.push_str(";\ng = (x0*x1)*(x2*x3);\n");
        let net = parse_eqn(&src).unwrap();
        let lib = Library::asap7_like();
        let plain = abc_baseline(&net, &lib, Objective::Delay, None);
        let chosen = abc_baseline_choices(&net, &lib, Objective::Delay, None);
        assert!(
            chosen.delay <= plain.delay + 1e-9,
            "choices must not hurt the chain: {} vs {}",
            plain.delay,
            chosen.delay
        );
    }

    #[test]
    fn objectives_steer_the_tradeoff() {
        let lib = Library::asap7_like();
        let net = sample_net();
        let d = esyn_optimize(&net, models(), &lib, Objective::Delay, &EsynConfig::small());
        let a = esyn_optimize(&net, models(), &lib, Objective::Area, &EsynConfig::small());
        // delay-oriented must not be slower than area-oriented; area-
        // oriented must not be bigger (the backend enforces this even if
        // the candidate choice does not).
        assert!(d.qor.delay <= a.qor.delay + 1e-6);
        assert!(a.qor.area <= d.qor.area + 1e-6);
    }

    #[test]
    fn baseline_flow_runs() {
        let lib = Library::asap7_like();
        let net = sample_net();
        let q = abc_baseline(&net, &lib, Objective::Delay, None);
        assert!(q.delay > 0.0 && q.area > 0.0);
        let qa = abc_baseline(&net, &lib, Objective::Area, None);
        assert!(qa.area <= q.area + 1e-6);
    }

    #[test]
    fn balanced_backend_recovers_area_within_slack() {
        let lib = Library::asap7_like();
        let net = sample_net();
        let (_, qd) = esyn_backend(&net, &lib, Objective::Delay, None);
        let (_, qb) = esyn_backend(&net, &lib, Objective::Balanced, None);
        assert!(qb.delay <= qd.delay * 1.08 + 1e-6);
        assert!(qb.area <= qd.area + 1e-6);
    }

    #[test]
    fn measure_pool_preserves_order_and_length() {
        let lib = Library::asap7_like();
        let net = sample_net();
        let expr = network_to_recexpr(&net);
        let runner = saturate(&expr, &all_rules(), &SaturationLimits::small());
        let pool = extract_pool_with(
            &runner.egraph,
            runner.roots[0],
            Some(&expr),
            &PoolConfig::small(3),
        );
        let names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
        let qors = measure_pool(&pool, &names, &lib, Objective::Delay, None);
        assert_eq!(qors.len(), pool.len());
        for q in &qors {
            assert!(q.delay > 0.0);
        }
    }

    #[test]
    fn resuming_from_a_shared_saturated_egraph_matches_cold_runs() {
        // One saturation, many downstream configs (seed, samples,
        // objective): each resumed result must match its cold run
        // exactly — the contract the serve layer's saturated-e-graph
        // cache tier relies on.
        let lib = Library::asap7_like();
        let net = sample_net();
        let base = EsynConfig::small();
        let sat = esyn_saturate(&net, &base);
        assert!(sat.approx_bytes() > 0);
        assert_eq!(
            sat.approx_bytes(),
            esyn_saturate(&net, &base).approx_bytes()
        );

        let mut variants = Vec::new();
        for (seed, samples) in [(0xE5, 4), (0x77, 4), (0xE5, 9)] {
            let mut cfg = base.clone();
            cfg.pool.seed = seed;
            cfg.pool.num_samples = samples;
            variants.push(cfg);
        }
        for cfg in &variants {
            for objective in [Objective::Delay, Objective::Area] {
                let warm = esyn_optimize_saturated(&net, &sat, models(), &lib, objective, cfg);
                let cold = esyn_optimize(&net, models(), &lib, objective, cfg);
                assert_eq!(warm.network.to_eqn(), cold.network.to_eqn());
                assert_eq!(warm.qor, cold.qor);
                assert_eq!(warm.pool_size, cold.pool_size);
                assert_eq!(warm.stop_reason, cold.stop_reason);
                assert_eq!(warm.predicted_cost.to_bits(), cold.predicted_cost.to_bits());
                assert_eq!(warm.egraph_nodes, cold.egraph_nodes);
                assert_eq!(warm.egraph_classes, cold.egraph_classes);
            }
        }
    }

    #[test]
    fn saturation_respects_node_limit() {
        let net = sample_net();
        let expr = network_to_recexpr(&net);
        let limits = SaturationLimits {
            iter_limit: 50,
            node_limit: 200,
            time_limit: Duration::from_secs(5),
        };
        let runner = saturate(&expr, &all_rules(), &limits);
        assert_eq!(runner.stop_reason, Some(StopReason::NodeLimit));
    }
}
