//! Constant-folding e-class analysis for the Boolean language.

use crate::lang::BoolLang;
use esyn_egraph::{Analysis, EGraph, Id};

/// Attaches `Option<bool>` to every e-class: `Some(v)` when the class is
/// provably the constant `v`. Folded classes get a `Const` e-node injected
/// so extraction can pick the constant directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConstFold;

impl Analysis<BoolLang> for ConstFold {
    type Data = Option<bool>;

    fn make(egraph: &EGraph<BoolLang, Self>, enode: &BoolLang) -> Self::Data {
        let val = |id: Id| egraph.class(id).data;
        match enode {
            BoolLang::Const(v) => Some(*v),
            BoolLang::Var(_) | BoolLang::Outs(_) => None,
            BoolLang::Not([a]) => val(*a).map(|v| !v),
            BoolLang::And([a, b]) => match (val(*a), val(*b)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BoolLang::Or([a, b]) => match (val(*a), val(*b)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        }
    }

    fn merge(&mut self, a: &mut Self::Data, b: Self::Data) -> (bool, bool) {
        match (&*a, b) {
            (None, None) => (false, false),
            (Some(_), None) => (false, true),
            (None, Some(v)) => {
                *a = Some(v);
                (true, false)
            }
            (Some(x), Some(y)) => {
                debug_assert_eq!(*x, y, "conflicting constant folds — unsound rule?");
                (false, false)
            }
        }
    }

    fn modify(egraph: &mut EGraph<BoolLang, Self>, id: Id) {
        if let Some(v) = egraph.class(id).data {
            let c = egraph.add(BoolLang::Const(v));
            egraph.union(id, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::all_rules;
    use esyn_egraph::{AstSize, RecExpr, Runner};

    fn simplify(input: &str) -> String {
        let expr: RecExpr<BoolLang> = input.parse().unwrap();
        let runner = Runner::with_analysis(ConstFold)
            .with_expr(&expr)
            .with_iter_limit(12)
            .with_node_limit(20_000)
            .run(&all_rules());
        let (_, best) = runner.extract_best(AstSize);
        best.to_string()
    }

    #[test]
    fn folds_constant_and() {
        assert_eq!(simplify("(* 1 1)"), "1");
        assert_eq!(simplify("(* x 0)"), "0");
        assert_eq!(simplify("(* 0 (+ x y))"), "0");
    }

    #[test]
    fn folds_constant_or_not() {
        assert_eq!(simplify("(+ 1 x)"), "1");
        assert_eq!(simplify("(! 0)"), "1");
        assert_eq!(simplify("(! (* x 0))"), "1");
    }

    #[test]
    fn folds_through_structure() {
        // (x * !x) + (y * 0) = 0 — needs complement rule + folding
        assert_eq!(simplify("(+ (* x (! x)) (* y 0))"), "0");
    }

    #[test]
    fn does_not_fold_free_variables() {
        let out = simplify("(+ x y)");
        assert!(out == "(+ x y)" || out == "(+ y x)", "{out}");
    }
}
