//! Seed-determinism guarantees: the candidate pool is a pure function of
//! (circuit, saturation limits, `PoolConfig`) — two runs with the same
//! seed must agree node-for-node, whether the e-graph is shared or
//! rebuilt from scratch, and **at any worker-thread count**.
//!
//! This is load-bearing for the whole evaluation story: every experiment
//! bench reports numbers keyed by a seed, and the `esyn-rand` shim has no
//! entropy-based constructors precisely so this property can't erode.
//! The thread-count sweep uses `Parallelism::Fixed` as the in-process
//! stand-in for `ESYN_THREADS ∈ {1, 2, 8}` (mutating the environment
//! would race the parallel test harness); CI's second `ESYN_THREADS=1`
//! test run covers the environment-variable path end to end.

use esyn_core::lang::network_to_recexpr;
use esyn_core::{
    extract_pool, rules::all_rules, saturate, Parallelism, PoolConfig, SaturationLimits,
};
use esyn_eqn::parse_eqn;
use std::time::Duration;

const EQN: &str = "INORDER = a b c d;\nOUTORDER = f g;\n\
                   f = (a*b) + (c*d) + (a*d);\ng = (a+b) * (c+d) * (b+c);\n";

fn limits() -> SaturationLimits {
    SaturationLimits {
        iter_limit: 6,
        node_limit: 3_000,
        time_limit: Duration::from_secs(5),
    }
}

/// Renders a pool to comparable strings (avoids relying on `RecExpr`
/// equality semantics).
fn render(pool: &[impl std::fmt::Display]) -> Vec<String> {
    pool.iter().map(|c| c.to_string()).collect()
}

#[test]
fn same_seed_same_pool_on_shared_egraph() {
    let net = parse_eqn(EQN).expect("test circuit parses");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &limits());
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let cfg = PoolConfig::with_samples(8, seed);
        let a = extract_pool(&runner.egraph, runner.roots[0], &cfg);
        let b = extract_pool(&runner.egraph, runner.roots[0], &cfg);
        assert!(!a.is_empty(), "pool for seed {seed} is empty");
        assert_eq!(
            render(&a),
            render(&b),
            "seed {seed}: two extractions from the same e-graph differ"
        );
    }
}

#[test]
fn pool_identical_across_thread_counts() {
    let net = parse_eqn(EQN).expect("test circuit parses");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &limits());
    // Enough samples that num_samples × e-nodes clears the sampler's
    // serial gate and the sweep really exercises worker threads.
    let pool_at = |threads: usize, seed: u64| {
        let cfg = PoolConfig {
            parallelism: Parallelism::Fixed(threads),
            ..PoolConfig::with_samples(128, seed)
        };
        render(&extract_pool(&runner.egraph, runner.roots[0], &cfg))
    };
    for seed in [0u64, 7, 0xE5F1] {
        let serial = pool_at(1, seed);
        assert!(!serial.is_empty());
        for threads in [2usize, 8] {
            assert_eq!(
                pool_at(threads, seed),
                serial,
                "seed {seed}: pool at {threads} threads differs from serial"
            );
        }
    }
}

#[test]
fn same_seed_same_pool_across_full_reruns() {
    let run = |seed: u64| {
        let net = parse_eqn(EQN).expect("test circuit parses");
        let expr = network_to_recexpr(&net);
        let runner = saturate(&expr, &all_rules(), &limits());
        let pool = extract_pool(
            &runner.egraph,
            runner.roots[0],
            &PoolConfig::with_samples(8, seed),
        );
        render(&pool)
    };
    for seed in [3u64, 42] {
        assert_eq!(
            run(seed),
            run(seed),
            "seed {seed}: full saturate+extract rerun is not reproducible"
        );
    }
}
