//! Exact DAG-cost extraction by branch-and-bound (`bnb`) — the
//! ILP-equivalent baseline, ported from the former
//! `esyn_egraph::extract_exact`.
//!
//! Depth-first search over per-class e-node choices with an admissible
//! lower bound (selected cost plus the cheapest-node cost of every
//! required-but-unassigned class) and explicit cycle checks. Seeds its
//! incumbent with [`GreedyDag`] so the answer is never worse than greedy;
//! as a gym engine it returns the incumbent when the step budget runs
//! out, while the [`extract_exact`](crate::extract_exact) compatibility
//! entry point keeps the original hard-error semantics for callers that
//! need the optimality claim.

use crate::graph::{BitSet, CostTable, ExtractGraph};
use crate::result::{ExtractionResult, EPS};
use crate::{Extractor, GreedyDag};
use esyn_egraph::Language;
use std::fmt;

/// Error from [`crate::extract_exact`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactExtractError {
    /// The step budget ran out before the search space was exhausted.
    /// Carries the configured budget.
    Budget(u64),
    /// The root e-class has no extractable (acyclic, grounded) term.
    /// Only possible on a malformed or mid-rebuild e-graph.
    NoTerm,
}

impl fmt::Display for ExactExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactExtractError::Budget(b) => {
                write!(f, "exact extraction exceeded its budget of {b} steps")
            }
            ExactExtractError::NoTerm => {
                write!(f, "root e-class has no extractable term")
            }
        }
    }
}

impl std::error::Error for ExactExtractError {}

/// Branch-and-bound exact extraction with a greedy incumbent.
#[derive(Clone, Copy, Debug)]
pub struct BranchBound {
    /// Search-node expansions allowed before the engine settles for its
    /// incumbent. The problem is NP-hard; this bounds worst-case latency.
    pub max_steps: u64,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound { max_steps: 500_000 }
    }
}

/// Outcome of [`BranchBound::search`]: the improved selection (if the
/// search found one) and whether the space was exhausted within budget.
pub(crate) struct BnbOutcome {
    pub(crate) improved: Option<Vec<Option<usize>>>,
    pub(crate) exhausted: bool,
}

impl BranchBound {
    /// Runs the raw search from `roots`, seeded with `incumbent_cost`.
    pub(crate) fn search<L: Language>(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
        mut incumbent_cost: f64,
    ) -> BnbOutcome {
        let n = graph.num_classes();
        // Same admissibility concern as duplicate children: a repeated
        // root must seed the bound (and `required`) exactly once.
        let mut roots: Vec<usize> = roots.to_vec();
        roots.sort_unstable();
        roots.dedup();
        let roots = &roots[..];
        let min_cost: Vec<f64> = (0..n).map(|ci| costs.min_cost(ci)).collect();
        let mut incumbent: Option<Vec<Option<usize>>> = None;
        let mut search = Search {
            graph,
            costs,
            min_cost: &min_cost,
            assigned: vec![None; n],
            required: vec![false; n],
            pending: roots.to_vec(),
            selected_cost: 0.0,
            lower_bound: roots.iter().map(|&r| min_cost[r]).sum(),
            steps: 0,
            max_steps: self.max_steps,
            incumbent_cost: &mut incumbent_cost,
            incumbent: &mut incumbent,
        };
        for &r in roots {
            search.required[r] = true;
        }
        let exhausted = search.run();
        BnbOutcome {
            improved: incumbent,
            exhausted,
        }
    }
}

impl<L: Language> Extractor<L> for BranchBound {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let greedy = GreedyDag.extract(graph, roots, costs);
        if greedy.check(graph, roots).is_err() {
            // No grounded term at some root; nothing to search for.
            return greedy;
        }
        let incumbent_cost = greedy.dag_cost(graph, costs, roots);
        let outcome = self.search(graph, roots, costs, incumbent_cost);
        match outcome.improved {
            Some(assign) => ExtractionResult { choices: assign },
            None => greedy,
        }
    }
}

struct Search<'a, L> {
    graph: &'a ExtractGraph<L>,
    costs: &'a CostTable,
    min_cost: &'a [f64],
    assigned: Vec<Option<usize>>,
    required: Vec<bool>,
    /// Required-but-possibly-unassigned classes (DFS order; may contain
    /// already-assigned duplicates, skipped on pop).
    pending: Vec<usize>,
    selected_cost: f64,
    /// Admissible bound: `selected_cost` + cheapest node of every
    /// required-but-unassigned class.
    lower_bound: f64,
    steps: u64,
    max_steps: u64,
    incumbent_cost: &'a mut f64,
    incumbent: &'a mut Option<Vec<Option<usize>>>,
}

impl<L: Language> Search<'_, L> {
    /// Returns `true` when the budget ran out (search incomplete).
    fn run(&mut self) -> bool {
        if self.steps >= self.max_steps {
            return true;
        }
        self.steps += 1;

        // Next required, unassigned class.
        let ci = loop {
            match self.pending.pop() {
                Some(c) if self.assigned[c].is_none() => break c,
                Some(_) => continue,
                None => {
                    // Complete selection; acyclicity was enforced at every
                    // assignment below.
                    if self.selected_cost + EPS < *self.incumbent_cost {
                        *self.incumbent_cost = self.selected_cost;
                        *self.incumbent = Some(self.assigned.clone());
                    }
                    return false;
                }
            }
        };

        let mut exhausted = false;
        // Cheapest candidates first so good incumbents arrive early.
        let mut order: Vec<usize> = (0..self.graph.nodes(ci).len()).collect();
        order.sort_by(|&a, &b| self.costs.cost(ci, a).total_cmp(&self.costs.cost(ci, b)));

        for k in order {
            let children = self.graph.nodes(ci)[k].children();
            let cost = self.costs.cost(ci, k);
            // Cycle check: following already-assigned choices from the
            // children must not lead back to `ci`. The assignment that
            // would close any cycle always sees the rest of that cycle
            // assigned, so checking here catches every cycle.
            if self.reaches(children, ci) {
                continue;
            }

            // Deduplicate: an e-node may repeat a child slot (`(* a a)`),
            // and counting that class's `min_cost` twice would push the
            // bound above the true completion cost — unsound pruning.
            let mut new_required: Vec<usize> = children
                .iter()
                .copied()
                .filter(|&d| !self.required[d])
                .collect();
            new_required.sort_unstable();
            new_required.dedup();
            let saved_pending = self.pending.len();

            self.assigned[ci] = Some(k);
            self.selected_cost += cost;
            self.lower_bound += cost - self.min_cost[ci];
            for &d in &new_required {
                self.required[d] = true;
                self.lower_bound += self.min_cost[d];
                self.pending.push(d);
            }

            if self.lower_bound + EPS < *self.incumbent_cost {
                exhausted |= self.run();
            }

            // Undo.
            self.pending.truncate(saved_pending);
            for &d in &new_required {
                self.required[d] = false;
                self.lower_bound -= self.min_cost[d];
            }
            self.lower_bound -= cost - self.min_cost[ci];
            self.selected_cost -= cost;
            self.assigned[ci] = None;

            if exhausted {
                break;
            }
        }

        self.pending.push(ci);
        exhausted
    }

    /// Does following assigned choices from `from` reach `target`?
    fn reaches(&self, from: &[usize], target: usize) -> bool {
        let mut stack: Vec<usize> = from.to_vec();
        let mut seen = BitSet::new(self.graph.num_classes());
        while let Some(c) = stack.pop() {
            if c == target {
                return true;
            }
            if seen.contains(c) {
                continue;
            }
            seen.insert(c);
            if let Some(k) = self.assigned[c] {
                stack.extend_from_slice(self.graph.nodes(c)[k].children());
            }
        }
        false
    }
}
