//! The `exact` engine: SAT-backed optimal DAG extraction over `esyn-sat`.
//!
//! The e-boost recipe (see PAPERS.md): seed an exact solver with the best
//! adaptive-heuristic incumbent, then let it tighten the bound for as
//! long as its conflict budget allows. Concretely:
//!
//! 1. Run the whole greedy portfolio (both bottom-up engines, both
//!    greedy-DAG engines, `global-greedy-dag`) and keep the cheapest
//!    valid result as the incumbent — the engine's floor, so
//!    **exact ≤ best greedy** holds unconditionally, budget or not.
//! 2. Encode selection on the root-reachable sub-graph: one variable
//!    `x[c][k]` per candidate e-node, root-coverage clauses, closure
//!    clauses (`x[c][k] → ⋁_j x[d][j]` per child class `d`) and pairwise
//!    at-most-one per class.
//! 3. Costs become integers (×256, GCD-normalized) counted by a weighted
//!    sequential-counter ladder built once at the incumbent's width; a
//!    bound `sum ≤ B` is then a single assumption literal, so the descent
//!    loop reuses every learnt clause across bounds.
//! 4. Acyclicity is enforced lazily: a satisfying assignment whose chosen
//!    sub-graph contains a cycle is excluded with a blocking clause over
//!    the cycle's choices and the solve re-runs — the standard
//!    cycle-elimination loop.
//! 5. The loop descends (`B ← cost(model) − 1`) until UNSAT (incumbent
//!    proven optimal), the conflict budget runs out, or the ladder would
//!    be too large to build — in the latter two cases the incumbent is
//!    returned as-is, exactly like a budget-exhausted `bnb`.

use crate::graph::{BitSet, CostTable, ExtractGraph};
use crate::result::{complete_selection, ExtractionResult, EPS};
use crate::{BottomUp, Extractor, FasterBottomUp, FasterGreedyDag, GlobalGreedyDag, GreedyDag};
use esyn_egraph::Language;
use esyn_sat::{Lit, Solver, Var};

/// SAT-backed exact extraction, incumbent-seeded and conflict-budgeted.
#[derive(Clone, Copy, Debug)]
pub struct SatExact {
    /// Total solver conflicts the descent loop may spend before settling
    /// for the incumbent. Used verbatim when [`SatExact::adaptive`] is
    /// off; ignored otherwise.
    pub conflict_budget: u64,
    /// Cap on `(weighted items) × (scaled incumbent cost)` — the size of
    /// the cardinality ladder. Above it the encoding is skipped and the
    /// incumbent returned, keeping memory bounded on huge e-graphs.
    /// Used verbatim when [`SatExact::adaptive`] is off; ignored
    /// otherwise.
    pub max_ladder: u64,
    /// Scale the budgets with e-graph size (see [`SatExact::budgets`]):
    /// small graphs get enough conflicts for a full optimality proof,
    /// huge graphs settle quickly for the portfolio incumbent. On by
    /// default; turn off to pin the explicit budget fields.
    pub adaptive: bool,
}

impl Default for SatExact {
    /// Adaptive budgets sized for interactive races (`esyn gym`, the
    /// `gym` bench, CI smoke runs), centred on the fixed-budget
    /// reference of 20 k conflicts / 400 k ladder positions at ~10 k
    /// e-nodes — where mid-size registry e-graphs tip from sub-second
    /// solves into minutes. Smaller graphs scale up toward a full
    /// proof, larger ones down toward the incumbent; set
    /// `adaptive: false` (and raise the fields) for offline optimality
    /// hunts.
    fn default() -> Self {
        SatExact {
            conflict_budget: 20_000,
            max_ladder: 400_000,
            adaptive: true,
        }
    }
}

impl SatExact {
    /// The `(conflict, ladder)` budgets in effect for an e-graph of
    /// `total_nodes` e-nodes.
    ///
    /// Non-adaptive extractors return their fields verbatim. Adaptive
    /// ones spend a roughly constant `conflicts × nodes` work product
    /// (`2 × 10⁸`, the fixed-default reference point at 10 k e-nodes),
    /// clamped to `[2_000, 200_000]` conflicts, with the ladder cap at
    /// 20× the conflicts — so a few-hundred-node e-graph gets a 200 k
    /// conflict budget (nearly always a completed optimality proof)
    /// while a 100 k-node one settles for its incumbent after 2 k.
    pub fn budgets(&self, total_nodes: usize) -> (u64, u64) {
        if !self.adaptive {
            return (self.conflict_budget, self.max_ladder);
        }
        let nodes = total_nodes.max(1) as u64;
        let conflicts = (200_000_000 / nodes).clamp(2_000, 200_000);
        (conflicts, conflicts.saturating_mul(20))
    }
}

/// Fixed-point scale for `f64` costs. Costs are rounded to 1/256ths; the
/// gym's models are unit or small rational weights, which this represents
/// exactly.
const SCALE: f64 = 256.0;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl SatExact {
    fn greedy_incumbent<L: Language>(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> Option<(ExtractionResult, f64)> {
        let portfolio: [&dyn Extractor<L>; 5] = [
            &BottomUp,
            &FasterBottomUp,
            &GreedyDag,
            &FasterGreedyDag,
            &GlobalGreedyDag,
        ];
        let mut best: Option<(ExtractionResult, f64)> = None;
        for engine in portfolio {
            let res = engine.extract(graph, roots, costs);
            if res.check(graph, roots).is_err() {
                continue;
            }
            let cost = res.dag_cost(graph, costs, roots);
            if best.as_ref().is_none_or(|(_, bc)| cost + EPS < *bc) {
                best = Some((res, cost));
            }
        }
        best
    }
}

impl<L: Language> Extractor<L> for SatExact {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let (conflict_budget, max_ladder) = self.budgets(graph.total_nodes());
        let Some((mut incumbent, mut incumbent_cost)) = self.greedy_incumbent(graph, roots, costs)
        else {
            // No grounded term at some root; return an (invalid) empty
            // result and let the caller's check report it.
            return ExtractionResult::new(graph.num_classes());
        };

        // Restrict the encoding to classes reachable from the roots
        // through *any* candidate e-node.
        let n = graph.num_classes();
        let mut live = BitSet::new(n);
        let mut order: Vec<usize> = Vec::new();
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            live.insert(r);
        }
        // (roots are deduplicated by the callers, but be safe)
        stack.dedup();
        while let Some(ci) = stack.pop() {
            order.push(ci);
            for node in graph.nodes(ci) {
                for &d in node.children() {
                    if !live.contains(d) {
                        live.insert(d);
                        stack.push(d);
                    }
                }
            }
        }

        // Integer weights, GCD-normalized so unit-cost instances count in
        // steps of 1 rather than 256.
        let mut weights: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut g = 0u64;
        for &ci in &order {
            weights[ci] = graph
                .nodes(ci)
                .iter()
                .enumerate()
                .map(|(k, _)| (costs.cost(ci, k) * SCALE).round() as u64)
                .collect();
            for &w in &weights[ci] {
                g = gcd(g, w);
            }
        }
        if g > 1 {
            for &ci in &order {
                for w in &mut weights[ci] {
                    *w /= g;
                }
            }
        }

        let scaled_of = |res: &ExtractionResult| -> u64 {
            let mut seen = BitSet::new(n);
            let mut stack: Vec<usize> = roots.to_vec();
            let mut total = 0u64;
            while let Some(ci) = stack.pop() {
                if seen.contains(ci) {
                    continue;
                }
                seen.insert(ci);
                let k = res.choices[ci].expect("incumbent covers reached classes");
                total += weights[ci][k];
                stack.extend_from_slice(graph.nodes(ci)[k].children());
            }
            total
        };

        let inc_scaled = scaled_of(&incumbent);
        if inc_scaled == 0 {
            return incumbent; // cost 0 cannot be improved
        }
        let width = inc_scaled; // ladder registers per item: 1..=width
        let items: u64 = order
            .iter()
            .map(|&ci| weights[ci].iter().filter(|&&w| w > 0).count() as u64)
            .sum();
        if items.saturating_mul(width) > max_ladder {
            return incumbent; // encoding too large; keep the greedy floor
        }

        // ---- Encode -----------------------------------------------------
        let mut solver = Solver::new();
        let mut x: Vec<Vec<Var>> = vec![Vec::new(); n];
        for &ci in &order {
            x[ci] = (0..graph.nodes(ci).len())
                .map(|_| solver.new_var())
                .collect();
        }
        for &r in roots {
            let clause: Vec<Lit> = x[r].iter().map(|&v| Lit::pos(v)).collect();
            solver.add_clause(&clause);
        }
        for &ci in &order {
            // At most one choice per class (pairwise).
            for a in 0..x[ci].len() {
                for b in (a + 1)..x[ci].len() {
                    solver.add_clause(&[Lit::neg(x[ci][a]), Lit::neg(x[ci][b])]);
                }
                // Closure: choosing node a forces every child class to
                // choose something.
                let mut kids: Vec<usize> = graph.nodes(ci)[a].children.clone();
                kids.sort_unstable();
                kids.dedup();
                for d in kids {
                    let mut clause: Vec<Lit> = vec![Lit::neg(x[ci][a])];
                    clause.extend(x[d].iter().map(|&v| Lit::pos(v)));
                    solver.add_clause(&clause);
                }
            }
        }

        // Weighted sequential counter: reg[j] ⇔ "sum of items so far
        // ≥ j+1" (only the ≥ direction is encoded, which suffices to
        // enforce upper bounds by refuting the overflow register).
        let w = width as usize;
        let mut reg: Vec<Var> = (0..w).map(|_| solver.new_var()).collect();
        let mut first = true;
        for &ci in &order {
            for (k, &wk) in weights[ci].iter().enumerate() {
                if wk == 0 {
                    continue;
                }
                let wk = wk as usize;
                let xi = Lit::pos(x[ci][k]);
                if first {
                    // reg starts as the counter of the first item alone.
                    for (j, &r) in reg.iter().enumerate() {
                        if j < wk {
                            solver.add_clause(&[!xi, Lit::pos(r)]);
                        }
                    }
                    first = false;
                    continue;
                }
                let next: Vec<Var> = (0..w).map(|_| solver.new_var()).collect();
                for j in 0..w {
                    // carry: prior sum ≥ j+1 stays ≥ j+1.
                    solver.add_clause(&[Lit::neg(reg[j]), Lit::pos(next[j])]);
                    if j < wk {
                        // item alone reaches j+1 ≤ wk.
                        solver.add_clause(&[!xi, Lit::pos(next[j])]);
                    } else {
                        // item shifts the prior sum up by wk.
                        solver.add_clause(&[!xi, Lit::neg(reg[j - wk]), Lit::pos(next[j])]);
                    }
                }
                reg = next;
            }
        }
        // reg[j] now means "total ≥ j+1"; bound total ≤ B by assuming
        // ¬reg[B] (i.e. not ≥ B+1). B < width always holds in the loop.
        let overflow = reg;

        // ---- Descend ----------------------------------------------------
        let start_conflicts = solver.conflict_count();
        let mut bound = inc_scaled - 1;
        loop {
            let spent = solver.conflict_count() - start_conflicts;
            let Some(budget_left) = conflict_budget.checked_sub(spent) else {
                break;
            };
            if budget_left == 0 {
                break;
            }
            let assumption = [Lit::neg(overflow[bound as usize])];
            match solver.solve_limited(&assumption, budget_left) {
                None => break,        // budget exhausted mid-solve
                Some(false) => break, // no selection ≤ bound: incumbent optimal
                Some(true) => {
                    // Decode: the (at most one) chosen node per class.
                    let mut choices: Vec<Option<usize>> = vec![None; n];
                    for &ci in &order {
                        choices[ci] = x[ci].iter().position(|&v| solver.value(v) == Some(true));
                    }
                    let res = ExtractionResult { choices };
                    match res.check(graph, roots) {
                        Err(_) => {
                            // A cycle (closure/coverage hold by clause
                            // construction): block this exact chosen cycle
                            // and re-solve at the same bound.
                            let Some(cycle) = find_cycle(graph, &res, roots) else {
                                break; // defensive: only cycles are expected
                            };
                            let clause: Vec<Lit> = cycle
                                .iter()
                                .map(|&ci| Lit::neg(x[ci][res.choices[ci].unwrap()]))
                                .collect();
                            if !solver.add_clause(&clause) {
                                break;
                            }
                        }
                        Ok(()) => {
                            let cost = res.dag_cost(graph, costs, roots);
                            let scaled = scaled_of(&res);
                            if cost + EPS < incumbent_cost {
                                incumbent = res;
                                incumbent_cost = cost;
                            }
                            if scaled == 0 {
                                break;
                            }
                            bound = bound.min(scaled - 1);
                        }
                    }
                }
            }
        }

        // The SAT model decides only reachable-from-root classes; ground
        // everything through the shared finisher for a uniform shape.
        complete_selection(graph, costs, &incumbent.choices, roots)
    }
}

/// Finds one cycle in the chosen sub-graph reachable from `roots`
/// (classes on the cycle, in order). `None` when the selection is acyclic.
fn find_cycle<L: Language>(
    graph: &ExtractGraph<L>,
    res: &ExtractionResult,
    roots: &[usize],
) -> Option<Vec<usize>> {
    let n = graph.num_classes();
    let mut color = vec![0u8; n];
    for &start in roots {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (ci, ref mut next)) = stack.last_mut() {
            let k = res.choices[ci]?;
            let children = graph.nodes(ci)[k].children();
            if *next < children.len() {
                let d = children[*next];
                *next += 1;
                match color[d] {
                    0 => {
                        color[d] = 1;
                        stack.push((d, 0));
                    }
                    1 => {
                        // Unwind the explicit stack back to `d`.
                        let pos = stack.iter().position(|&(c, _)| c == d)?;
                        return Some(stack[pos..].iter().map(|&(c, _)| c).collect());
                    }
                    _ => {}
                }
            } else {
                color[ci] = 2;
                stack.pop();
            }
        }
    }
    None
}
