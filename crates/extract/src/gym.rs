//! The gym: race every engine on one e-graph and tabulate QoR vs time.
//!
//! [`race`] builds the dense [`ExtractGraph`] and [`CostTable`] once
//! (the table build is the parallel part, gated on `par`), then runs each
//! requested engine serially and validates its result with the shared
//! [`ExtractionResult::check`]. Timings are wall-clock per engine and
//! exclude the shared setup; costs and check outcomes are deterministic
//! and bit-identical at any thread count — only `micros` varies run to
//! run, which is why the determinism tests fingerprint everything *but*
//! the timings.

use crate::graph::{CostModel, CostTable, ExtractGraph};
use crate::result::CheckError;
use crate::{engine_by_name, ExtractionResult};
use esyn_egraph::{Analysis, EGraph, Id, Language};
use esyn_par::Parallelism;
use std::time::Instant;

/// One engine's line in a gym race.
#[derive(Clone, Debug)]
pub struct GymRow {
    /// Canonical engine name (from [`crate::ENGINE_NAMES`]).
    pub engine: &'static str,
    /// DAG cost (every reached class charged once) — the score that
    /// matters under sharing.
    pub dag_cost: f64,
    /// Tree cost (children charged per reference), for contrast.
    pub tree_cost: f64,
    /// Outcome of the shared validator on this engine's selection.
    pub check: Result<(), CheckError>,
    /// Wall-clock time of the engine alone (setup excluded).
    pub micros: u128,
}

/// Races `engine_names` on `egraph` from `roots` under `model`.
///
/// # Panics
///
/// Panics on an unknown engine name (resolve names up front with
/// [`crate::canonical_engine_name`]) or an un-rebuilt e-graph.
pub fn race<L: Language + Sync, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    roots: &[Id],
    model: &dyn CostModel<L>,
    engine_names: &[&str],
    par: Parallelism,
) -> Vec<GymRow> {
    let graph = ExtractGraph::new(egraph);
    let costs = CostTable::build(&graph, model, par);
    let root_ix = graph.root_indices(egraph, roots);
    engine_names
        .iter()
        .map(|&name| {
            let (canonical, engine) = engine_by_name::<L>(name)
                .unwrap_or_else(|| panic!("unknown extraction engine `{name}`"));
            let start = Instant::now();
            let result: ExtractionResult = engine.extract(&graph, &root_ix, &costs);
            let micros = start.elapsed().as_micros();
            let check = result.check(&graph, &root_ix);
            let (dag_cost, tree_cost) = if check.is_ok() {
                (
                    result.dag_cost(&graph, &costs, &root_ix),
                    result.tree_cost(&graph, &costs, &root_ix),
                )
            } else {
                (f64::NAN, f64::NAN)
            };
            GymRow {
                engine: canonical,
                dag_cost,
                tree_cost,
                check,
                micros,
            }
        })
        .collect()
}
