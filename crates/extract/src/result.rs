//! The engine output type and its shared validator.

use crate::graph::{BitSet, CostTable, ExtractGraph};
use esyn_egraph::{FxHashMap, Id, Language, RecExpr};
use std::collections::VecDeque;
use std::fmt;

/// Comparison slack for `f64` cost improvement tests, shared by every
/// engine in the crate.
pub(crate) const EPS: f64 = 1e-9;

/// What every engine returns: one chosen e-node per e-class (dense
/// indices, `None` for classes the engine did not need to decide).
///
/// Validity is *not* implied by construction — callers run
/// [`ExtractionResult::check`], the gym's shared validator, before
/// trusting a result. Costs and terms are derived on demand so the same
/// result can be scored under any [`CostTable`].
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractionResult {
    /// `choices[ci]` = index of the chosen e-node of class `ci`.
    pub choices: Vec<Option<usize>>,
}

/// Why an [`ExtractionResult`] failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A root class has no chosen e-node.
    MissingRoot {
        /// Dense index of the uncovered root class.
        class: usize,
    },
    /// A chosen e-node's child class has no chosen e-node (the selection
    /// is not closed).
    MissingChild {
        /// Dense index of the class whose chosen node is dangling.
        class: usize,
        /// Dense index of the unchosen child class.
        child: usize,
    },
    /// A choice index is out of range for its class.
    BadChoice {
        /// Dense index of the offending class.
        class: usize,
        /// The out-of-range e-node index.
        node: usize,
    },
    /// The chosen selection contains a cycle through this class, so it
    /// materializes no finite term.
    Cycle {
        /// Dense index of a class on the cycle.
        class: usize,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::MissingRoot { class } => {
                write!(f, "root class {class} has no chosen e-node")
            }
            CheckError::MissingChild { class, child } => {
                write!(
                    f,
                    "class {class} chose a node whose child {child} is unchosen"
                )
            }
            CheckError::BadChoice { class, node } => {
                write!(f, "class {class} chose out-of-range node {node}")
            }
            CheckError::Cycle { class } => {
                write!(f, "selection is cyclic through class {class}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl ExtractionResult {
    /// An empty result (no class decided) for a graph of `n` classes.
    pub fn new(n: usize) -> Self {
        ExtractionResult {
            choices: vec![None; n],
        }
    }

    /// The shared validator: every root is covered, the selection is
    /// closed under chosen children, and it is acyclic. Only classes
    /// reachable from `roots` are inspected — engines are free to leave
    /// unreachable classes undecided.
    pub fn check<L: Language>(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
    ) -> Result<(), CheckError> {
        for &r in roots {
            if self.choices.get(r).copied().flatten().is_none() {
                return Err(CheckError::MissingRoot { class: r });
            }
        }
        // Closure + reachable set.
        let n = graph.num_classes();
        let mut reached = BitSet::new(n);
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        for &r in roots {
            reached.insert(r);
        }
        let mut order = Vec::new();
        while let Some(ci) = queue.pop_front() {
            order.push(ci);
            let k = self.choices[ci].expect("reached classes are chosen");
            if k >= graph.nodes(ci).len() {
                return Err(CheckError::BadChoice { class: ci, node: k });
            }
            for &d in graph.nodes(ci)[k].children() {
                if self.choices[d].is_none() {
                    return Err(CheckError::MissingChild {
                        class: ci,
                        child: d,
                    });
                }
                if !reached.contains(d) {
                    reached.insert(d);
                    queue.push_back(d);
                }
            }
        }
        // Acyclicity by iterative DFS with colors (0 = white, 1 = on
        // stack, 2 = done) over the reached selection.
        let mut color = vec![0u8; n];
        for &start in &order {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(&mut (ci, ref mut next)) = stack.last_mut() {
                let k = self.choices[ci].expect("reached classes are chosen");
                let children = graph.nodes(ci)[k].children();
                if *next < children.len() {
                    let d = children[*next];
                    *next += 1;
                    match color[d] {
                        0 => {
                            color[d] = 1;
                            stack.push((d, 0));
                        }
                        1 => return Err(CheckError::Cycle { class: d }),
                        _ => {}
                    }
                } else {
                    color[ci] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// DAG cost of the selection from `roots`: every reachable class is
    /// charged its chosen node's cost exactly once.
    ///
    /// Call after [`check`](Self::check) — unchosen reached classes panic.
    pub fn dag_cost<L: Language>(
        &self,
        graph: &ExtractGraph<L>,
        costs: &CostTable,
        roots: &[usize],
    ) -> f64 {
        let mut seen = BitSet::new(graph.num_classes());
        let mut stack: Vec<usize> = roots.to_vec();
        let mut total = 0.0;
        while let Some(ci) = stack.pop() {
            if seen.contains(ci) {
                continue;
            }
            seen.insert(ci);
            let k = self.choices[ci].expect("selection must cover reached classes");
            total += costs.cost(ci, k);
            stack.extend_from_slice(graph.nodes(ci)[k].children());
        }
        total
    }

    /// Tree cost of the selection from `roots`: shared classes are charged
    /// once *per reference* (the cost model of the vanilla tree
    /// extractor), summed over the distinct roots. Saturates near
    /// `1e300` instead of overflowing to infinity on sharing-heavy
    /// graphs.
    ///
    /// Call after [`check`](Self::check) — cycles would loop forever.
    pub fn tree_cost<L: Language>(
        &self,
        graph: &ExtractGraph<L>,
        costs: &CostTable,
        roots: &[usize],
    ) -> f64 {
        let n = graph.num_classes();
        let mut memo: Vec<Option<f64>> = vec![None; n];
        enum Frame {
            Visit(usize),
            Emit(usize),
        }
        let mut total = 0.0;
        for &r in roots {
            let mut stack = vec![Frame::Visit(r)];
            while let Some(frame) = stack.pop() {
                match frame {
                    Frame::Visit(ci) => {
                        if memo[ci].is_some() {
                            continue;
                        }
                        stack.push(Frame::Emit(ci));
                        let k = self.choices[ci].expect("selection must cover reached classes");
                        for &d in graph.nodes(ci)[k].children() {
                            stack.push(Frame::Visit(d));
                        }
                    }
                    Frame::Emit(ci) => {
                        if memo[ci].is_some() {
                            continue;
                        }
                        let k = self.choices[ci].expect("selection must cover reached classes");
                        let mut c = costs.cost(ci, k);
                        for &d in graph.nodes(ci)[k].children() {
                            c += memo[d].expect("children are emitted first");
                        }
                        memo[ci] = Some(c.min(1e300));
                    }
                }
            }
            total = (total + memo[r].expect("root emitted")).min(1e300);
        }
        total
    }

    /// Materializes the chosen term for `root` as a [`RecExpr`], sharing
    /// sub-terms per class.
    ///
    /// Call after [`check`](Self::check).
    pub fn term<L: Language>(&self, graph: &ExtractGraph<L>, root: usize) -> RecExpr<L> {
        let mut expr = RecExpr::new();
        let mut built: FxHashMap<usize, Id> = FxHashMap::default();
        enum Frame {
            Visit(usize),
            Emit(usize),
        }
        let mut stack = vec![Frame::Visit(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(ci) => {
                    if built.contains_key(&ci) {
                        continue;
                    }
                    stack.push(Frame::Emit(ci));
                    let k = self.choices[ci].expect("selection must cover reached classes");
                    for &d in graph.nodes(ci)[k].children() {
                        stack.push(Frame::Visit(d));
                    }
                }
                Frame::Emit(ci) => {
                    if built.contains_key(&ci) {
                        continue;
                    }
                    let k = self.choices[ci].expect("selection must cover reached classes");
                    let node = &graph.nodes(ci)[k];
                    let mut it = node.children().iter();
                    let remapped = node.op.map_children(|_| built[it.next().unwrap()]);
                    let id = expr.add(remapped);
                    built.insert(ci, id);
                }
            }
        }
        expr
    }
}

/// Turns a per-class *preference* into a guaranteed-valid selection.
///
/// Engines compute `prefer[ci]` — the e-node they would like each class
/// to use — but a preference driven by possibly-stale fixpoint state can
/// be cyclic. This shared finisher grounds the selection bottom-up: a
/// class is *done* once its preferred node has all children done; when
/// the worklist stalls with a root still open, the cheapest grounded
/// candidate of any open class is substituted (cycle repair) and
/// propagation resumes. Classes without a preference are never selected.
///
/// The result covers every root whose class has a grounded term, so
/// [`ExtractionResult::check`] passes whenever extraction is possible at
/// all; an impossible root (no grounded term in its class) is simply left
/// unchosen, which `check` then reports.
pub(crate) fn complete_selection<L: Language>(
    graph: &ExtractGraph<L>,
    costs: &CostTable,
    prefer: &[Option<usize>],
    roots: &[usize],
) -> ExtractionResult {
    let n = graph.num_classes();
    let mut done: Vec<Option<usize>> = vec![None; n];
    // remaining[ci] = not-yet-done distinct children of the node `done`
    // would take for ci (the preferred node until repair overrides it).
    let mut take: Vec<Option<usize>> = prefer.to_vec();
    let mut remaining: Vec<usize> = vec![usize::MAX; n];
    let mut queue: VecDeque<usize> = VecDeque::new();

    let distinct_children = |ci: usize, k: usize| -> Vec<usize> {
        let mut kids = graph.nodes(ci)[k].children.clone();
        kids.sort_unstable();
        kids.dedup();
        kids
    };

    for ci in 0..n {
        if let Some(k) = take[ci] {
            let kids = distinct_children(ci, k);
            remaining[ci] = kids.iter().filter(|&&d| done[d].is_none()).count();
            if remaining[ci] == 0 {
                queue.push_back(ci);
            }
        }
    }

    loop {
        while let Some(ci) = queue.pop_front() {
            if done[ci].is_some() {
                continue;
            }
            let k = take[ci].expect("queued classes have a take");
            done[ci] = Some(k);
            for &(p, pk) in graph.parents(ci) {
                if done[p].is_some() || take[p] != Some(pk) {
                    continue;
                }
                // The parent index is deduplicated per (p, pk), so each
                // distinct child fires exactly one decrement here.
                remaining[p] -= 1;
                if remaining[p] == 0 {
                    queue.push_back(p);
                }
            }
        }
        if roots.iter().all(|&r| done[r].is_some()) {
            break;
        }
        // Stalled with an open root: repair with the cheapest grounded
        // candidate among open, preferring classes (same rule as the old
        // DagExtractor cycle repair).
        let mut repair: Option<(usize, usize, f64)> = None;
        for ci in 0..n {
            if done[ci].is_some() || prefer[ci].is_none() {
                continue;
            }
            for (k, node) in graph.nodes(ci).iter().enumerate() {
                if node.children().iter().all(|&d| done[d].is_some()) {
                    let c = costs.cost(ci, k);
                    if repair.is_none_or(|(_, _, rc)| c < rc) {
                        repair = Some((ci, k, c));
                    }
                }
            }
        }
        let Some((ci, k, _)) = repair else {
            break; // some root has no grounded term; check will report it
        };
        take[ci] = Some(k);
        remaining[ci] = 0;
        queue.push_back(ci);
    }

    ExtractionResult { choices: done }
}
