//! The `global-greedy-dag` engine: TermDag-style sharing-aware costing.
//!
//! Where [`greedy-dag`](crate::GreedyDag) summarizes a class's solution
//! as a bitset costed from *current* per-class choices, this engine keeps
//! the actual term each class would build: an explicit class→e-node map
//! of its whole sub-DAG (the dense analogue of the extraction-gym
//! `global_greedy_dag`'s `TermDag` reachable sets). A candidate's cost is
//! computed from the *merged* map itself, so sharing between children is
//! credited exactly, not approximated through stale chosen costs. Merging
//! clones the biggest child's map and inserts the remaining children's
//! entries first-wins, in child order — the priority-union that keeps the
//! merged selection closed and acyclic.
//!
//! The price is memory and merge time proportional to sub-DAG sizes,
//! which makes this the slowest greedy engine; run it where quality
//! matters more than latency (the gym races make the trade visible).

use crate::graph::{CostTable, ExtractGraph};
use crate::result::{complete_selection, ExtractionResult, EPS};
use crate::Extractor;
use esyn_egraph::{FxHashMap, Language};
use std::collections::VecDeque;

/// A class's current best term: its full class→chosen-node map and cost.
type Term = Option<(FxHashMap<usize, usize>, f64)>;

#[derive(Clone, Copy, Debug, Default)]
/// TermDag-style greedy extraction with exact sharing-aware costing.
pub struct GlobalGreedyDag;

/// Merges the children's term maps (biggest first, then first-wins in
/// child order), rejecting candidates whose merged term would contain
/// `ci` itself. Returns the merged map including `(ci, k)` plus its cost.
fn merged_term(
    costs: &CostTable,
    terms: &[Term],
    children: &[usize],
    ci: usize,
    k: usize,
) -> Option<(FxHashMap<usize, usize>, f64)> {
    if children.iter().any(|&d| terms[d].is_none()) {
        return None;
    }
    let biggest = children
        .iter()
        .copied()
        .max_by_key(|&d| terms[d].as_ref().unwrap().0.len());
    let mut map: FxHashMap<usize, usize> = match biggest {
        Some(d) => terms[d].as_ref().unwrap().0.clone(),
        None => FxHashMap::default(),
    };
    for &d in children {
        if Some(d) == biggest {
            continue;
        }
        for (&c, &n) in &terms[d].as_ref().unwrap().0 {
            map.entry(c).or_insert(n);
        }
    }
    if map.contains_key(&ci) {
        return None; // the candidate's own term would be cyclic
    }
    map.insert(ci, k);
    let cost = map.iter().map(|(&c, &n)| costs.cost(c, n)).sum();
    Some((map, cost))
}

impl<L: Language> Extractor<L> for GlobalGreedyDag {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let n = graph.num_classes();
        let mut terms: Vec<Term> = vec![None; n];
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut in_queue = vec![true; n];
        while let Some(ci) = queue.pop_front() {
            in_queue[ci] = false;
            let mut pick: Option<(FxHashMap<usize, usize>, f64)> = None;
            for (k, node) in graph.nodes(ci).iter().enumerate() {
                let Some((map, cost)) = merged_term(costs, &terms, node.children(), ci, k) else {
                    continue;
                };
                if pick.as_ref().is_none_or(|(_, pc)| cost + EPS < *pc) {
                    pick = Some((map, cost));
                }
            }
            let Some((map, cost)) = pick else { continue };
            let improved = match &terms[ci] {
                Some((_, old)) => cost + EPS < *old,
                None => true,
            };
            if improved {
                terms[ci] = Some((map, cost));
                for &(p, _) in graph.parents(ci) {
                    if !in_queue[p] {
                        in_queue[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
        // Every root reads its choices straight out of its own term map —
        // already closed and acyclic by construction; the shared finisher
        // grounds the union across roots (maps may disagree on a shared
        // class, in which case first-root-wins and repair handles any
        // resulting staleness).
        let mut prefer: Vec<Option<usize>> = vec![None; n];
        for &r in roots {
            if let Some((map, _)) = &terms[r] {
                for (&c, &k) in map {
                    if prefer[c].is_none() {
                        prefer[c] = Some(k);
                    }
                }
            }
        }
        // Classes outside every root's term keep their own best choice as
        // a fallback so cycle repair has material to work with.
        for ci in 0..n {
            if prefer[ci].is_none() {
                if let Some((map, _)) = &terms[ci] {
                    prefer[ci] = map.get(&ci).copied();
                }
            }
        }
        complete_selection(graph, costs, &prefer, roots)
    }
}
