//! The dense extraction substrate every engine runs on.
//!
//! [`ExtractGraph`] snapshots an e-graph into index-addressed form:
//! canonical class ids become contiguous `usize` indices, every candidate
//! e-node carries its children as dense indices, and a parent index
//! supports worklist engines. [`CostTable`] holds the validated per-node
//! costs from a [`CostModel`], computed once (optionally in parallel) and
//! shared by every engine in a race — engines themselves are pure
//! functions of `(graph, roots, costs)`, which is what makes the gym's
//! results comparable and bit-identical at any thread count.

use esyn_egraph::{Analysis, EGraph, FxHashMap, Id, Language};
use esyn_par::{par_map, Parallelism};
use std::fmt;

/// One candidate e-node of a class, with children as dense class indices.
#[derive(Clone, Debug)]
pub struct ENode<L> {
    /// The operator (children still carry the original e-graph ids; use
    /// [`ENode::children`] for dense indices).
    pub op: L,
    /// Dense child class indices, in child-slot order (duplicates kept so
    /// the node can be rematerialized with [`Language::map_children`]).
    pub children: Vec<usize>,
}

impl<L> ENode<L> {
    /// The dense child indices, in slot order.
    pub fn children(&self) -> &[usize] {
        &self.children
    }
}

/// Dense snapshot of an e-graph for extraction.
pub struct ExtractGraph<L> {
    ids: Vec<Id>,
    index: FxHashMap<Id, usize>,
    classes: Vec<Vec<ENode<L>>>,
    /// `parents[c]` = distinct `(class, node)` pairs with `c` as a child.
    parents: Vec<Vec<(usize, usize)>>,
    total_nodes: usize,
}

impl<L: Language> ExtractGraph<L> {
    /// Snapshots `egraph` (which must be clean — call `rebuild` first).
    pub fn new<N: Analysis<L>>(egraph: &EGraph<L, N>) -> Self {
        assert!(egraph.is_clean(), "rebuild the e-graph before extraction");
        let mut ids = Vec::with_capacity(egraph.num_classes());
        let mut index =
            FxHashMap::with_capacity_and_hasher(egraph.num_classes(), Default::default());
        for class in egraph.classes() {
            let canon = egraph.find(class.id);
            index.insert(canon, ids.len());
            ids.push(canon);
        }
        let mut classes = Vec::with_capacity(ids.len());
        let mut total_nodes = 0;
        for &id in &ids {
            let class = egraph.class(id);
            let mut cands = Vec::with_capacity(class.len());
            for node in class.nodes() {
                let children: Vec<usize> = node
                    .children()
                    .iter()
                    .map(|&c| index[&egraph.find(c)])
                    .collect();
                cands.push(ENode {
                    op: node.clone(),
                    children,
                });
            }
            total_nodes += cands.len();
            classes.push(cands);
        }
        let mut parents: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ids.len()];
        for (ci, cands) in classes.iter().enumerate() {
            for (k, node) in cands.iter().enumerate() {
                let mut kids = node.children.clone();
                kids.sort_unstable();
                kids.dedup();
                for d in kids {
                    parents[d].push((ci, k));
                }
            }
        }
        ExtractGraph {
            ids,
            index,
            classes,
            parents,
            total_nodes,
        }
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.ids.len()
    }

    /// Total number of candidate e-nodes across all classes.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// The canonical e-graph id of dense class `ci`.
    pub fn class_id(&self, ci: usize) -> Id {
        self.ids[ci]
    }

    /// The dense index of (canonical) e-graph id `id`, if present.
    ///
    /// Pass ids through `egraph.find` first; the snapshot indexes
    /// canonical representatives only.
    pub fn class_index(&self, id: Id) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// The candidate e-nodes of dense class `ci`.
    pub fn nodes(&self, ci: usize) -> &[ENode<L>] {
        &self.classes[ci]
    }

    /// Distinct `(class, node)` pairs having `ci` as a child.
    pub fn parents(&self, ci: usize) -> &[(usize, usize)] {
        &self.parents[ci]
    }

    /// Maps e-graph root ids to dense indices (canonicalizing through
    /// `egraph.find`), deduplicated in first-seen order.
    ///
    /// # Panics
    ///
    /// Panics if a root id is not in the e-graph.
    pub fn root_indices<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, roots: &[Id]) -> Vec<usize> {
        let mut out = Vec::with_capacity(roots.len());
        for &r in roots {
            let ri = self
                .class_index(egraph.find(r))
                .expect("root id not present in the e-graph");
            if !out.contains(&ri) {
                out.push(ri);
            }
        }
        out
    }
}

impl<L: fmt::Debug> fmt::Debug for ExtractGraph<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExtractGraph")
            .field("classes", &self.ids.len())
            .field("nodes", &self.total_nodes)
            .finish()
    }
}

/// A pluggable, linear per-e-node cost model.
///
/// The DAG cost of an extraction is the sum of `node_cost` over the
/// chosen e-node of every e-class in the extracted DAG, each class
/// counted once. Implementations must be `Sync` (cost tables may be
/// built in parallel) and pure: the same e-node always gets the same
/// cost. Any `Fn(&L) -> f64` closure qualifies.
pub trait CostModel<L: Language>: Sync {
    /// Cost of choosing `enode` for its e-class.
    ///
    /// Must be finite and non-negative; [`CostTable::build`] panics
    /// otherwise, because both greedy pruning and branch-and-bound
    /// silently misbehave on NaN/negative costs.
    fn node_cost(&self, enode: &L) -> f64;
}

impl<L: Language, F: Fn(&L) -> f64 + Sync> CostModel<L> for F {
    fn node_cost(&self, enode: &L) -> f64 {
        self(enode)
    }
}

/// Counts one unit per e-class in the extracted DAG (shared node count —
/// the DAG analogue of AST size).
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitCost;

impl<L: Language> CostModel<L> for UnitCost {
    fn node_cost(&self, _enode: &L) -> f64 {
        1.0
    }
}

/// Below this many e-nodes the cost table is filled inline: spawning
/// workers would cost more than the model evaluations.
const PAR_MIN_NODES: usize = 1 << 14;

/// Validated per-node costs, indexed `(class, node)` like the graph.
#[derive(Clone, Debug)]
pub struct CostTable {
    per_class: Vec<Vec<f64>>,
}

impl CostTable {
    /// Evaluates `model` on every candidate e-node of `graph`.
    ///
    /// The per-class fan-out runs on `par` workers; the result is
    /// bit-identical at any thread count ([`par_map`] preserves order and
    /// the model is pure), so parallelism trades wall-clock only.
    ///
    /// # Panics
    ///
    /// Panics if the model returns a NaN, infinite or negative cost.
    pub fn build<L, M>(graph: &ExtractGraph<L>, model: &M, par: Parallelism) -> Self
    where
        L: Language + Sync,
        M: CostModel<L> + ?Sized,
    {
        let indices: Vec<usize> = (0..graph.num_classes()).collect();
        let par = par.when(graph.total_nodes() >= PAR_MIN_NODES);
        let per_class = par_map(par, &indices, |_, &ci| {
            graph
                .nodes(ci)
                .iter()
                .map(|n| {
                    let cost = model.node_cost(&n.op);
                    assert!(
                        cost.is_finite() && cost >= 0.0,
                        "CostModel returned invalid cost {cost:?} for {:?}",
                        n.op
                    );
                    cost
                })
                .collect()
        });
        CostTable { per_class }
    }

    /// The cost of candidate `k` of class `ci`.
    pub fn cost(&self, ci: usize, k: usize) -> f64 {
        self.per_class[ci][k]
    }

    /// The cheapest candidate cost of class `ci` (infinite for an empty
    /// class, which a well-formed e-graph never has).
    pub fn min_cost(&self, ci: usize) -> f64 {
        self.per_class[ci]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Dense bitset over e-class indices, shared by the sub-DAG engines.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    pub(crate) fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}
